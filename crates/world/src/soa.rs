//! Struct-of-arrays actor lanes for batched world stepping.
//!
//! [`SoaActors`] gathers the hot per-actor state of *B* worlds into flat
//! `f64` lanes — positions, velocities, headings, and IDM parameters —
//! with a parallel behavior-tag lane, then advances all of them in one
//! sweep per tick: a per-world acceleration pass (synchronous update,
//! like [`World::step`]) followed by a single branch-light Euler
//! integration loop over every lane. Behaviors that do not batch
//! (scripted profiles, lane changes, pedestrians) fall back to a scalar
//! fix-up pass over a precollected index list.
//!
//! The sweep is **bit-identical** to calling [`World::step`] on each
//! world: every floating-point operation is performed in the same order
//! on the same values (the IDM acceleration is computed by the very same
//! [`IdmParams::accel`], and the lead query reproduces the scalar scan's
//! selection exactly). This is what lets the batched campaign path
//! produce byte-identical records to the scalar path.

use crate::behavior::{Behavior, IdmParams, LaneChangeSpec, SpeedKeyframe};
use crate::World;
use drivefi_kinematics::Vec2;

/// Behavior discriminant stored in the parallel tag lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BehaviorTag {
    /// Does not move.
    Static = 0,
    /// Holds speed along heading.
    ConstantSpeed = 1,
    /// IDM car-following (parameters live in the flat lanes).
    Idm = 2,
    /// Piecewise-constant-acceleration script (cold side data).
    Scripted = 3,
    /// Pedestrian (cold side data).
    Pedestrian = 4,
}

impl BehaviorTag {
    fn of(b: &Behavior) -> Self {
        match b {
            Behavior::Static => BehaviorTag::Static,
            Behavior::ConstantSpeed => BehaviorTag::ConstantSpeed,
            Behavior::Idm { .. } => BehaviorTag::Idm,
            Behavior::Scripted { .. } => BehaviorTag::Scripted,
            Behavior::Pedestrian { .. } => BehaviorTag::Pedestrian,
        }
    }

    /// Tags advanced by the flat `v += a·dt; x += v·dt` integration loop.
    #[inline]
    fn integrable(tag: u8) -> bool {
        tag == BehaviorTag::ConstantSpeed as u8
            || tag == BehaviorTag::Idm as u8
            || tag == BehaviorTag::Scripted as u8
    }
}

/// Cold per-actor side data for behaviors the flat loops cannot express.
#[derive(Debug, Clone)]
enum Cold {
    /// Fully handled by the flat lanes.
    None,
    /// IDM actor mid-lane-change: lateral pose fixed up after integration.
    LaneChange(LaneChangeSpec),
    /// Scripted longitudinal profile (acceleration looked up per tick).
    Scripted { keyframes: Vec<SpeedKeyframe>, lane_change: Option<LaneChangeSpec> },
    /// Pedestrian stepping off at `trigger_time`.
    Pedestrian { trigger_time: f64, walk_speed: f64 },
}

/// Per-world span into the flat lanes.
#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u32,
    len: u32,
}

/// Flat actor lanes spanning a batch of worlds. See the module docs.
#[derive(Debug, Default)]
pub struct SoaActors {
    // Hot kinematic lanes.
    x: Vec<f64>,
    y: Vec<f64>,
    v: Vec<f64>,
    theta: Vec<f64>,
    /// Body length lane (for bumper-gap arithmetic).
    body_len: Vec<f64>,
    /// Behavior tag lane, parallel to the `f64` lanes.
    tag: Vec<u8>,
    // IDM parameter lanes (zero where the tag is not `Idm`).
    max_accel: Vec<f64>,
    comfort_decel: Vec<f64>,
    min_gap: Vec<f64>,
    time_headway: Vec<f64>,
    exponent: Vec<f64>,
    desired_speed: Vec<f64>,
    /// Acceleration scratch lane filled by the plan pass.
    accel: Vec<f64>,
    /// Cold side data, parallel to the lanes.
    cold: Vec<Cold>,
    /// Flat indices that need the scalar fix-up pass.
    fixups: Vec<u32>,
    slots: Vec<Slot>,
}

impl SoaActors {
    /// An empty lane set.
    pub fn new() -> Self {
        SoaActors::default()
    }

    /// Drops all attached worlds (allocations are kept).
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.v.clear();
        self.theta.clear();
        self.body_len.clear();
        self.tag.clear();
        self.max_accel.clear();
        self.comfort_decel.clear();
        self.min_gap.clear();
        self.time_headway.clear();
        self.exponent.clear();
        self.desired_speed.clear();
        self.accel.clear();
        self.cold.clear();
        self.fixups.clear();
        self.slots.clear();
    }

    /// Number of attached worlds.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total number of actor lanes.
    pub fn lane_len(&self) -> usize {
        self.x.len()
    }

    /// Gathers `world`'s actors into the flat lanes and returns the slot
    /// index. Worlds must be re-attached (after [`SoaActors::clear`])
    /// whenever the batch composition changes.
    pub fn attach(&mut self, world: &World) -> usize {
        let offset = self.x.len() as u32;
        for a in &world.actors {
            let flat = self.x.len() as u32;
            self.x.push(a.state.x);
            self.y.push(a.state.y);
            self.v.push(a.state.v);
            self.theta.push(a.state.theta);
            self.body_len.push(a.dims().length);
            self.tag.push(BehaviorTag::of(&a.behavior) as u8);
            self.accel.push(0.0);
            let (p, ds) = match &a.behavior {
                Behavior::Idm { params, desired_speed, .. } => (*params, *desired_speed),
                _ => (
                    IdmParams {
                        max_accel: 0.0,
                        comfort_decel: 0.0,
                        min_gap: 0.0,
                        time_headway: 0.0,
                        exponent: 0.0,
                    },
                    0.0,
                ),
            };
            self.max_accel.push(p.max_accel);
            self.comfort_decel.push(p.comfort_decel);
            self.min_gap.push(p.min_gap);
            self.time_headway.push(p.time_headway);
            self.exponent.push(p.exponent);
            self.desired_speed.push(ds);
            let cold = match &a.behavior {
                Behavior::Idm { lane_change: Some(lc), .. } => Cold::LaneChange(*lc),
                Behavior::Scripted { keyframes, lane_change } => {
                    Cold::Scripted { keyframes: keyframes.clone(), lane_change: *lane_change }
                }
                Behavior::Pedestrian { trigger_time, walk_speed } => {
                    Cold::Pedestrian { trigger_time: *trigger_time, walk_speed: *walk_speed }
                }
                _ => Cold::None,
            };
            if !matches!(cold, Cold::None) {
                self.fixups.push(flat);
            }
            self.cold.push(cold);
        }
        self.slots.push(Slot { offset, len: world.actors.len() as u32 });
        self.slots.len() - 1
    }

    /// Mirror of the scalar lead scan over the slot's lane span: the
    /// strict-minimum bumper gap among bodies ahead in the lane band,
    /// actors first (span order = storage order), then the ego. Performs
    /// the exact same comparisons and gap arithmetic as
    /// `World::lead_for`, so the selected `(gap, speed)` is bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn lead_in_span(
        &self,
        lo: usize,
        hi: usize,
        skip: usize,
        x: f64,
        y: f64,
        self_len: f64,
        ego: Option<(f64, f64, f64, f64)>,
    ) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for j in lo..hi {
            if j == skip {
                continue;
            }
            let (ox, oy) = (self.x[j], self.y[j]);
            if ox <= x || (oy - y).abs() > 2.0 {
                continue;
            }
            let gap = ox - x - (self.body_len[j] + self_len) / 2.0;
            if best.is_none_or(|(g, _)| gap < g) {
                best = Some((gap, self.v[j]));
            }
        }
        if let Some((ex, ey, ev, elen)) = ego {
            if ex > x && (ey - y).abs() <= 2.0 {
                let gap = ex - x - (elen + self_len) / 2.0;
                if best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, ev));
                }
            }
        }
        best
    }

    /// Advances every attached world by `dt` seconds in one batched
    /// sweep. `worlds[i]` must be the world attached as slot `i`; actor
    /// state, time, and lead order are scattered back so each world stays
    /// fully consistent (sensors and ground truth read the world, not the
    /// lanes).
    pub fn step(&mut self, worlds: &mut [&mut World], dt: f64) {
        self.step_each(worlds, |w| &mut **w, dt);
    }

    /// Like [`SoaActors::step`], but reaches each slot's world through
    /// `world_of` on the caller's own items. This lets a batch runner
    /// whose worlds live inside larger per-lane structs sweep them
    /// directly, without materializing a `Vec<&mut World>` every tick —
    /// the hot loop stays allocation-free.
    pub fn step_each<T, F>(&mut self, items: &mut [T], mut world_of: F, dt: f64)
    where
        F: FnMut(&mut T) -> &mut World,
    {
        assert_eq!(items.len(), self.slots.len(), "one world per attached slot");

        // Plan pass: accelerations against the previous frame, per world
        // (IDM lead queries stay within the world's span + its ego).
        let mut accel = std::mem::take(&mut self.accel);
        for (s, item) in items.iter_mut().enumerate() {
            let world = &*world_of(item);
            let Slot { offset, len } = self.slots[s];
            let (lo, hi) = (offset as usize, (offset + len) as usize);
            let t = world.time;
            let ego = world.ego.map(|(es, ed)| (es.x, es.y, es.v, ed.length));
            for (i, a) in accel.iter_mut().enumerate().take(hi).skip(lo) {
                *a = match self.tag[i] {
                    t8 if t8 == BehaviorTag::Idm as u8 => {
                        let params = IdmParams {
                            max_accel: self.max_accel[i],
                            comfort_decel: self.comfort_decel[i],
                            min_gap: self.min_gap[i],
                            time_headway: self.time_headway[i],
                            exponent: self.exponent[i],
                        };
                        let lead = self
                            .lead_in_span(lo, hi, i, self.x[i], self.y[i], self.body_len[i], ego)
                            .map(|(gap, lv)| (gap, self.v[i] - lv));
                        params.accel(self.v[i], self.desired_speed[i], lead)
                    }
                    t8 if t8 == BehaviorTag::Scripted as u8 => match &self.cold[i] {
                        Cold::Scripted { keyframes, .. } => {
                            keyframes.iter().rev().find(|k| t >= k.time).map_or(0.0, |k| k.accel)
                        }
                        _ => 0.0,
                    },
                    _ => 0.0,
                };
            }
        }

        // Integrate pass: one flat Euler sweep across every world's
        // lanes. Identical operations to the scalar integrator
        // (`v = (v + a·dt).max(0); x += v·dt`).
        for (((v, x), &tag), &a) in
            self.v.iter_mut().zip(self.x.iter_mut()).zip(&self.tag).zip(&accel)
        {
            if BehaviorTag::integrable(tag) {
                *v = (*v + a * dt).max(0.0);
                *x += *v * dt;
            }
        }
        self.accel = accel;

        // Scalar fix-up pass: lane-change lateral kinematics and
        // pedestrian triggers.
        for f in 0..self.fixups.len() {
            let i = self.fixups[f] as usize;
            let slot = self
                .slots
                .iter()
                .position(|s| (i as u32) >= s.offset && (i as u32) < s.offset + s.len)
                .expect("fix-up lane belongs to a slot");
            let next_t = world_of(&mut items[slot]).time + dt;
            match &self.cold[i] {
                Cold::None => {}
                Cold::LaneChange(lc) | Cold::Scripted { lane_change: Some(lc), .. } => {
                    self.y[i] = lc.y_at(next_t);
                    let vy = lc.vy_at(next_t);
                    self.theta[i] = if self.v[i] > 0.1 { (vy / self.v[i]).atan() } else { 0.0 };
                }
                Cold::Scripted { lane_change: None, .. } => {}
                Cold::Pedestrian { trigger_time, walk_speed } => {
                    if next_t >= *trigger_time {
                        let dir = Vec2::from_heading(self.theta[i]);
                        self.x[i] += dir.x * walk_speed * dt;
                        self.y[i] += dir.y * walk_speed * dt;
                        self.v[i] = *walk_speed;
                    }
                }
            }
        }

        // Scatter pass: write lanes back so every world remains the
        // source of truth for sensors and ground-truth queries.
        for (s, item) in items.iter_mut().enumerate() {
            let world = world_of(item);
            let lo = self.slots[s].offset as usize;
            for (j, a) in world.actors.iter_mut().enumerate() {
                a.state.x = self.x[lo + j];
                a.state.y = self.y[lo + j];
                a.state.v = self.v[lo + j];
                a.state.theta = self.theta[lo + j];
            }
            world.time += dt;
            world.repair_lead_order();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{IdmParams, LaneChangeSpec, SpeedKeyframe};
    use crate::{Actor, ActorId, ActorKind, Road};
    use drivefi_kinematics::VehicleState;

    fn mixed_world(seed: u64) -> World {
        let mut w = World::new(Road::default_highway());
        let o = seed as f64;
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(20.0 + o, 0.0, 25.0, 0.0, 0.0),
            Behavior::idm(28.0 + o),
        ));
        w.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Truck,
            VehicleState::new(80.0 + 2.0 * o, 0.0, 22.0, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![
                    SpeedKeyframe { time: 0.0, accel: 0.0 },
                    SpeedKeyframe { time: 2.0, accel: -3.0 + 0.1 * o },
                ],
                lane_change: None,
            },
        ));
        w.add_actor(Actor::new(
            ActorId(3),
            ActorKind::Car,
            VehicleState::new(40.0, 3.7, 26.0, 0.0, 0.0),
            Behavior::Idm {
                params: IdmParams::default(),
                desired_speed: 27.0,
                lane_change: Some(LaneChangeSpec {
                    start_time: 1.0 + 0.2 * o,
                    duration: 3.0,
                    from_y: 3.7,
                    to_y: 0.0,
                }),
            },
        ));
        w.add_actor(Actor::new(
            ActorId(4),
            ActorKind::Pedestrian,
            VehicleState::new(120.0, -4.0, 0.0, std::f64::consts::FRAC_PI_2, 0.0),
            Behavior::Pedestrian { trigger_time: 2.5, walk_speed: 1.4 },
        ));
        w.add_actor(Actor::new(
            ActorId(5),
            ActorKind::StaticObstacle,
            VehicleState::new(200.0, -1.0, 0.0, 0.0, 0.0),
            Behavior::Static,
        ));
        w.add_actor(Actor::new(
            ActorId(6),
            ActorKind::Car,
            VehicleState::new(150.0, 0.0, 24.0, 0.0, 0.0),
            Behavior::ConstantSpeed,
        ));
        w.set_ego(VehicleState::new(0.0, 0.0, 27.0, 0.0, 0.0), ActorKind::Car.dims());
        w
    }

    /// The batched sweep is bit-identical to per-world scalar stepping
    /// across every behavior kind, for many ticks and several slots.
    #[test]
    fn batched_step_matches_scalar_bitwise() {
        let dt = 1.0 / 30.0;
        let mut scalar: Vec<World> = (0..3).map(mixed_world).collect();
        let mut batched: Vec<World> = (0..3).map(mixed_world).collect();

        let mut soa = SoaActors::new();
        for w in &batched {
            soa.attach(w);
        }
        assert_eq!(soa.slot_count(), 3);
        assert_eq!(soa.lane_len(), 18);

        for tick in 0..240 {
            for w in &mut scalar {
                w.step(dt);
            }
            {
                let mut refs: Vec<&mut World> = batched.iter_mut().collect();
                soa.step(&mut refs, dt);
            }
            for (a, b) in scalar.iter().zip(&batched) {
                assert_eq!(a.time().to_bits(), b.time().to_bits(), "time at tick {tick}");
                for (sa, ba) in a.actors().iter().zip(b.actors()) {
                    for (name, x, y) in [
                        ("x", sa.state.x, ba.state.x),
                        ("y", sa.state.y, ba.state.y),
                        ("v", sa.state.v, ba.state.v),
                        ("theta", sa.state.theta, ba.state.theta),
                    ] {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} of {} at tick {tick}: {x} vs {y}",
                            name,
                            sa.id
                        );
                    }
                }
            }
        }
    }

    /// Re-attaching after batch composition changes (lane retirement)
    /// keeps the surviving worlds on the scalar trajectory.
    #[test]
    fn reattach_after_retirement_stays_equal() {
        let dt = 1.0 / 30.0;
        let mut scalar = mixed_world(1);
        let mut batched: Vec<World> = (0..2).map(|i| mixed_world(1 - i)).collect();

        let mut soa = SoaActors::new();
        for w in &batched {
            soa.attach(w);
        }
        for _ in 0..30 {
            scalar.step(dt);
            let mut refs: Vec<&mut World> = batched.iter_mut().collect();
            soa.step(&mut refs, dt);
        }
        // Retire slot 1 and re-attach the survivor.
        batched.truncate(1);
        soa.clear();
        soa.attach(&batched[0]);
        for _ in 0..30 {
            scalar.step(dt);
            let mut refs: Vec<&mut World> = batched.iter_mut().collect();
            soa.step(&mut refs, dt);
        }
        for (sa, ba) in scalar.actors().iter().zip(batched[0].actors()) {
            assert_eq!(sa.state.x.to_bits(), ba.state.x.to_bits());
            assert_eq!(sa.state.v.to_bits(), ba.state.v.to_bits());
        }
    }
}
