//! A deterministic 2-D driving world.
//!
//! This crate is the stand-in for the proprietary simulators the paper
//! drives (NVIDIA DriveSim and LGSVL): a multi-lane straight highway,
//! target vehicles (TVs) with car-following (IDM) and lane-change
//! behaviors, pedestrians and static obstacles, plus oriented-bounding-box
//! collision detection and ground-truth free-distance queries used by the
//! hazard monitor.
//!
//! What matters for the reproduction is preserved: a **closed loop** in
//! which corrupted actuation changes the ego vehicle's safety potential δ
//! and can cause real (geometric) collisions, and a **scene suite** of
//! 7 200 camera frames with a small hazardous tail, mirroring the paper's
//! evaluation corpus.
//!
//! # Example
//!
//! ```
//! use drivefi_world::scenario::ScenarioConfig;
//! use drivefi_world::World;
//!
//! let cfg = ScenarioConfig::cut_in(42);
//! let mut world = World::from_scenario(&cfg);
//! for _ in 0..10 {
//!     world.step(0.1);
//! }
//! assert!(world.time() > 0.99);
//! ```

pub mod actor;
pub mod behavior;
pub mod collision;
pub mod road;
pub mod scenario;
pub mod soa;
pub mod spec;
mod world_impl;

pub use actor::{Actor, ActorId, ActorKind, BodyDims};
pub use behavior::{Behavior, IdmParams};
pub use collision::{obb_overlap, segment_intersects_obb, Obb};
pub use road::{Lane, LaneId, Road};
pub use scenario::{ScenarioConfig, ScenarioSuite};
pub use soa::{BehaviorTag, SoaActors};
pub use spec::{FamilyRegistry, ScenarioSpec};
pub use world_impl::{GroundTruth, World};
