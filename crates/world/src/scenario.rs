//! Parameterized driving scenarios and the evaluation scene suite.
//!
//! The paper evaluates on driving scenarios rendered by DriveSim/LGSVL and
//! counts **scenes** (one camera frame each): 7 200 scenes in total, of
//! which only 68 turned out to be safety-critical. This module provides a
//! matching synthetic corpus: families of parameterized highway scenarios
//! (free driving, car following, lead braking, cut-ins, occluded-lead
//! reveals à la the Tesla crash, pedestrian crossings, platoons) jittered
//! by a seeded RNG.

use crate::behavior::{Behavior, IdmParams, LaneChangeSpec, SpeedKeyframe};
use crate::{Actor, ActorId, ActorKind, Road};
use drivefi_kinematics::VehicleState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The camera frame rate that defines a "scene" (paper: slowest sensor at
/// 7.5 Hz drives the injector's discrete clock).
pub const SCENE_RATE_HZ: f64 = 7.5;

/// A fully specified driving scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Identifier within a suite.
    pub id: u32,
    /// Family name (e.g. `"cut_in"`).
    pub name: String,
    /// Seed used to jitter parameters (kept for reproducibility).
    pub seed: u64,
    /// Scenario duration \[s\].
    pub duration: f64,
    /// Road geometry.
    pub road: Road,
    /// Ego initial state.
    pub ego_start: VehicleState,
    /// Ego cruise set-speed handed to the planner \[m/s\].
    pub ego_set_speed: f64,
    /// Non-ego actors.
    pub actors: Vec<Actor>,
}

impl ScenarioConfig {
    /// Number of scenes (camera frames) this scenario contributes.
    pub fn scene_count(&self) -> usize {
        (self.duration * SCENE_RATE_HZ).round() as usize
    }

    fn base(id: u32, name: &str, seed: u64) -> (Self, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD21E_F1A5_0000 ^ u64::from(id));
        let v0 = rng.random_range(24.0..33.5);
        let cfg = ScenarioConfig {
            id,
            name: name.to_owned(),
            seed,
            duration: 40.0,
            road: Road::default_highway(),
            ego_start: VehicleState::new(0.0, 0.0, v0, 0.0, 0.0),
            ego_set_speed: rng.random_range(v0..(v0 + 4.0).min(33.5 + 1e-9)),
            actors: Vec::new(),
        };
        (cfg, rng)
    }

    /// Free driving: empty road, ego cruises at its set speed.
    pub fn free_drive(seed: u64) -> Self {
        let (cfg, _) = Self::base(0, "free_drive", seed);
        cfg
    }

    /// A lead vehicle cruising ahead at a similar speed.
    pub fn lead_vehicle_cruise(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(1, "lead_cruise", seed);
        let gap = rng.random_range(45.0..90.0);
        let lead_v = cfg.ego_start.v + rng.random_range(-2.0..2.0);
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(gap, 0.0, lead_v.max(15.0), 0.0, 0.0),
            Behavior::idm(lead_v.max(15.0)),
        ));
        cfg
    }

    /// The lead vehicle brakes hard mid-scenario.
    pub fn lead_brake(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(2, "lead_brake", seed);
        let gap = rng.random_range(50.0..80.0);
        let brake_t = rng.random_range(8.0..16.0);
        let decel = rng.random_range(2.5..5.0);
        let recover_t = brake_t + rng.random_range(3.0..5.0);
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(gap, 0.0, cfg.ego_start.v, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![
                    SpeedKeyframe { time: 0.0, accel: 0.0 },
                    SpeedKeyframe { time: brake_t, accel: -decel },
                    SpeedKeyframe { time: recover_t, accel: 1.0 },
                    SpeedKeyframe { time: recover_t + 6.0, accel: 0.0 },
                ],
                lane_change: None,
            },
        ));
        cfg
    }

    /// Paper Example 1: a target vehicle in the adjacent lane cuts into
    /// the ego lane with a small gap, collapsing the safety potential from
    /// ~20 m to ~2 m.
    pub fn cut_in(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(3, "cut_in", seed);
        let cut_t = rng.random_range(6.0..12.0);
        // Tight but fault-free-survivable: at the cut moment δ_lon ≈
        // gap − margin − (v² − v_tv²)/(2a) must stay positive (paper
        // Example 1: the cut-in squeezes δ from ~20 m to ~2 m without a
        // fault; only the injected throttle fault makes it collapse).
        // The spawn distance budgets for the closure the ego achieves
        // before and during the maneuver, so the TV is still ahead when
        // it merges.
        let tv_speed = cfg.ego_set_speed - rng.random_range(2.0..4.0);
        let closure = (cfg.ego_set_speed - tv_speed) * (cut_t + 3.0);
        let ahead = rng.random_range(10.0..17.0) + closure;
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(ahead, 3.7, tv_speed, 0.0, 0.0),
            Behavior::Idm {
                params: IdmParams::default(),
                desired_speed: tv_speed,
                lane_change: Some(LaneChangeSpec {
                    start_time: cut_t,
                    duration: 3.0,
                    from_y: 3.7,
                    to_y: 0.0,
                }),
            },
        ));
        // Additional traffic in the far lane for sensor load.
        cfg.actors.push(Actor::new(
            ActorId(2),
            ActorKind::Car,
            VehicleState::new(rng.random_range(40.0..70.0), 7.4, tv_speed, 0.0, 0.0),
            Behavior::idm(tv_speed),
        ));
        cfg
    }

    /// Paper Example 2 (Tesla-crash analog): the lead vehicle TV#1 hides a
    /// slow vehicle TV#2; mid-scenario TV#1 exits the lane, revealing TV#2
    /// with little time to react.
    pub fn lead_exit_reveal(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(4, "lead_exit_reveal", seed);
        let lead_gap = rng.random_range(40.0..55.0);
        let reveal_gap = rng.random_range(110.0..150.0);
        let slow_v = rng.random_range(3.0..8.0);
        // TV#1 keeps speed (it sees TV#2 late, exactly like the Tesla
        // incident) and swerves out at 35 % of its time-to-collision with
        // the slow vehicle, clearing TV#2 just before reaching it.
        let closing = (cfg.ego_set_speed - slow_v).max(5.0);
        let exit_t = 0.35 * reveal_gap / closing;
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(lead_gap, 0.0, cfg.ego_start.v, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![SpeedKeyframe { time: 0.0, accel: 0.0 }],
                lane_change: Some(LaneChangeSpec {
                    start_time: exit_t,
                    duration: 2.0,
                    from_y: 0.0,
                    to_y: 3.7,
                }),
            },
        ));
        // TV#2: the hidden slow vehicle.
        cfg.actors.push(Actor::new(
            ActorId(2),
            ActorKind::Car,
            VehicleState::new(lead_gap + reveal_gap, 0.0, slow_v, 0.0, 0.0),
            Behavior::idm(slow_v),
        ));
        cfg
    }

    /// A pedestrian steps onto the roadway as the ego approaches.
    pub fn pedestrian_crossing(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(5, "pedestrian", seed);
        let cross_x = rng.random_range(350.0..550.0);
        // Trigger so the pedestrian is inside the ego corridor well
        // before the ego arrives: at freeway speed the ego needs the full
        // v²/(2a) ≈ 70 m plus perception latency, i.e. ~5 s of warning,
        // to stop. (A later trigger makes the collision *unavoidable*,
        // which tests the scenario, not the ADS.)
        let eta = cross_x / cfg.ego_set_speed;
        let walk_speed = rng.random_range(1.0..1.8);
        let start_y: f64 = -4.0;
        let corridor_entry_delay = (start_y.abs() - 2.25) / walk_speed;
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Pedestrian,
            VehicleState::new(cross_x, start_y, 0.0, std::f64::consts::FRAC_PI_2, 0.0),
            Behavior::Pedestrian {
                trigger_time: (eta - corridor_entry_delay - rng.random_range(4.5..6.0)).max(0.5),
                walk_speed,
            },
        ));
        cfg
    }

    /// A platoon of IDM followers behind a stop-and-go scripted leader.
    pub fn platoon(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(6, "platoon", seed);
        let n = rng.random_range(2..5u32);
        let mut x = rng.random_range(45.0..65.0);
        for i in 0..n {
            let behavior = if i == n - 1 {
                let brake_t = rng.random_range(10.0..18.0);
                Behavior::Scripted {
                    keyframes: vec![
                        SpeedKeyframe { time: 0.0, accel: 0.0 },
                        SpeedKeyframe { time: brake_t, accel: -3.0 },
                        SpeedKeyframe { time: brake_t + 4.0, accel: 1.5 },
                        SpeedKeyframe { time: brake_t + 10.0, accel: 0.0 },
                    ],
                    lane_change: None,
                }
            } else {
                Behavior::idm(cfg.ego_set_speed)
            };
            cfg.actors.push(Actor::new(
                ActorId(i + 1),
                ActorKind::Car,
                VehicleState::new(x, 0.0, cfg.ego_start.v, 0.0, 0.0),
                behavior,
            ));
            x += rng.random_range(25.0..40.0);
        }
        cfg
    }

    /// A stalled vehicle (static obstacle) in the ego lane far ahead.
    pub fn stalled_vehicle(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(7, "stalled_vehicle", seed);
        let x = rng.random_range(400.0..700.0);
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::StaticObstacle,
            VehicleState::new(x, rng.random_range(-0.4..0.4), 0.0, 0.0, 0.0),
            Behavior::Static,
        ));
        cfg
    }

    /// A slow vehicle merges into the ego lane from the right while still
    /// accelerating up to traffic speed — the classic on-ramp pattern.
    /// Unlike [`ScenarioConfig::cut_in`], the merger starts well below
    /// highway speed, so the ego's closing rate at merge time is high.
    pub fn merge(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(8, "merge", seed);
        let merge_t = rng.random_range(5.0..10.0);
        let merge_v0 = rng.random_range(16.0..22.0);
        // Budget spawn distance so the merger is still ahead of the ego
        // when it enters the lane, with a survivable (but tight) gap.
        // It accelerates at ~1.5 m/s² toward traffic speed throughout.
        let accel = 1.5;
        let merger_travel = merge_v0 * merge_t + 0.5 * accel * merge_t * merge_t;
        let ego_travel = cfg.ego_set_speed * merge_t;
        let gap_at_merge = rng.random_range(18.0..30.0);
        let ahead = gap_at_merge + ego_travel - merger_travel;
        cfg.actors.push(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(ahead.max(5.0), -3.7, merge_v0, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![
                    SpeedKeyframe { time: 0.0, accel },
                    SpeedKeyframe { time: merge_t + 8.0, accel: 0.0 },
                ],
                lane_change: Some(LaneChangeSpec {
                    start_time: merge_t,
                    duration: 3.0,
                    from_y: -3.7,
                    to_y: 0.0,
                }),
            },
        ));
        cfg
    }

    /// Stop-and-go traffic: a queue of IDM followers behind a leader that
    /// oscillates between crawling and recovering — the accordion waves
    /// of congested freeways. Keeps the ego in a persistently low-δ
    /// regime without ever being hazard-free-unsurvivable.
    pub fn stop_and_go(seed: u64) -> Self {
        let (mut cfg, mut rng) = Self::base(9, "stop_and_go", seed);
        // Congested corpus: everyone starts slow.
        let jam_v = rng.random_range(8.0..14.0);
        cfg.ego_start.v = jam_v;
        cfg.ego_set_speed = jam_v + rng.random_range(2.0..5.0);
        let n = rng.random_range(2..4u32);
        let mut x = rng.random_range(25.0..40.0);
        let period = rng.random_range(8.0..12.0);
        for i in 0..n {
            let behavior = if i == n - 1 {
                // The wave source: brake, crawl, recover, repeat.
                let mut keyframes = vec![SpeedKeyframe { time: 0.0, accel: 0.0 }];
                let mut t = rng.random_range(3.0..6.0);
                while t + period < cfg.duration {
                    keyframes.push(SpeedKeyframe { time: t, accel: -2.5 });
                    keyframes.push(SpeedKeyframe { time: t + 0.35 * period, accel: 1.8 });
                    keyframes.push(SpeedKeyframe { time: t + 0.7 * period, accel: 0.0 });
                    t += period;
                }
                Behavior::Scripted { keyframes, lane_change: None }
            } else {
                Behavior::idm(jam_v + 2.0)
            };
            cfg.actors.push(Actor::new(
                ActorId(i + 1),
                ActorKind::Car,
                VehicleState::new(x, 0.0, jam_v, 0.0, 0.0),
                behavior,
            ));
            x += rng.random_range(18.0..28.0);
        }
        cfg
    }
}

/// A suite of scenarios forming the evaluation corpus.
#[derive(Debug, Clone)]
pub struct ScenarioSuite {
    /// The scenarios, in id order.
    pub scenarios: Vec<ScenarioConfig>,
}

impl ScenarioSuite {
    /// The eight scenario family constructors, cycled by [`ScenarioSuite::generate`].
    /// The mix is weighted toward interaction-heavy families (cut-ins,
    /// occluded reveals, stalled vehicles) so the corpus has a realistic
    /// density of low-δ scenes — the paper's corpus likewise
    /// concentrated its 68 critical scenes in a small set of tight
    /// situations.
    const FAMILIES: [fn(u64) -> ScenarioConfig; 12] = [
        ScenarioConfig::free_drive,
        ScenarioConfig::cut_in,
        ScenarioConfig::lead_vehicle_cruise,
        ScenarioConfig::lead_exit_reveal,
        ScenarioConfig::lead_brake,
        ScenarioConfig::stalled_vehicle,
        ScenarioConfig::cut_in,
        ScenarioConfig::pedestrian_crossing,
        ScenarioConfig::lead_exit_reveal,
        ScenarioConfig::platoon,
        ScenarioConfig::stalled_vehicle,
        ScenarioConfig::cut_in,
    ];

    /// Generates `count` scenarios cycling through the families, each
    /// jittered by `seed`.
    pub fn generate(count: u32, seed: u64) -> Self {
        let scenarios = (0..count)
            .map(|i| {
                let family = Self::FAMILIES[(i as usize) % Self::FAMILIES.len()];
                let mut cfg = family(seed.wrapping_add(u64::from(i) * 7919));
                cfg.id = i;
                cfg
            })
            .collect();
        ScenarioSuite { scenarios }
    }

    /// The paper-scale corpus: 24 scenarios × 40 s × 7.5 Hz = **7 200
    /// scenes**, matching the evaluation in §I.
    pub fn paper_suite(seed: u64) -> Self {
        Self::generate(24, seed)
    }

    /// The two post-paper scenario families (on-ramp merges and
    /// stop-and-go congestion waves) cycled by
    /// [`ScenarioSuite::extended`].
    const EXTENDED_FAMILIES: [fn(u64) -> ScenarioConfig; 2] =
        [ScenarioConfig::merge, ScenarioConfig::stop_and_go];

    /// An extended corpus: the paper families plus on-ramp merges and
    /// stop-and-go congestion (one of each per six paper scenarios).
    /// Kept separate from [`ScenarioSuite::paper_suite`] so the E1–E10
    /// reproductions stay comparable run-to-run.
    pub fn extended(count: u32, seed: u64) -> Self {
        let scenarios = (0..count)
            .map(|i| {
                let idx = i as usize;
                let mut cfg = if idx % 8 == 6 {
                    Self::EXTENDED_FAMILIES[0](seed.wrapping_add(u64::from(i) * 7919))
                } else if idx % 8 == 7 {
                    Self::EXTENDED_FAMILIES[1](seed.wrapping_add(u64::from(i) * 7919))
                } else {
                    let family = Self::FAMILIES[idx % Self::FAMILIES.len()];
                    family(seed.wrapping_add(u64::from(i) * 7919))
                };
                cfg.id = i;
                cfg
            })
            .collect();
        ScenarioSuite { scenarios }
    }

    /// Total number of scenes (camera frames) in the suite.
    pub fn scene_count(&self) -> usize {
        self.scenarios.iter().map(ScenarioConfig::scene_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_7200_scenes() {
        let suite = ScenarioSuite::paper_suite(1);
        assert_eq!(suite.scenarios.len(), 24);
        assert_eq!(suite.scene_count(), 7200);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ScenarioSuite::generate(8, 99);
        let b = ScenarioSuite::generate(8, 99);
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.ego_start, y.ego_start);
            assert_eq!(x.actors.len(), y.actors.len());
            for (ax, ay) in x.actors.iter().zip(&y.actors) {
                assert_eq!(ax.state, ay.state);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig::cut_in(1);
        let b = ScenarioConfig::cut_in(2);
        assert_ne!(a.actors[0].state.x, b.actors[0].state.x);
    }

    #[test]
    fn cut_in_has_adjacent_lane_tv() {
        let cfg = ScenarioConfig::cut_in(7);
        assert_eq!(cfg.actors[0].state.y, 3.7);
        assert!(cfg.actors[0].behavior.lane_change().is_some());
    }

    #[test]
    fn reveal_scenario_hides_a_slow_vehicle() {
        let cfg = ScenarioConfig::lead_exit_reveal(7);
        assert_eq!(cfg.actors.len(), 2);
        assert!(cfg.actors[1].state.v < 8.0);
        assert!(cfg.actors[1].state.x > cfg.actors[0].state.x);
    }

    #[test]
    fn every_family_builds_and_runs() {
        for (i, family) in ScenarioSuite::FAMILIES.iter().enumerate() {
            let cfg = family(123);
            let mut w = crate::World::from_scenario(&cfg);
            w.set_ego(cfg.ego_start, crate::ActorKind::Car.dims());
            for _ in 0..50 {
                w.step(1.0 / SCENE_RATE_HZ);
            }
            assert!(w.time() > 6.0, "family {i} failed to advance");
        }
    }

    #[test]
    fn merge_vehicle_starts_slow_and_offside() {
        let cfg = ScenarioConfig::merge(3);
        let merger = &cfg.actors[0];
        assert_eq!(merger.state.y, -3.7, "merger starts in the right lane");
        assert!(merger.state.v < 22.5, "merger starts below highway speed");
        assert!(merger.behavior.lane_change().is_some());
    }

    #[test]
    fn stop_and_go_is_congested() {
        let cfg = ScenarioConfig::stop_and_go(3);
        assert!(cfg.ego_start.v < 14.5, "ego starts at jam speed");
        assert!(cfg.actors.len() >= 2);
        for a in &cfg.actors {
            assert_eq!(a.state.y, 0.0, "queue occupies the ego lane");
        }
    }

    #[test]
    fn extended_families_build_and_run() {
        for family in [ScenarioConfig::merge, ScenarioConfig::stop_and_go] {
            let cfg = family(123);
            let mut w = crate::World::from_scenario(&cfg);
            w.set_ego(cfg.ego_start, crate::ActorKind::Car.dims());
            for _ in 0..50 {
                w.step(1.0 / SCENE_RATE_HZ);
            }
            assert!(w.time() > 6.0);
        }
    }

    #[test]
    fn extended_suite_mixes_new_families() {
        let suite = ScenarioSuite::extended(16, 77);
        let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"merge"));
        assert!(names.contains(&"stop_and_go"));
        // ids are reassigned sequentially
        for (i, s) in suite.scenarios.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
    }

    #[test]
    fn extended_suite_does_not_perturb_paper_suite() {
        // The paper suite must remain byte-identical regardless of the
        // extended families' existence (E1–E10 comparability).
        let suite = ScenarioSuite::paper_suite(1);
        assert_eq!(suite.scene_count(), 7200);
        let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(!names.contains(&"merge"));
        assert!(!names.contains(&"stop_and_go"));
    }

    #[test]
    fn ego_speed_within_freeway_limits() {
        let suite = ScenarioSuite::paper_suite(5);
        for s in &suite.scenarios {
            assert!(s.ego_start.v >= 24.0 && s.ego_start.v <= 33.5);
            assert!(s.ego_set_speed <= 34.0);
        }
    }
}
