//! Parameterized driving scenarios and the evaluation scene suite.
//!
//! The paper evaluates on driving scenarios rendered by DriveSim/LGSVL and
//! counts **scenes** (one camera frame each): 7 200 scenes in total, of
//! which only 68 turned out to be safety-critical. This module provides a
//! matching synthetic corpus: families of parameterized highway scenarios
//! (free driving, car following, lead braking, cut-ins, occluded-lead
//! reveals à la the Tesla crash, pedestrian crossings, platoons, and the
//! post-paper additions) jittered by a seeded RNG.
//!
//! Families are **declarative**: each is a [`crate::spec::ScenarioSpec`]
//! in the [`crate::spec::FamilyRegistry`], sampled into a
//! [`ScenarioConfig`] by a seeded sampler. Suite construction
//! ([`ScenarioSuite::generate`] / [`ScenarioSuite::extended`]) resolves
//! family names through the registry; the legacy constructors on
//! [`ScenarioConfig`] are thin registry lookups kept for ergonomics.

use crate::spec::FamilyRegistry;
use crate::{Actor, Road};
use drivefi_kinematics::VehicleState;
use std::sync::Arc;

/// The camera frame rate that defines a "scene" (paper: slowest sensor at
/// 7.5 Hz drives the injector's discrete clock).
pub const SCENE_RATE_HZ: f64 = 7.5;

/// A fully specified driving scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Identifier within a suite.
    pub id: u32,
    /// Family name (e.g. `"cut_in"`) — a [`FamilyRegistry`] key.
    pub name: String,
    /// Seed used to jitter parameters. `(name, seed)` reproduces the
    /// scenario exactly: `FamilyRegistry::builtin().sample(&name, id,
    /// seed)` — the id is recorded verbatim and does not enter the RNG
    /// stream.
    pub seed: u64,
    /// Scenario duration \[s\].
    pub duration: f64,
    /// Road geometry.
    pub road: Road,
    /// Ego initial state.
    pub ego_start: VehicleState,
    /// Ego cruise set-speed handed to the planner \[m/s\].
    pub ego_set_speed: f64,
    /// Non-ego actors.
    pub actors: Vec<Actor>,
}

impl ScenarioConfig {
    /// Number of scenes (camera frames) this scenario contributes.
    pub fn scene_count(&self) -> usize {
        (self.duration * SCENE_RATE_HZ).round() as usize
    }

    /// Samples the builtin family `name`, using the family's key as the
    /// scenario id (the legacy standalone-constructor convention).
    fn from_family(name: &str, seed: u64) -> Self {
        let spec = FamilyRegistry::builtin().get(name).expect("builtin family");
        spec.sample(spec.family_key as u32, seed)
    }

    /// Free driving: empty road, ego cruises at its set speed.
    pub fn free_drive(seed: u64) -> Self {
        Self::from_family("free_drive", seed)
    }

    /// A lead vehicle cruising ahead at a similar speed.
    pub fn lead_vehicle_cruise(seed: u64) -> Self {
        Self::from_family("lead_cruise", seed)
    }

    /// The lead vehicle brakes hard mid-scenario.
    pub fn lead_brake(seed: u64) -> Self {
        Self::from_family("lead_brake", seed)
    }

    /// Paper Example 1: a target vehicle in the adjacent lane cuts into
    /// the ego lane with a small gap, collapsing the safety potential from
    /// ~20 m to ~2 m.
    pub fn cut_in(seed: u64) -> Self {
        Self::from_family("cut_in", seed)
    }

    /// Paper Example 2 (Tesla-crash analog): the lead vehicle TV#1 hides a
    /// slow vehicle TV#2; mid-scenario TV#1 exits the lane, revealing TV#2
    /// with little time to react.
    pub fn lead_exit_reveal(seed: u64) -> Self {
        Self::from_family("lead_exit_reveal", seed)
    }

    /// A pedestrian steps onto the roadway as the ego approaches.
    pub fn pedestrian_crossing(seed: u64) -> Self {
        Self::from_family("pedestrian", seed)
    }

    /// A platoon of IDM followers behind a stop-and-go scripted leader.
    pub fn platoon(seed: u64) -> Self {
        Self::from_family("platoon", seed)
    }

    /// A stalled vehicle (static obstacle) in the ego lane far ahead.
    pub fn stalled_vehicle(seed: u64) -> Self {
        Self::from_family("stalled_vehicle", seed)
    }

    /// A slow vehicle merges into the ego lane from the right while still
    /// accelerating up to traffic speed — the classic on-ramp pattern.
    /// Unlike [`ScenarioConfig::cut_in`], the merger starts well below
    /// highway speed, so the ego's closing rate at merge time is high.
    pub fn merge(seed: u64) -> Self {
        Self::from_family("merge", seed)
    }

    /// Stop-and-go traffic: a queue of IDM followers behind a leader that
    /// oscillates between crawling and recovering — the accordion waves
    /// of congested freeways. Keeps the ego in a persistently low-δ
    /// regime without ever being hazard-free-unsurvivable.
    pub fn stop_and_go(seed: u64) -> Self {
        Self::from_family("stop_and_go", seed)
    }
}

/// A suite of scenarios forming the evaluation corpus.
#[derive(Debug, Clone)]
pub struct ScenarioSuite {
    /// The scenarios, in id order.
    pub scenarios: Vec<ScenarioConfig>,
}

/// The paper-era family mix, cycled by [`ScenarioSuite::generate`].
/// Weighted toward interaction-heavy families (cut-ins, occluded
/// reveals, stalled vehicles) so the corpus has a realistic density of
/// low-δ scenes — the paper's corpus likewise concentrated its 68
/// critical scenes in a small set of tight situations.
const PAPER_MIX: [&str; 12] = [
    "free_drive",
    "cut_in",
    "lead_cruise",
    "lead_exit_reveal",
    "lead_brake",
    "stalled_vehicle",
    "cut_in",
    "pedestrian",
    "lead_exit_reveal",
    "platoon",
    "stalled_vehicle",
    "cut_in",
];

/// The post-paper mix, cycled by [`ScenarioSuite::extended`]: the paper
/// families interleaved with every DSL-native addition (tailgaters,
/// weaves, debris fields, shockwaves, merges, stop-and-go). Kept separate
/// from [`PAPER_MIX`] so the E1–E13 reproductions stay comparable
/// run-to-run.
const EXTENDED_MIX: [&str; 16] = [
    "free_drive",
    "cut_in",
    "tailgater",
    "lead_cruise",
    "lead_exit_reveal",
    "multi_lane_weave",
    "merge",
    "stop_and_go",
    "lead_brake",
    "debris_field",
    "pedestrian",
    "platoon",
    "shockwave_pedestrian",
    "stalled_vehicle",
    "merge",
    "stop_and_go",
];

impl ScenarioSuite {
    /// The one suite builder: scenario `i` samples the family
    /// `family_of(i)` from the builtin registry, with the suite index as
    /// the scenario id and a per-index jittered seed. Because the sampler
    /// takes the id explicitly (and keeps it out of the RNG stream), the
    /// recorded `(name, seed)` pair on every [`ScenarioConfig`]
    /// reproduces that scenario exactly.
    fn from_plan(count: u32, seed: u64, family_of: impl Fn(u32) -> &'static str) -> Self {
        let registry = FamilyRegistry::builtin();
        let scenarios = (0..count)
            .map(|i| registry.sample(family_of(i), i, seed.wrapping_add(u64::from(i) * 7919)))
            .collect();
        ScenarioSuite { scenarios }
    }

    /// Generates `count` scenarios cycling through the paper-era
    /// families, each jittered by `seed`.
    pub fn generate(count: u32, seed: u64) -> Self {
        Self::from_plan(count, seed, |i| PAPER_MIX[(i as usize) % PAPER_MIX.len()])
    }

    /// The paper-scale corpus: 24 scenarios × 40 s × 7.5 Hz = **7 200
    /// scenes**, matching the evaluation in §I.
    pub fn paper_suite(seed: u64) -> Self {
        Self::generate(24, seed)
    }

    /// An extended corpus cycling `EXTENDED_MIX`: the paper families
    /// plus every post-paper family (on-ramp merges, stop-and-go
    /// congestion, aggressive tailgaters, multi-lane weaves, stopped
    /// debris, shockwaves with crossing pedestrians).
    pub fn extended(count: u32, seed: u64) -> Self {
        Self::from_plan(count, seed, |i| EXTENDED_MIX[(i as usize) % EXTENDED_MIX.len()])
    }

    /// Builds a suite of `count` scenarios cycling through the named
    /// builtin families, with the standard per-index seed schedule —
    /// the campaign-plan path for `source = "families"`.
    ///
    /// # Panics
    ///
    /// Panics when `names` is empty or a name is not registered.
    pub fn from_families(names: &[&str], count: u32, seed: u64) -> Self {
        assert!(!names.is_empty(), "family list is empty");
        let registry = FamilyRegistry::builtin();
        for name in names {
            assert!(registry.get(name).is_some(), "scenario family `{name}` is not registered");
        }
        Self::from_plan(count, seed, |i| {
            registry.get(names[(i as usize) % names.len()]).expect("checked above").name
        })
    }

    /// Builds a suite of `count` scenarios cycling through explicit
    /// specs (inline or file-loaded families that never touch the
    /// builtin registry), with the same per-index seed schedule as
    /// [`ScenarioSuite::generate`].
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty.
    pub fn from_specs(specs: &[crate::spec::ScenarioSpec], count: u32, seed: u64) -> Self {
        assert!(!specs.is_empty(), "spec list is empty");
        let scenarios = (0..count)
            .map(|i| {
                specs[(i as usize) % specs.len()].sample(i, seed.wrapping_add(u64::from(i) * 7919))
            })
            .collect();
        ScenarioSuite { scenarios }
    }

    /// Total number of scenes (camera frames) in the suite.
    pub fn scene_count(&self) -> usize {
        self.scenarios.iter().map(ScenarioConfig::scene_count).sum()
    }

    /// The scenarios behind shared pointers, for zero-clone campaign
    /// fan-out: each scenario is allocated once and every job in a
    /// scenario × fault cross-product shares it.
    pub fn shared(&self) -> Vec<Arc<ScenarioConfig>> {
        self.scenarios.iter().cloned().map(Arc::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActorKind;

    #[test]
    fn paper_suite_has_7200_scenes() {
        let suite = ScenarioSuite::paper_suite(1);
        assert_eq!(suite.scenarios.len(), 24);
        assert_eq!(suite.scene_count(), 7200);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ScenarioSuite::generate(8, 99);
        let b = ScenarioSuite::generate(8, 99);
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.ego_start, y.ego_start);
            assert_eq!(x.actors.len(), y.actors.len());
            for (ax, ay) in x.actors.iter().zip(&y.actors) {
                assert_eq!(ax.state, ay.state);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig::cut_in(1);
        let b = ScenarioConfig::cut_in(2);
        assert_ne!(a.actors[0].state.x, b.actors[0].state.x);
    }

    #[test]
    fn recorded_name_and_seed_reproduce_suite_scenarios() {
        // The satellite fix: the suite no longer overwrites ids after
        // sampling, so the recorded (name, seed) on any suite scenario
        // reproduces it through the registry regardless of the id passed.
        let suite = ScenarioSuite::extended(16, 321);
        for s in &suite.scenarios {
            let again = FamilyRegistry::builtin().sample(&s.name, s.id, s.seed);
            assert_eq!(again.id, s.id);
            assert_eq!(again.ego_start, s.ego_start);
            assert_eq!(again.ego_set_speed, s.ego_set_speed);
            assert_eq!(again.actors.len(), s.actors.len());
            for (x, y) in again.actors.iter().zip(&s.actors) {
                assert_eq!(x.state, y.state);
                assert_eq!(x.behavior, y.behavior);
            }
        }
    }

    #[test]
    fn cut_in_has_adjacent_lane_tv() {
        let cfg = ScenarioConfig::cut_in(7);
        assert_eq!(cfg.actors[0].state.y, 3.7);
        assert!(cfg.actors[0].behavior.lane_change().is_some());
    }

    #[test]
    fn reveal_scenario_hides_a_slow_vehicle() {
        let cfg = ScenarioConfig::lead_exit_reveal(7);
        assert_eq!(cfg.actors.len(), 2);
        assert!(cfg.actors[1].state.v < 8.0);
        assert!(cfg.actors[1].state.x > cfg.actors[0].state.x);
    }

    #[test]
    fn every_registered_family_builds_and_runs() {
        for spec in FamilyRegistry::builtin().specs() {
            let cfg = spec.sample(0, 123);
            let mut w = crate::World::from_scenario(&cfg);
            w.set_ego(cfg.ego_start, ActorKind::Car.dims());
            for _ in 0..50 {
                w.step(1.0 / SCENE_RATE_HZ);
            }
            assert!(w.time() > 6.0, "family {} failed to advance", spec.name);
        }
    }

    #[test]
    fn merge_vehicle_starts_slow_and_offside() {
        let cfg = ScenarioConfig::merge(3);
        let merger = &cfg.actors[0];
        assert_eq!(merger.state.y, -3.7, "merger starts in the right lane");
        assert!(merger.state.v < 22.5, "merger starts below highway speed");
        assert!(merger.behavior.lane_change().is_some());
    }

    #[test]
    fn stop_and_go_is_congested() {
        let cfg = ScenarioConfig::stop_and_go(3);
        assert!(cfg.ego_start.v < 14.5, "ego starts at jam speed");
        assert!(cfg.actors.len() >= 2);
        for a in &cfg.actors {
            assert_eq!(a.state.y, 0.0, "queue occupies the ego lane");
        }
    }

    #[test]
    fn extended_suite_mixes_new_families() {
        let suite = ScenarioSuite::extended(16, 77);
        let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"merge"));
        assert!(names.contains(&"stop_and_go"));
        assert!(names.contains(&"tailgater"));
        assert!(names.contains(&"multi_lane_weave"));
        assert!(names.contains(&"debris_field"));
        assert!(names.contains(&"shockwave_pedestrian"));
        // ids follow the suite order.
        for (i, s) in suite.scenarios.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
    }

    #[test]
    fn extended_suite_does_not_perturb_paper_suite() {
        // The paper suite must remain byte-identical regardless of the
        // extended families' existence (E1–E10 comparability).
        let suite = ScenarioSuite::paper_suite(1);
        assert_eq!(suite.scene_count(), 7200);
        let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(!names.contains(&"merge"));
        assert!(!names.contains(&"stop_and_go"));
        assert!(!names.contains(&"tailgater"));
    }

    #[test]
    fn ego_speed_within_freeway_limits() {
        let suite = ScenarioSuite::paper_suite(5);
        for s in &suite.scenarios {
            assert!(s.ego_start.v >= 24.0 && s.ego_start.v <= 33.5);
            assert!(s.ego_set_speed <= 34.0);
        }
    }

    #[test]
    fn shared_scenarios_alias_one_allocation() {
        let suite = ScenarioSuite::generate(4, 9);
        let shared = suite.shared();
        assert_eq!(shared.len(), 4);
        for (arc, s) in shared.iter().zip(&suite.scenarios) {
            assert_eq!(arc.id, s.id);
            let clone = Arc::clone(arc);
            assert!(Arc::ptr_eq(arc, &clone));
        }
    }
}
