//! Straight multi-lane highway geometry.

/// Identifier of a lane; lane 0 is the rightmost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId(pub u8);

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// A single lane: a band of constant width parallel to the x-axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lane {
    /// Identifier.
    pub id: LaneId,
    /// Y coordinate of the lane center \[m\].
    pub center_y: f64,
    /// Lane width \[m\].
    pub width: f64,
}

impl Lane {
    /// Y coordinate of the left boundary.
    pub fn left_boundary(&self) -> f64 {
        self.center_y + self.width / 2.0
    }

    /// Y coordinate of the right boundary.
    pub fn right_boundary(&self) -> f64 {
        self.center_y - self.width / 2.0
    }

    /// True when `y` lies within the lane band.
    pub fn contains_y(&self, y: f64) -> bool {
        y >= self.right_boundary() && y <= self.left_boundary()
    }
}

/// A straight highway segment with `n` parallel lanes along +x.
///
/// Lane 0 is centered at `y = 0`; lane `i` at `y = i * lane_width`.
#[derive(Debug, Clone, PartialEq)]
pub struct Road {
    lanes: Vec<Lane>,
    /// Drivable length \[m\].
    pub length: f64,
}

impl Road {
    /// Standard US lane width \[m\].
    pub const DEFAULT_LANE_WIDTH: f64 = 3.7;

    /// Creates a highway with `lane_count` lanes of `lane_width` meters.
    ///
    /// # Panics
    ///
    /// Panics if `lane_count` is zero or dimensions are non-positive.
    pub fn highway(lane_count: u8, lane_width: f64, length: f64) -> Self {
        assert!(lane_count > 0, "a road needs at least one lane");
        assert!(lane_width > 0.0 && length > 0.0, "road dimensions must be positive");
        let lanes = (0..lane_count)
            .map(|i| Lane { id: LaneId(i), center_y: f64::from(i) * lane_width, width: lane_width })
            .collect();
        Road { lanes, length }
    }

    /// A three-lane highway long enough for every scenario in the suite.
    pub fn default_highway() -> Self {
        Road::highway(3, Road::DEFAULT_LANE_WIDTH, 4000.0)
    }

    /// Makes `self` equal to `other`, reusing the existing lane storage
    /// (the arena-reset path: derived `clone_from` would reallocate).
    pub fn copy_from(&mut self, other: &Road) {
        self.lanes.clear();
        self.lanes.extend_from_slice(&other.lanes);
        self.length = other.length;
    }

    /// All lanes, rightmost first.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// The lane with the given id, if any.
    pub fn lane(&self, id: LaneId) -> Option<&Lane> {
        self.lanes.get(usize::from(id.0))
    }

    /// The lane whose band contains `y` (boundaries tie toward the lower
    /// lane), or the nearest lane when off-road.
    pub fn lane_at(&self, y: f64) -> &Lane {
        self.lanes.iter().find(|l| l.contains_y(y)).unwrap_or_else(|| {
            self.lanes
                .iter()
                .min_by(|a, b| {
                    (a.center_y - y)
                        .abs()
                        .partial_cmp(&(b.center_y - y).abs())
                        .expect("lane centers are finite")
                })
                .expect("road has at least one lane")
        })
    }

    /// Y of the right edge of the drivable surface.
    pub fn right_edge(&self) -> f64 {
        self.lanes.first().expect("non-empty").right_boundary()
    }

    /// Y of the left edge of the drivable surface.
    pub fn left_edge(&self) -> f64 {
        self.lanes.last().expect("non-empty").left_boundary()
    }

    /// True when `y` is on the drivable surface.
    pub fn on_road(&self, y: f64) -> bool {
        y >= self.right_edge() && y <= self.left_edge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highway_lane_layout() {
        let r = Road::highway(3, 3.7, 1000.0);
        assert_eq!(r.lanes().len(), 3);
        assert_eq!(r.lane(LaneId(1)).unwrap().center_y, 3.7);
        assert_eq!(r.right_edge(), -1.85);
        assert_eq!(r.left_edge(), 2.0 * 3.7 + 1.85);
    }

    #[test]
    fn lane_at_picks_containing_band() {
        let r = Road::highway(3, 3.7, 1000.0);
        assert_eq!(r.lane_at(0.0).id, LaneId(0));
        assert_eq!(r.lane_at(3.7).id, LaneId(1));
        assert_eq!(r.lane_at(6.0).id, LaneId(2));
    }

    #[test]
    fn lane_at_clamps_off_road() {
        let r = Road::highway(2, 3.7, 1000.0);
        assert_eq!(r.lane_at(-50.0).id, LaneId(0));
        assert_eq!(r.lane_at(50.0).id, LaneId(1));
    }

    #[test]
    fn boundaries_are_consistent() {
        let r = Road::default_highway();
        for lane in r.lanes() {
            assert!((lane.left_boundary() - lane.right_boundary() - lane.width).abs() < 1e-12);
            assert!(lane.contains_y(lane.center_y));
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_road_panics() {
        let _ = Road::highway(0, 3.7, 100.0);
    }
}
