//! Declarative scenario DSL: specs, the seeded sampler, and the family
//! registry.
//!
//! The original scenario layer was a closed set of hardcoded constructor
//! functions wired through fn-pointer arrays — adding a driving situation
//! meant writing imperative Rust inside `drivefi-world`. AVFI (Jha et
//! al.) argues an injection harness lives or dies by how cheaply new
//! scenarios can be authored; this module makes scenario families *data*:
//!
//! * [`ScenarioSpec`] — a declarative description of one family: road
//!   geometry, ego-initialization ranges, and a small sampling
//!   [`Stmt`] program that draws jittered parameters and spawns actors
//!   from templates with parameterized maneuver programs (keyframe /
//!   IDM / lane-change / pedestrian / brake-wave primitives).
//! * [`Expr`] — arithmetic over drawn parameters and ego builtins, so
//!   derived quantities (spawn-distance budgets, time-to-collision
//!   triggers) stay declarative.
//! * [`FamilyRegistry`] — name → spec. The builtin registry carries every
//!   family the evaluation suites use; downstream users register their
//!   own specs next to them.
//!
//! Sampling is a pure function of `(spec, id, seed)`: the RNG stream is
//! seeded from the spec's stable `family_key` (not the suite position),
//! so a recorded `(name, seed)` pair reproduces a scenario exactly no
//! matter where in a suite it appeared. The ten pre-DSL families compile
//! to specs that reproduce the historical byte-for-byte streams — the
//! paper suite (24 scenarios / 7 200 scenes) is unchanged.

use crate::behavior::{Behavior, IdmParams, LaneChangeSpec, SpeedKeyframe};
use crate::{Actor, ActorId, ActorKind, Road, ScenarioConfig};
use drivefi_kinematics::VehicleState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Seed-mixing constant shared by every family (kept from the pre-DSL
/// constructors so historical streams reproduce).
const SEED_MAGIC: u64 = 0xD21E_F1A5_0000;

/// Interns `name` into a process-lifetime string, so specs built from
/// *parsed* data (TOML scenario files, campaign plans) can use the same
/// `&'static str` names as compiled-in specs. Each distinct name is
/// leaked exactly once; repeated loads of the same files allocate
/// nothing new, which keeps round-trip property tests leak-bounded.
pub fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(&hit) = pool.get(name) {
        return hit;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// An arithmetic expression over sampled parameters and ego builtins.
///
/// Variables are bound by [`Stmt::Draw`] / [`Stmt::DrawInt`] /
/// [`Stmt::Let`]; the builtins `"ego.v"` (current ego start speed),
/// `"ego.set_speed"` (current planner set-speed), `"duration"`, and —
/// inside a [`Stmt::Repeat`] body — `"i"`, `"n"`, `"last"` are always
/// available. Operators follow IEEE f64 semantics in source order, so a
/// spec computes bit-identical values to the imperative code it replaces.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(f64),
    /// A bound variable.
    Var(&'static str),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// `f64::min`.
    Min(Box<Expr>, Box<Expr>),
    /// `f64::max`.
    Max(Box<Expr>, Box<Expr>),
}

/// A literal expression.
pub fn lit(value: f64) -> Expr {
    Expr::Const(value)
}

/// A variable reference.
pub fn var(name: &'static str) -> Expr {
    Expr::Var(name)
}

impl From<f64> for Expr {
    fn from(value: f64) -> Self {
        Expr::Const(value)
    }
}

macro_rules! expr_binop {
    ($($trait:ident :: $method:ident => $variant:ident),* $(,)?) => {$(
        impl<R: Into<Expr>> std::ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
    )*};
}

expr_binop! {
    Add::add => Add,
    Sub::sub => Sub,
    Mul::mul => Mul,
    Div::div => Div,
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl Expr {
    /// `f64::min` of the two expressions.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Min(Box::new(self), Box::new(other.into()))
    }

    /// `f64::max` of the two expressions.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Max(Box::new(self), Box::new(other.into()))
    }

    fn eval(&self, env: &Env) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(name) => env.get(name),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Div(a, b) => a.eval(env) / b.eval(env),
            Expr::Neg(a) => -a.eval(env),
            Expr::Min(a, b) => a.eval(env).min(b.eval(env)),
            Expr::Max(a, b) => a.eval(env).max(b.eval(env)),
        }
    }
}

/// The sampler's variable environment. Linear scan: family programs bind
/// a handful of names.
#[derive(Debug, Default)]
struct Env {
    bindings: Vec<(&'static str, f64)>,
}

impl Env {
    fn get(&self, name: &str) -> f64 {
        self.try_get(name).unwrap_or_else(|| panic!("unbound scenario variable `{name}`"))
    }

    fn try_get(&self, name: &str) -> Option<f64> {
        self.bindings.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn set(&mut self, name: &'static str, value: f64) {
        match self.bindings.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.bindings.push((name, value)),
        }
    }

    fn unset(&mut self, name: &str) {
        self.bindings.retain(|(n, _)| *n != name);
    }
}

/// A lane-change maneuver template (cosine blend, like
/// [`LaneChangeSpec`], with parameterized timing and lanes).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneChangeTemplate {
    /// Maneuver start time \[s\].
    pub start_time: Expr,
    /// Maneuver duration \[s\].
    pub duration: Expr,
    /// Lateral start \[m\].
    pub from_y: Expr,
    /// Lateral end \[m\].
    pub to_y: Expr,
}

impl LaneChangeTemplate {
    fn sample(&self, env: &Env) -> LaneChangeSpec {
        LaneChangeSpec {
            start_time: self.start_time.eval(env),
            duration: self.duration.eval(env),
            from_y: self.from_y.eval(env),
            to_y: self.to_y.eval(env),
        }
    }
}

/// A longitudinal maneuver program for scripted actors.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyframeProgram {
    /// Explicit `(time, accel)` keyframes.
    List(Vec<(Expr, Expr)>),
    /// The congestion-wave primitive: starting at `start`, repeat
    /// brake / recover / coast segments every `period` seconds until the
    /// scenario duration is reached (the accordion waves of stop-and-go
    /// traffic).
    Wave {
        /// First brake onset \[s\].
        start: Expr,
        /// Wave period \[s\].
        period: Expr,
        /// Braking acceleration (negative) \[m/s²\].
        brake: Expr,
        /// Recovery acceleration \[m/s²\].
        recover: Expr,
        /// Fraction of the period spent braking.
        brake_frac: f64,
        /// Fraction of the period after which the actor coasts.
        coast_frac: f64,
    },
}

impl KeyframeProgram {
    fn sample(&self, env: &Env, duration: f64) -> Vec<SpeedKeyframe> {
        match self {
            KeyframeProgram::List(frames) => frames
                .iter()
                .map(|(time, accel)| SpeedKeyframe { time: time.eval(env), accel: accel.eval(env) })
                .collect(),
            KeyframeProgram::Wave { start, period, brake, recover, brake_frac, coast_frac } => {
                let period = period.eval(env);
                let brake = brake.eval(env);
                let recover = recover.eval(env);
                let mut keyframes = vec![SpeedKeyframe { time: 0.0, accel: 0.0 }];
                let mut t = start.eval(env);
                while t + period < duration {
                    keyframes.push(SpeedKeyframe { time: t, accel: brake });
                    keyframes.push(SpeedKeyframe { time: t + brake_frac * period, accel: recover });
                    keyframes.push(SpeedKeyframe { time: t + coast_frac * period, accel: 0.0 });
                    t += period;
                }
                keyframes
            }
        }
    }
}

/// The behavior half of an actor template.
#[derive(Debug, Clone, PartialEq)]
pub enum ManeuverTemplate {
    /// Does not move.
    Static,
    /// IDM car-following toward `desired`, optionally changing lanes
    /// and/or overriding the desired time headway (sub-second headways
    /// make aggressive tailgaters).
    Idm {
        /// Free-road desired speed \[m/s\].
        desired: Expr,
        /// Time-headway override \[s\] (default [`IdmParams::default`]).
        headway: Option<Expr>,
        /// Optional lane change.
        lane_change: Option<LaneChangeTemplate>,
    },
    /// A scripted longitudinal program, optionally changing lanes.
    Scripted {
        /// The keyframe program.
        keyframes: KeyframeProgram,
        /// Optional lane change.
        lane_change: Option<LaneChangeTemplate>,
    },
    /// A pedestrian stepping off at `trigger_time`.
    Pedestrian {
        /// Step-off time \[s\].
        trigger_time: Expr,
        /// Walking speed \[m/s\].
        walk_speed: Expr,
    },
}

/// An actor spawned by [`Stmt::Spawn`]. Actor ids are assigned in spawn
/// order, starting at 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorTemplate {
    /// Actor kind (footprint).
    pub kind: ActorKind,
    /// Initial longitudinal position \[m\].
    pub x: Expr,
    /// Initial lateral position \[m\].
    pub y: Expr,
    /// Initial speed \[m/s\].
    pub v: Expr,
    /// Initial heading \[rad\].
    pub heading: Expr,
    /// Behavior.
    pub maneuver: ManeuverTemplate,
}

impl ActorTemplate {
    fn sample(&self, env: &Env, duration: f64, id: u32) -> Actor {
        let behavior = match &self.maneuver {
            ManeuverTemplate::Static => Behavior::Static,
            ManeuverTemplate::Idm { desired, headway, lane_change } => Behavior::Idm {
                params: IdmParams {
                    time_headway: headway
                        .as_ref()
                        .map_or(IdmParams::default().time_headway, |h| h.eval(env)),
                    ..IdmParams::default()
                },
                desired_speed: desired.eval(env),
                lane_change: lane_change.as_ref().map(|lc| lc.sample(env)),
            },
            ManeuverTemplate::Scripted { keyframes, lane_change } => Behavior::Scripted {
                keyframes: keyframes.sample(env, duration),
                lane_change: lane_change.as_ref().map(|lc| lc.sample(env)),
            },
            ManeuverTemplate::Pedestrian { trigger_time, walk_speed } => Behavior::Pedestrian {
                trigger_time: trigger_time.eval(env),
                walk_speed: walk_speed.eval(env),
            },
        };
        Actor::new(
            ActorId(id),
            self.kind,
            VehicleState::new(
                self.x.eval(env),
                self.y.eval(env),
                self.v.eval(env),
                self.heading.eval(env),
                0.0,
            ),
            behavior,
        )
    }
}

/// One statement of a family's sampling program. Statements execute in
/// order; every `Draw` consumes RNG in declaration order, which is what
/// makes sampling a pure, reproducible function of the seed.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Draw a uniform f64 from `[lo, hi)` into `var`.
    Draw {
        /// Variable bound to the draw.
        var: &'static str,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
    },
    /// Draw a uniform integer from `[lo, hi)` into `var` (a distinct RNG
    /// consumption pattern from the f64 draw).
    DrawInt {
        /// Variable bound to the draw.
        var: &'static str,
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (exclusive).
        hi: u32,
    },
    /// Bind (or rebind) `var` to the value of `expr`. No RNG.
    Let {
        /// Variable to bind.
        var: &'static str,
        /// Value.
        expr: Expr,
    },
    /// Override the ego's initial speed (rebinds `"ego.v"`).
    SetEgoSpeed(Expr),
    /// Override the planner set-speed (rebinds `"ego.set_speed"`).
    SetEgoSetSpeed(Expr),
    /// Spawn one actor (boxed: templates dwarf the other variants).
    /// Construct with [`Stmt::spawn`].
    Spawn(Box<ActorTemplate>),
    /// Run `body` `count` times with `"i"` (index), `"n"` (count), and
    /// `"last"` (1.0 on the final iteration) bound.
    Repeat {
        /// Iteration count (truncated to an integer, clamped at 0).
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Run `then` when `cond` is non-zero, `otherwise` otherwise.
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken when `cond != 0`.
        then: Vec<Stmt>,
        /// Taken when `cond == 0`.
        otherwise: Vec<Stmt>,
    },
}

impl Stmt {
    /// A [`Stmt::Spawn`] over `template`.
    pub fn spawn(template: ActorTemplate) -> Stmt {
        Stmt::Spawn(Box::new(template))
    }
}

/// Ego initialization: the first two RNG draws of every family.
#[derive(Debug, Clone, PartialEq)]
pub struct EgoSpec {
    /// Initial-speed draw, lower bound \[m/s\].
    pub v0_lo: f64,
    /// Initial-speed draw, upper bound \[m/s\].
    pub v0_hi: f64,
    /// Set-speed draw bounds, evaluated with `"ego.v"` bound to the drawn
    /// initial speed.
    pub set_lo: Expr,
    /// See [`EgoSpec::set_lo`].
    pub set_hi: Expr,
}

impl Default for EgoSpec {
    /// Freeway cruising: v₀ ∈ \[24, 33.5) m/s, set-speed up to 4 m/s
    /// above it, capped at the 33.5 m/s freeway ceiling.
    fn default() -> Self {
        EgoSpec {
            v0_lo: 24.0,
            v0_hi: 33.5,
            set_lo: var("ego.v"),
            set_hi: (var("ego.v") + 4.0).min(33.5 + 1e-9),
        }
    }
}

/// Road geometry of a family (sampled once per scenario, not jittered).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadSpec {
    /// Lane count.
    pub lanes: u8,
    /// Lane width \[m\].
    pub lane_width: f64,
    /// Drivable length \[m\].
    pub length: f64,
}

impl Default for RoadSpec {
    fn default() -> Self {
        RoadSpec { lanes: 3, lane_width: Road::DEFAULT_LANE_WIDTH, length: 4000.0 }
    }
}

impl RoadSpec {
    fn build(&self) -> Road {
        Road::highway(self.lanes, self.lane_width, self.length)
    }
}

/// A declarative scenario family: geometry, ego ranges, and the sampling
/// program. See the [module docs](self) for the builtin families and
/// [`FamilyRegistry`] for registration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Family name (the registry key and `ScenarioConfig::name`).
    pub name: &'static str,
    /// Stable per-family seed salt. Mixed into the RNG stream instead of
    /// the suite position, so `(name, seed)` reproduces a scenario
    /// wherever it appeared. Must be unique per registered family.
    pub family_key: u64,
    /// Scenario duration \[s\].
    pub duration: f64,
    /// Road geometry.
    pub road: RoadSpec,
    /// Ego initialization.
    pub ego: EgoSpec,
    /// The sampling program.
    pub program: Vec<Stmt>,
}

impl ScenarioSpec {
    /// Samples the spec into a concrete [`ScenarioConfig`].
    ///
    /// `id` is the caller's identifier (a suite index, or the family key
    /// for standalone construction) and is recorded verbatim — it does
    /// **not** influence the RNG stream, so the recorded `(name, seed)`
    /// pair alone reproduces the scenario.
    pub fn sample(&self, id: u32, seed: u64) -> ScenarioConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ SEED_MAGIC ^ self.family_key);
        let mut env = Env::default();
        env.set("duration", self.duration);
        let v0 = rng.random_range(self.ego.v0_lo..self.ego.v0_hi);
        env.set("ego.v", v0);
        let set_lo = self.ego.set_lo.eval(&env);
        let set_hi = self.ego.set_hi.eval(&env);
        env.set("ego.set_speed", rng.random_range(set_lo..set_hi));

        let mut actors = Vec::new();
        self.exec(&self.program, &mut rng, &mut env, &mut actors);

        ScenarioConfig {
            id,
            name: self.name.to_owned(),
            seed,
            duration: self.duration,
            road: self.road.build(),
            ego_start: VehicleState::new(0.0, 0.0, env.get("ego.v"), 0.0, 0.0),
            ego_set_speed: env.get("ego.set_speed"),
            actors,
        }
    }

    fn exec(&self, stmts: &[Stmt], rng: &mut StdRng, env: &mut Env, actors: &mut Vec<Actor>) {
        for stmt in stmts {
            match stmt {
                Stmt::Draw { var, lo, hi } => {
                    let (lo, hi) = (lo.eval(env), hi.eval(env));
                    env.set(var, rng.random_range(lo..hi));
                }
                Stmt::DrawInt { var, lo, hi } => {
                    env.set(var, f64::from(rng.random_range(*lo..*hi)));
                }
                Stmt::Let { var, expr } => {
                    let value = expr.eval(env);
                    env.set(var, value);
                }
                Stmt::SetEgoSpeed(expr) => {
                    let value = expr.eval(env);
                    env.set("ego.v", value);
                }
                Stmt::SetEgoSetSpeed(expr) => {
                    let value = expr.eval(env);
                    env.set("ego.set_speed", value);
                }
                Stmt::Spawn(template) => {
                    let id = actors.len() as u32 + 1;
                    actors.push(template.sample(env, self.duration, id));
                }
                Stmt::Repeat { count, body } => {
                    let n = count.eval(env).max(0.0) as u32;
                    // The loop bindings are scoped to the body: an outer
                    // loop's i/n/last must survive a nested Repeat, and
                    // none of them leak past the loop.
                    let saved: [(&'static str, Option<f64>); 3] =
                        ["i", "n", "last"].map(|name| (name, env.try_get(name)));
                    for i in 0..n {
                        env.set("i", f64::from(i));
                        env.set("n", f64::from(n));
                        env.set("last", f64::from(u8::from(i + 1 == n)));
                        self.exec(body, rng, env, actors);
                    }
                    for (name, value) in saved {
                        match value {
                            Some(value) => env.set(name, value),
                            None => env.unset(name),
                        }
                    }
                }
                Stmt::If { cond, then, otherwise } => {
                    if cond.eval(env) != 0.0 {
                        self.exec(then, rng, env, actors);
                    } else {
                        self.exec(otherwise, rng, env, actors);
                    }
                }
            }
        }
    }
}

/// Name → [`ScenarioSpec`] registry. All suite construction
/// ([`crate::ScenarioSuite`]) resolves families here; downstream users
/// add their own specs with [`FamilyRegistry::register`].
#[derive(Debug, Clone, Default)]
pub struct FamilyRegistry {
    specs: BTreeMap<&'static str, ScenarioSpec>,
}

impl FamilyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FamilyRegistry::default()
    }

    /// The builtin registry: the ten pre-DSL families plus the DSL-native
    /// additions (`tailgater`, `multi_lane_weave`, `debris_field`,
    /// `shockwave_pedestrian`).
    pub fn builtin() -> &'static FamilyRegistry {
        static BUILTIN: OnceLock<FamilyRegistry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut registry = FamilyRegistry::new();
            for spec in builtin_specs() {
                registry.register(spec);
            }
            registry
        })
    }

    /// Registers (or replaces) a spec under its name.
    ///
    /// # Panics
    ///
    /// Panics when another registered family already uses the spec's
    /// `family_key` — duplicate keys would alias RNG streams.
    pub fn register(&mut self, spec: ScenarioSpec) {
        if let Some(clash) =
            self.specs.values().find(|s| s.family_key == spec.family_key && s.name != spec.name)
        {
            panic!(
                "family_key {} of `{}` already used by `{}`",
                spec.family_key, spec.name, clash.name
            );
        }
        self.specs.insert(spec.name, spec);
    }

    /// The spec registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.get(name)
    }

    /// Registered family names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.specs.keys().copied()
    }

    /// Registered specs, in name order.
    pub fn specs(&self) -> impl Iterator<Item = &ScenarioSpec> + '_ {
        self.specs.values()
    }

    /// Samples the family registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not registered.
    pub fn sample(&self, name: &str, id: u32, seed: u64) -> ScenarioConfig {
        self.get(name)
            .unwrap_or_else(|| panic!("scenario family `{name}` is not registered"))
            .sample(id, seed)
    }
}

/// A car template without lane change, following IDM toward `desired`.
fn idm_car(x: Expr, y: Expr, v: Expr, desired: Expr) -> ActorTemplate {
    ActorTemplate {
        kind: ActorKind::Car,
        x,
        y,
        v,
        heading: lit(0.0),
        maneuver: ManeuverTemplate::Idm { desired, headway: None, lane_change: None },
    }
}

/// The builtin family specs. The first ten reproduce the pre-DSL
/// constructors' RNG streams bit-for-bit (same draw order, same IEEE
/// operation order); the last four are DSL-native.
fn builtin_specs() -> Vec<ScenarioSpec> {
    let base = |name, family_key| ScenarioSpec {
        name,
        family_key,
        duration: 40.0,
        road: RoadSpec::default(),
        ego: EgoSpec::default(),
        program: Vec::new(),
    };

    let mut specs = Vec::new();

    // Free driving: empty road, ego cruises at its set speed.
    specs.push(base("free_drive", 0));

    // A lead vehicle cruising ahead at a similar speed.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "gap", lo: lit(45.0), hi: lit(90.0) },
            Stmt::Draw { var: "dv", lo: lit(-2.0), hi: lit(2.0) },
            Stmt::Let { var: "lead_v", expr: (var("ego.v") + var("dv")).max(15.0) },
            Stmt::spawn(idm_car(var("gap"), lit(0.0), var("lead_v"), var("lead_v"))),
        ],
        ..base("lead_cruise", 1)
    });

    // The lead vehicle brakes hard mid-scenario.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "gap", lo: lit(50.0), hi: lit(80.0) },
            Stmt::Draw { var: "brake_t", lo: lit(8.0), hi: lit(16.0) },
            Stmt::Draw { var: "decel", lo: lit(2.5), hi: lit(5.0) },
            Stmt::Draw { var: "recover_dt", lo: lit(3.0), hi: lit(5.0) },
            Stmt::Let { var: "recover_t", expr: var("brake_t") + var("recover_dt") },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("gap"),
                y: lit(0.0),
                v: var("ego.v"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Scripted {
                    keyframes: KeyframeProgram::List(vec![
                        (lit(0.0), lit(0.0)),
                        (var("brake_t"), -var("decel")),
                        (var("recover_t"), lit(1.0)),
                        (var("recover_t") + 6.0, lit(0.0)),
                    ]),
                    lane_change: None,
                },
            }),
        ],
        ..base("lead_brake", 2)
    });

    // Paper Example 1: an adjacent-lane vehicle cuts in with a small gap,
    // collapsing δ from ~20 m to ~2 m (survivable fault-free; the spawn
    // distance budgets for the closure the ego achieves before and during
    // the maneuver).
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "cut_t", lo: lit(6.0), hi: lit(12.0) },
            Stmt::Draw { var: "dv", lo: lit(2.0), hi: lit(4.0) },
            Stmt::Let { var: "tv_speed", expr: var("ego.set_speed") - var("dv") },
            Stmt::Let {
                var: "closure",
                expr: (var("ego.set_speed") - var("tv_speed")) * (var("cut_t") + 3.0),
            },
            Stmt::Draw { var: "ahead0", lo: lit(10.0), hi: lit(17.0) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("ahead0") + var("closure"),
                y: lit(3.7),
                v: var("tv_speed"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Idm {
                    desired: var("tv_speed"),
                    headway: None,
                    lane_change: Some(LaneChangeTemplate {
                        start_time: var("cut_t"),
                        duration: lit(3.0),
                        from_y: lit(3.7),
                        to_y: lit(0.0),
                    }),
                },
            }),
            // Additional traffic in the far lane for sensor load.
            Stmt::Draw { var: "far_x", lo: lit(40.0), hi: lit(70.0) },
            Stmt::spawn(idm_car(var("far_x"), lit(7.4), var("tv_speed"), var("tv_speed"))),
        ],
        ..base("cut_in", 3)
    });

    // Paper Example 2 (Tesla-crash analog): TV#1 hides slow TV#2 and
    // swerves out at 35 % of its own TTC, revealing it late.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "lead_gap", lo: lit(40.0), hi: lit(55.0) },
            Stmt::Draw { var: "reveal_gap", lo: lit(110.0), hi: lit(150.0) },
            Stmt::Draw { var: "slow_v", lo: lit(3.0), hi: lit(8.0) },
            Stmt::Let { var: "closing", expr: (var("ego.set_speed") - var("slow_v")).max(5.0) },
            Stmt::Let { var: "exit_t", expr: lit(0.35) * var("reveal_gap") / var("closing") },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("lead_gap"),
                y: lit(0.0),
                v: var("ego.v"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Scripted {
                    keyframes: KeyframeProgram::List(vec![(lit(0.0), lit(0.0))]),
                    lane_change: Some(LaneChangeTemplate {
                        start_time: var("exit_t"),
                        duration: lit(2.0),
                        from_y: lit(0.0),
                        to_y: lit(3.7),
                    }),
                },
            }),
            Stmt::spawn(idm_car(
                var("lead_gap") + var("reveal_gap"),
                lit(0.0),
                var("slow_v"),
                var("slow_v"),
            )),
        ],
        ..base("lead_exit_reveal", 4)
    });

    // A pedestrian steps onto the roadway with ~5 s of warning — enough
    // for a freeway-speed stop, so the golden run tests the ADS rather
    // than being unsurvivable by construction.
    specs.push(ScenarioSpec {
        program: pedestrian_program(
            (lit(350.0), lit(550.0)),
            (lit(1.0), lit(1.8)),
            (lit(4.5), lit(6.0)),
        ),
        ..base("pedestrian", 5)
    });

    // A platoon of IDM followers behind a stop-and-go scripted leader.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::DrawInt { var: "n", lo: 2, hi: 5 },
            Stmt::Draw { var: "x", lo: lit(45.0), hi: lit(65.0) },
            Stmt::Repeat {
                count: var("n"),
                body: vec![
                    Stmt::If {
                        cond: var("last"),
                        then: vec![
                            Stmt::Draw { var: "brake_t", lo: lit(10.0), hi: lit(18.0) },
                            Stmt::spawn(ActorTemplate {
                                kind: ActorKind::Car,
                                x: var("x"),
                                y: lit(0.0),
                                v: var("ego.v"),
                                heading: lit(0.0),
                                maneuver: ManeuverTemplate::Scripted {
                                    keyframes: KeyframeProgram::List(vec![
                                        (lit(0.0), lit(0.0)),
                                        (var("brake_t"), lit(-3.0)),
                                        (var("brake_t") + 4.0, lit(1.5)),
                                        (var("brake_t") + 10.0, lit(0.0)),
                                    ]),
                                    lane_change: None,
                                },
                            }),
                        ],
                        otherwise: vec![Stmt::spawn(idm_car(
                            var("x"),
                            lit(0.0),
                            var("ego.v"),
                            var("ego.set_speed"),
                        ))],
                    },
                    Stmt::Draw { var: "x_inc", lo: lit(25.0), hi: lit(40.0) },
                    Stmt::Let { var: "x", expr: var("x") + var("x_inc") },
                ],
            },
        ],
        ..base("platoon", 6)
    });

    // A stalled vehicle (static obstacle) in the ego lane far ahead.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "x", lo: lit(400.0), hi: lit(700.0) },
            Stmt::Draw { var: "y", lo: lit(-0.4), hi: lit(0.4) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::StaticObstacle,
                x: var("x"),
                y: var("y"),
                v: lit(0.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Static,
            }),
        ],
        ..base("stalled_vehicle", 7)
    });

    // A slow on-ramp vehicle merges into the ego lane while still
    // accelerating up to traffic speed. Merge timing and gap are tuned so
    // the family is survivable fault-free at *every* seed (the pre-DSL
    // ranges left a ~0.4 % unsurvivable tail at early merges).
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "merge_t", lo: lit(7.0), hi: lit(11.0) },
            Stmt::Draw { var: "merge_v0", lo: lit(16.0), hi: lit(22.0) },
            Stmt::Let { var: "accel", expr: lit(1.5) },
            Stmt::Let {
                var: "merger_travel",
                expr: var("merge_v0") * var("merge_t")
                    + lit(0.5) * var("accel") * var("merge_t") * var("merge_t"),
            },
            Stmt::Let { var: "ego_travel", expr: var("ego.set_speed") * var("merge_t") },
            Stmt::Draw { var: "gap_at_merge", lo: lit(21.0), hi: lit(32.0) },
            Stmt::Let {
                var: "ahead",
                expr: var("gap_at_merge") + var("ego_travel") - var("merger_travel"),
            },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("ahead").max(5.0),
                y: lit(-3.7),
                v: var("merge_v0"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Scripted {
                    keyframes: KeyframeProgram::List(vec![
                        (lit(0.0), var("accel")),
                        (var("merge_t") + 8.0, lit(0.0)),
                    ]),
                    lane_change: Some(LaneChangeTemplate {
                        start_time: var("merge_t"),
                        duration: lit(3.0),
                        from_y: lit(-3.7),
                        to_y: lit(0.0),
                    }),
                },
            }),
        ],
        ..base("merge", 8)
    });

    // Stop-and-go congestion: a queue behind a wave-source leader.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "jam_v", lo: lit(8.0), hi: lit(14.0) },
            Stmt::SetEgoSpeed(var("jam_v")),
            Stmt::Draw { var: "set_dv", lo: lit(2.0), hi: lit(5.0) },
            Stmt::SetEgoSetSpeed(var("jam_v") + var("set_dv")),
            Stmt::DrawInt { var: "n", lo: 2, hi: 4 },
            Stmt::Draw { var: "x", lo: lit(25.0), hi: lit(40.0) },
            Stmt::Draw { var: "period", lo: lit(8.0), hi: lit(12.0) },
            Stmt::Repeat {
                count: var("n"),
                body: vec![
                    Stmt::If {
                        cond: var("last"),
                        then: vec![
                            Stmt::Draw { var: "wave_t", lo: lit(3.0), hi: lit(6.0) },
                            Stmt::spawn(ActorTemplate {
                                kind: ActorKind::Car,
                                x: var("x"),
                                y: lit(0.0),
                                v: var("jam_v"),
                                heading: lit(0.0),
                                maneuver: ManeuverTemplate::Scripted {
                                    keyframes: KeyframeProgram::Wave {
                                        start: var("wave_t"),
                                        period: var("period"),
                                        brake: lit(-2.5),
                                        recover: lit(1.8),
                                        brake_frac: 0.35,
                                        coast_frac: 0.7,
                                    },
                                    lane_change: None,
                                },
                            }),
                        ],
                        otherwise: vec![Stmt::spawn(idm_car(
                            var("x"),
                            lit(0.0),
                            var("jam_v"),
                            var("jam_v") + 2.0,
                        ))],
                    },
                    Stmt::Draw { var: "x_inc", lo: lit(18.0), hi: lit(28.0) },
                    Stmt::Let { var: "x", expr: var("x") + var("x_inc") },
                ],
            },
        ],
        ..base("stop_and_go", 9)
    });

    // ------------------------------------------------------------------
    // DSL-native families (post-paper workloads).
    // ------------------------------------------------------------------

    // An aggressive tailgater closes in behind the ego at a sub-second
    // headway while a lead cruises ahead — rear pressure plus forward
    // car-following in one scene.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "gap_ahead", lo: lit(55.0), hi: lit(85.0) },
            Stmt::Draw { var: "lead_dv", lo: lit(0.0), hi: lit(2.0) },
            Stmt::Let { var: "lead_v", expr: var("ego.set_speed") - var("lead_dv") },
            Stmt::spawn(idm_car(var("gap_ahead"), lit(0.0), var("lead_v"), var("lead_v"))),
            Stmt::Draw { var: "rear_gap", lo: lit(18.0), hi: lit(28.0) },
            Stmt::Draw { var: "tg_dv", lo: lit(2.0), hi: lit(5.0) },
            Stmt::Draw { var: "tg_headway", lo: lit(0.55), hi: lit(0.9) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: -var("rear_gap"),
                y: lit(0.0),
                v: var("ego.v"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Idm {
                    desired: var("ego.set_speed") + var("tg_dv"),
                    headway: Some(var("tg_headway")),
                    lane_change: None,
                },
            }),
        ],
        ..base("tailgater", 10)
    });

    // A two-vehicle weave across three lanes: the outer vehicle drops
    // into the middle lane *behind* the middle vehicle, which is itself
    // displaced into the ego lane a few seconds later — a chained cut-in
    // with a wider (but still tight) merge gap than `cut_in`. The outer
    // vehicle targets the gap behind the middle one so the middle
    // vehicle's speed (and hence the ego-side spawn-distance budget) is
    // never perturbed by an unplanned IDM brake.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "t1", lo: lit(3.0), hi: lit(6.0) },
            Stmt::Draw { var: "t2_dt", lo: lit(3.0), hi: lit(6.0) },
            Stmt::Let { var: "t2", expr: var("t1") + var("t2_dt") },
            Stmt::Draw { var: "cut_dv", lo: lit(1.0), hi: lit(2.5) },
            Stmt::Let { var: "mid_v", expr: var("ego.set_speed") - var("cut_dv") },
            Stmt::Let {
                var: "closure",
                expr: (var("ego.set_speed") - var("mid_v")) * (var("t2") + 3.0),
            },
            Stmt::Draw { var: "gap_at_cut", lo: lit(22.0), hi: lit(32.0) },
            Stmt::Let { var: "mid_x", expr: var("gap_at_cut") + var("closure") },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("mid_x"),
                y: lit(3.7),
                v: var("mid_v"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Idm {
                    desired: var("mid_v"),
                    headway: None,
                    lane_change: Some(LaneChangeTemplate {
                        start_time: var("t2"),
                        duration: lit(3.0),
                        from_y: lit(3.7),
                        to_y: lit(0.0),
                    }),
                },
            }),
            Stmt::Draw { var: "back_gap", lo: lit(25.0), hi: lit(40.0) },
            Stmt::Draw { var: "outer_dv", lo: lit(-1.0), hi: lit(1.0) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("mid_x") - var("back_gap"),
                y: lit(7.4),
                v: var("mid_v") + var("outer_dv"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Idm {
                    desired: var("mid_v") + var("outer_dv"),
                    headway: None,
                    lane_change: Some(LaneChangeTemplate {
                        start_time: var("t1"),
                        duration: lit(3.0),
                        from_y: lit(7.4),
                        to_y: lit(3.7),
                    }),
                },
            }),
        ],
        ..base("multi_lane_weave", 11)
    });

    // Stopped debris: shed-load pieces brushing the ego lane's left
    // boundary on the approach, then a piece squarely in the ego lane far
    // enough ahead for a controlled stop.
    specs.push(ScenarioSpec {
        program: vec![
            Stmt::Draw { var: "debris_x", lo: lit(400.0), hi: lit(550.0) },
            Stmt::Draw { var: "debris_y", lo: lit(-0.3), hi: lit(0.3) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::StaticObstacle,
                x: var("debris_x"),
                y: var("debris_y"),
                v: lit(0.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Static,
            }),
            Stmt::Draw { var: "edge1_x", lo: lit(120.0), hi: lit(220.0) },
            Stmt::Draw { var: "edge1_y", lo: lit(2.35), hi: lit(2.6) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::StaticObstacle,
                x: var("edge1_x"),
                y: var("edge1_y"),
                v: lit(0.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Static,
            }),
            Stmt::Draw { var: "edge2_x", lo: lit(250.0), hi: lit(350.0) },
            Stmt::Draw { var: "edge2_y", lo: lit(2.35), hi: lit(2.6) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::StaticObstacle,
                x: var("edge2_x"),
                y: var("edge2_y"),
                v: lit(0.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Static,
            }),
        ],
        ..base("debris_field", 12)
    });

    // A congestion shockwave with a crossing pedestrian: a jam-speed
    // queue behind a wave-source leader, and a pedestrian stepping off
    // ahead of the queue with a generous (jam-speed) warning.
    specs.push(ScenarioSpec {
        ego: EgoSpec {
            v0_lo: 9.0,
            v0_hi: 13.0,
            set_lo: var("ego.v") + 2.0,
            set_hi: var("ego.v") + 4.0,
        },
        program: {
            let mut program = vec![
                Stmt::DrawInt { var: "n", lo: 2, hi: 4 },
                Stmt::Draw { var: "x", lo: lit(25.0), hi: lit(35.0) },
                Stmt::Draw { var: "period", lo: lit(9.0), hi: lit(12.0) },
                Stmt::Repeat {
                    count: var("n"),
                    body: vec![
                        Stmt::If {
                            cond: var("last"),
                            then: vec![
                                Stmt::Draw { var: "wave_t", lo: lit(5.0), hi: lit(8.0) },
                                Stmt::spawn(ActorTemplate {
                                    kind: ActorKind::Car,
                                    x: var("x"),
                                    y: lit(0.0),
                                    v: var("ego.v"),
                                    heading: lit(0.0),
                                    maneuver: ManeuverTemplate::Scripted {
                                        keyframes: KeyframeProgram::Wave {
                                            start: var("wave_t"),
                                            period: var("period"),
                                            brake: lit(-2.0),
                                            recover: lit(1.5),
                                            brake_frac: 0.35,
                                            coast_frac: 0.7,
                                        },
                                        lane_change: None,
                                    },
                                }),
                            ],
                            otherwise: vec![Stmt::spawn(idm_car(
                                var("x"),
                                lit(0.0),
                                var("ego.v"),
                                var("ego.v") + 2.0,
                            ))],
                        },
                        Stmt::Draw { var: "x_inc", lo: lit(20.0), hi: lit(30.0) },
                        Stmt::Let { var: "x", expr: var("x") + var("x_inc") },
                    ],
                },
            ];
            program.extend(pedestrian_program(
                (lit(170.0), lit(240.0)),
                (lit(1.1), lit(1.7)),
                (lit(5.0), lit(7.0)),
            ));
            program
        },
        ..base("shockwave_pedestrian", 13)
    });

    specs
}

/// The shared pedestrian-crossing maneuver: draw a crossing point, a
/// walking speed, and a warning margin, then trigger the step-off so the
/// pedestrian is inside the ego corridor `margin` seconds before the
/// ego's nominal arrival (`margin` must exceed the stop time from the
/// family's speed regime, or the scenario is unsurvivable by
/// construction). The pedestrian stages on the shoulder at y = −4 m;
/// entering the corridor means covering `4 − 2.25` m of shoulder.
fn pedestrian_program(
    cross_x: (Expr, Expr),
    walk: (Expr, Expr),
    margin: (Expr, Expr),
) -> Vec<Stmt> {
    vec![
        Stmt::Draw { var: "cross_x", lo: cross_x.0, hi: cross_x.1 },
        Stmt::Let { var: "eta", expr: var("cross_x") / var("ego.set_speed") },
        Stmt::Draw { var: "walk_speed", lo: walk.0, hi: walk.1 },
        Stmt::Let { var: "entry_delay", expr: lit(4.0 - 2.25) / var("walk_speed") },
        Stmt::Draw { var: "warn_margin", lo: margin.0, hi: margin.1 },
        Stmt::spawn(ActorTemplate {
            kind: ActorKind::Pedestrian,
            x: var("cross_x"),
            y: lit(-4.0),
            v: lit(0.0),
            heading: lit(std::f64::consts::FRAC_PI_2),
            maneuver: ManeuverTemplate::Pedestrian {
                trigger_time: (var("eta") - var("entry_delay") - var("warn_margin")).max(0.5),
                walk_speed: var("walk_speed"),
            },
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_families() {
        let registry = FamilyRegistry::builtin();
        for name in [
            "free_drive",
            "lead_cruise",
            "lead_brake",
            "cut_in",
            "lead_exit_reveal",
            "pedestrian",
            "platoon",
            "stalled_vehicle",
            "merge",
            "stop_and_go",
            "tailgater",
            "multi_lane_weave",
            "debris_field",
            "shockwave_pedestrian",
        ] {
            assert!(registry.get(name).is_some(), "family `{name}` missing");
        }
        assert_eq!(registry.names().count(), 14);
    }

    #[test]
    fn sampling_is_pure_in_seed_and_ignores_id() {
        let registry = FamilyRegistry::builtin();
        for spec in registry.specs() {
            let a = spec.sample(0, 12345);
            let b = spec.sample(999, 12345);
            assert_eq!(a.ego_start, b.ego_start, "{}", spec.name);
            assert_eq!(a.ego_set_speed, b.ego_set_speed, "{}", spec.name);
            assert_eq!(a.actors.len(), b.actors.len(), "{}", spec.name);
            for (x, y) in a.actors.iter().zip(&b.actors) {
                assert_eq!(x.state, y.state, "{}", spec.name);
                assert_eq!(x.behavior, y.behavior, "{}", spec.name);
            }
            assert_eq!(b.id, 999, "id is recorded verbatim");
        }
    }

    #[test]
    fn expr_operators_follow_f64_semantics() {
        let spec = ScenarioSpec {
            name: "expr_probe",
            family_key: 1000,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![
                Stmt::Let { var: "a", expr: lit(3.0) },
                Stmt::Let { var: "b", expr: (var("a") * 2.0 - 1.0) / 4.0 },
                Stmt::Let { var: "c", expr: (-var("b")).max(var("a").min(0.5)) },
                Stmt::spawn(ActorTemplate {
                    kind: ActorKind::Car,
                    x: var("c"),
                    y: lit(0.0),
                    v: var("b"),
                    heading: lit(0.0),
                    maneuver: ManeuverTemplate::Static,
                }),
            ],
        };
        let cfg = spec.sample(0, 7);
        assert_eq!(cfg.actors[0].state.v, 1.25);
        assert_eq!(cfg.actors[0].state.x, 0.5);
    }

    #[test]
    fn repeat_binds_loop_variables() {
        let spec = ScenarioSpec {
            name: "loop_probe",
            family_key: 1001,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![Stmt::Repeat {
                count: lit(3.0),
                body: vec![Stmt::If {
                    cond: var("last"),
                    then: vec![Stmt::spawn(ActorTemplate {
                        kind: ActorKind::Car,
                        x: var("i") * 10.0,
                        y: var("n"),
                        v: lit(0.0),
                        heading: lit(0.0),
                        maneuver: ManeuverTemplate::Static,
                    })],
                    otherwise: vec![],
                }],
            }],
        };
        let cfg = spec.sample(0, 7);
        assert_eq!(cfg.actors.len(), 1);
        assert_eq!(cfg.actors[0].state.x, 20.0, "spawned on the last iteration only");
        assert_eq!(cfg.actors[0].state.y, 3.0);
        assert_eq!(cfg.actors[0].id, ActorId(1), "ids count spawns, not iterations");
    }

    #[test]
    fn repeat_bindings_are_scoped_to_the_loop_body() {
        // A nested Repeat must not clobber the outer loop's i/n/last,
        // and none of them survive past the loop.
        let probe = |x: Expr, y: Expr| {
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x,
                y,
                v: lit(0.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Static,
            })
        };
        let spec = ScenarioSpec {
            name: "scope_probe",
            family_key: 1004,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![Stmt::Repeat {
                count: lit(2.0),
                body: vec![
                    Stmt::Repeat { count: lit(3.0), body: vec![] },
                    // Reads the *outer* loop's bindings after the inner
                    // loop finished.
                    probe(var("i") * 10.0, var("last")),
                ],
            }],
        };
        let cfg = spec.sample(0, 7);
        assert_eq!(cfg.actors[0].state.x, 0.0, "outer i restored after nested loop");
        assert_eq!(cfg.actors[0].state.y, 0.0, "outer last restored after nested loop");
        assert_eq!(cfg.actors[1].state.x, 10.0);
        assert_eq!(cfg.actors[1].state.y, 1.0);

        let leaky = ScenarioSpec {
            name: "leak_probe",
            family_key: 1005,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![
                Stmt::Repeat { count: lit(2.0), body: vec![] },
                Stmt::Let { var: "x", expr: var("i") },
            ],
        };
        let leaked = std::panic::catch_unwind(|| leaky.sample(0, 7));
        assert!(leaked.is_err(), "loop bindings must not leak past the loop");
    }

    #[test]
    fn wave_program_fills_the_duration() {
        let spec = ScenarioSpec {
            name: "wave_probe",
            family_key: 1002,
            duration: 40.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: lit(30.0),
                y: lit(0.0),
                v: lit(10.0),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Scripted {
                    keyframes: KeyframeProgram::Wave {
                        start: lit(4.0),
                        period: lit(10.0),
                        brake: lit(-2.0),
                        recover: lit(1.5),
                        brake_frac: 0.35,
                        coast_frac: 0.7,
                    },
                    lane_change: None,
                },
            })],
        };
        let cfg = spec.sample(0, 7);
        let Behavior::Scripted { keyframes, .. } = &cfg.actors[0].behavior else {
            panic!("expected scripted behavior");
        };
        // Waves at t = 4, 14, 24 (34 + 10 ≥ 40 stops the loop): 1 + 3×3.
        assert_eq!(keyframes.len(), 10);
        assert_eq!(keyframes[1].time, 4.0);
        assert_eq!(keyframes[1].accel, -2.0);
        assert!(keyframes.last().unwrap().time < 40.0);
    }

    #[test]
    #[should_panic(expected = "family_key")]
    fn duplicate_family_keys_are_rejected() {
        let mut registry = FamilyRegistry::new();
        let spec = |name| ScenarioSpec {
            name,
            family_key: 42,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![],
        };
        registry.register(spec("one"));
        registry.register(spec("two"));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_family_panics() {
        let _ = FamilyRegistry::builtin().sample("no_such_family", 0, 1);
    }

    #[test]
    #[should_panic(expected = "unbound scenario variable")]
    fn unbound_variable_panics() {
        let spec = ScenarioSpec {
            name: "unbound_probe",
            family_key: 1003,
            duration: 10.0,
            road: RoadSpec::default(),
            ego: EgoSpec::default(),
            program: vec![Stmt::Let { var: "x", expr: var("missing") }],
        };
        let _ = spec.sample(0, 1);
    }
}
