//! The world container: actors + road + ground-truth queries.

use crate::behavior::Behavior;
use crate::{obb_overlap, Actor, ActorId, BodyDims, Obb, Road, ScenarioConfig};
use drivefi_kinematics::{SafetyEnvelope, Vec2, VehicleState};

/// Maximum distance reported by free-space queries when nothing is ahead
/// \[m\] (sensor horizon).
pub const FREE_HORIZON: f64 = 200.0;

/// Braking deceleration assumed for *other* traffic when extending the
/// safety envelope by a dynamic object's own stopping travel \[m/s²\].
///
/// Definition 2 ("the maximum distance an AV can travel without colliding
/// with any static or dynamic object") credits a receding object's
/// worst-case motion: the ego can cover the current gap *plus* the
/// distance the object still travels while braking at its maximum. This
/// reproduces the paper's Example 1 numbers exactly: at 33.5 m/s behind a
/// same-speed lead 20 m ahead, δ = 20 m; after the cut-in leaves a 2 m
/// gap, δ = 2 m.
pub const ASSUMED_BRAKE_DECEL: f64 = 8.0;

/// The simulated world: road, non-ego actors, and (a mirror of) the ego
/// vehicle pose used for actor reactions and ground-truth queries.
#[derive(Debug, Clone)]
pub struct World {
    road: Road,
    pub(crate) actors: Vec<Actor>,
    pub(crate) time: f64,
    pub(crate) ego: Option<(VehicleState, BodyDims)>,
    /// Scratch lane for the synchronous-update acceleration pass, reused
    /// across ticks to keep `step` allocation-free.
    accel_scratch: Vec<f64>,
    /// Actor indices sorted by rear-bumper x (ties by index). Maintained
    /// incrementally across ticks so lead-vehicle queries are an O(1)
    /// amortized prefix scan instead of an all-pairs sweep.
    pub(crate) lead_order: Vec<u32>,
}

/// Rounding slack for the sorted lead scan: candidates whose rear bumper
/// trails the incumbent's by more than this cannot hold a smaller
/// *computed* bumper gap (gap = rear_x − const up to ~1e-12 of rounding at
/// highway coordinates), so the scan can stop. Far below any physical
/// spacing, far above f64 rounding error.
const LEAD_SCAN_SLACK: f64 = 1e-6;

/// Ground-truth information about the ego vehicle's surroundings, used by
/// the hazard monitor (never by the ADS, which must rely on sensors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// True free distances around the ego vehicle.
    pub envelope: SafetyEnvelope,
    /// Id of an actor currently overlapping the ego body, if any.
    pub collision: Option<ActorId>,
    /// True when the ego body is fully on the drivable surface.
    pub on_road: bool,
}

impl World {
    /// Creates an empty world on the given road.
    pub fn new(road: Road) -> Self {
        World {
            road,
            actors: Vec::new(),
            time: 0.0,
            ego: None,
            accel_scratch: Vec::new(),
            lead_order: Vec::new(),
        }
    }

    /// Builds the world described by a scenario configuration.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        let mut w = World::new(config.road.clone());
        for spawn in &config.actors {
            w.add_actor(spawn.clone());
        }
        w
    }

    /// Re-initializes this world in place from a scenario, reusing the
    /// actor storage allocation. Equivalent to
    /// [`World::from_scenario`], for arena-style reuse across campaign
    /// jobs.
    pub fn reset_from_scenario(&mut self, config: &ScenarioConfig) {
        self.road = config.road.clone();
        self.actors.clear();
        self.actors.extend(config.actors.iter().cloned());
        self.time = 0.0;
        self.ego = None;
        self.accel_scratch.clear();
        self.repair_lead_order();
    }

    /// The road.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// Simulation time \[s\].
    pub fn time(&self) -> f64 {
        self.time
    }

    /// All non-ego actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Looks up an actor by id.
    pub fn actor(&self, id: ActorId) -> Option<&Actor> {
        self.actors.iter().find(|a| a.id == id)
    }

    /// Adds an actor.
    pub fn add_actor(&mut self, actor: Actor) {
        self.actors.push(actor);
        self.repair_lead_order();
    }

    /// Longitudinal sort key for the lead-vehicle order: the actor's rear
    /// bumper position. Bumper gaps to any fixed querier differ from this
    /// key only by a constant, so ascending key order is ascending gap
    /// order (up to rounding, absorbed by [`LEAD_SCAN_SLACK`]).
    fn rear_key(&self, idx: u32) -> f64 {
        let a = &self.actors[idx as usize];
        a.state.x - a.dims().length / 2.0
    }

    /// Restores the `(rear_x, index)` sort invariant on `lead_order`.
    /// Actors move smoothly, so the order is nearly sorted after a tick
    /// and the insertion pass is O(n) amortized.
    pub(crate) fn repair_lead_order(&mut self) {
        if self.lead_order.len() != self.actors.len() {
            self.lead_order.clear();
            self.lead_order.extend(0..self.actors.len() as u32);
        }
        for i in 1..self.lead_order.len() {
            let v = self.lead_order[i];
            let kv = self.rear_key(v);
            let mut j = i;
            while j > 0 {
                let u = self.lead_order[j - 1];
                match self.rear_key(u).total_cmp(&kv) {
                    std::cmp::Ordering::Less => break,
                    std::cmp::Ordering::Equal if u < v => break,
                    _ => {
                        self.lead_order[j] = u;
                        j -= 1;
                    }
                }
            }
            self.lead_order[j] = v;
        }
    }

    /// Registers the ego vehicle pose for this frame. Target vehicles
    /// react to the ego (e.g. IDM against it) and ground-truth queries are
    /// relative to it.
    pub fn set_ego(&mut self, state: VehicleState, dims: BodyDims) {
        self.ego = Some((state, dims));
    }

    /// The currently registered ego pose.
    pub fn ego(&self) -> Option<(VehicleState, BodyDims)> {
        self.ego
    }

    /// Ground-truth lead vehicle of the ego: the nearest body ahead in
    /// the ego's lane band, as `(bumper gap, lead speed)`. Used by the
    /// rule monitor's headway check (never by the ADS, which must rely on
    /// its sensors).
    ///
    /// # Panics
    ///
    /// Panics if no ego pose has been registered via [`World::set_ego`].
    pub fn ego_lead(&self) -> Option<(f64, f64)> {
        let (ego, dims) = self.ego.expect("ego_lead requires a registered ego pose");
        self.lead_for(None, ego.x, ego.y, dims.length)
    }

    /// Finds the lead "vehicle" (any actor or the ego) for the actor at
    /// `(x, y)`: the nearest body ahead in the same lane band. Returns
    /// `(bumper gap, lead speed)`.
    fn lead_for(
        &self,
        self_id: Option<ActorId>,
        x: f64,
        y: f64,
        self_len: f64,
    ) -> Option<(f64, f64)> {
        // Scan actors in ascending rear-bumper order and stop as soon as a
        // later candidate provably cannot beat the incumbent. Ties (and
        // sub-slack near-ties) are broken by storage index, which is
        // exactly the brute-force scan's "first strict minimum" winner.
        let mut best: Option<(f64, f64, u32)> = None;
        let mut best_key = f64::INFINITY;
        for &oi in &self.lead_order {
            let other = &self.actors[oi as usize];
            if Some(other.id) == self_id {
                continue;
            }
            let (ox, oy) = (other.state.x, other.state.y);
            if ox <= x || (oy - y).abs() > 2.0 {
                continue;
            }
            let key = self.rear_key(oi);
            if key > best_key + LEAD_SCAN_SLACK {
                break;
            }
            let gap = ox - x - (other.dims().length + self_len) / 2.0;
            let better = match best {
                None => true,
                Some((g, _, bi)) => gap < g || (gap == g && oi < bi),
            };
            if better {
                best = Some((gap, other.state.v, oi));
                best_key = best_key.min(key);
            }
        }
        let mut best = best.map(|(g, v, _)| (g, v));
        if let Some((es, ed)) = self.ego {
            if es.x > x && (es.y - y).abs() <= 2.0 {
                let gap = es.x - x - (ed.length + self_len) / 2.0;
                if best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, es.v));
                }
            }
        }
        best
    }

    /// Reference all-pairs lead scan, kept only to pin the sorted scan's
    /// equivalence in tests.
    #[cfg(test)]
    fn lead_for_brute(
        &self,
        self_id: Option<ActorId>,
        x: f64,
        y: f64,
        self_len: f64,
    ) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        let mut consider = |ox: f64, oy: f64, ov: f64, olen: f64| {
            if ox <= x || (oy - y).abs() > 2.0 {
                return;
            }
            let gap = ox - x - (olen + self_len) / 2.0;
            if best.is_none_or(|(g, _)| gap < g) {
                best = Some((gap, ov));
            }
        };
        for other in &self.actors {
            if Some(other.id) == self_id {
                continue;
            }
            consider(other.state.x, other.state.y, other.state.v, other.dims().length);
        }
        if let Some((es, ed)) = self.ego {
            consider(es.x, es.y, es.v, ed.length);
        }
        best
    }

    /// Advances every actor by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        let t = self.time;
        // Plan accelerations against the *previous* frame (synchronous
        // update), then integrate. The scratch lane is taken out of `self`
        // so the plan pass can borrow the world immutably.
        let mut accels = std::mem::take(&mut self.accel_scratch);
        accels.clear();
        accels.resize(self.actors.len(), 0.0);
        for (i, a) in self.actors.iter().enumerate() {
            accels[i] = match &a.behavior {
                Behavior::Static => 0.0,
                Behavior::ConstantSpeed => 0.0,
                Behavior::Idm { params, desired_speed, .. } => {
                    let lead = self
                        .lead_for(Some(a.id), a.state.x, a.state.y, a.dims().length)
                        .map(|(gap, lv)| (gap, a.state.v - lv));
                    params.accel(a.state.v, *desired_speed, lead)
                }
                Behavior::Scripted { keyframes, .. } => {
                    keyframes.iter().rev().find(|k| t >= k.time).map_or(0.0, |k| k.accel)
                }
                Behavior::Pedestrian { .. } => 0.0,
            };
        }
        let next_t = t + dt;
        for (i, a) in self.actors.iter_mut().enumerate() {
            match &a.behavior {
                Behavior::Static => {}
                Behavior::Pedestrian { trigger_time, walk_speed } => {
                    if next_t >= *trigger_time {
                        let dir = Vec2::from_heading(a.state.theta);
                        a.state.x += dir.x * walk_speed * dt;
                        a.state.y += dir.y * walk_speed * dt;
                        a.state.v = *walk_speed;
                    }
                }
                behavior => {
                    let lc = behavior.lane_change().copied();
                    a.state.v = (a.state.v + accels[i] * dt).max(0.0);
                    a.state.x += a.state.v * dt;
                    if let Some(lc) = lc {
                        a.state.y = lc.y_at(next_t);
                        let vy = lc.vy_at(next_t);
                        a.state.theta = if a.state.v > 0.1 { (vy / a.state.v).atan() } else { 0.0 };
                    }
                }
            }
        }
        self.accel_scratch = accels;
        self.time = next_t;
        self.repair_lead_order();
    }

    /// Computes ground truth around the registered ego pose.
    ///
    /// # Panics
    ///
    /// Panics if no ego pose has been registered via [`World::set_ego`].
    pub fn ground_truth(&self) -> GroundTruth {
        let (ego, dims) = self.ego.expect("ground_truth requires a registered ego pose");
        let ego_obb =
            Obb::new(Vec2::new(ego.x, ego.y), ego.theta, dims.length / 2.0, dims.width / 2.0);

        let mut lon_free = FREE_HORIZON;
        let mut lat_free;
        let mut collision = None;

        // Lateral clearance starts at the ego-lane boundaries: the paper
        // treats the ego lane's boundaries as static objects so lane
        // violations register as hazards.
        let lane = self.road.lane_at(ego.y);
        let left_gap = lane.left_boundary() - (ego.y + dims.width / 2.0);
        let right_gap = (ego.y - dims.width / 2.0) - lane.right_boundary();
        lat_free = left_gap.min(right_gap).max(0.0);

        for a in &self.actors {
            let local = ego.to_local(Vec2::new(a.state.x, a.state.y));
            let adims = a.dims();
            // Longitudinal corridor: bodies overlapping the ego's width
            // footprint (plus a small margin) ahead of the ego.
            if local.x > 0.0 && local.y.abs() < (dims.width + adims.width) / 2.0 + 0.2 {
                let gap = local.x - (dims.length + adims.length) / 2.0;
                // Credit the object's receding motion: it travels
                // v²/(2·a) further even under worst-case braking.
                let recede = a.velocity().into_frame(ego.theta).x.max(0.0);
                let credit = recede * recede / (2.0 * ASSUMED_BRAKE_DECEL);
                lon_free = lon_free.min(gap.max(0.0) + credit);
            }
            // Lateral clearance: bodies alongside the ego.
            if local.x.abs() < (dims.length + adims.length) / 2.0 {
                let gap = local.y.abs() - (dims.width + adims.width) / 2.0;
                lat_free = lat_free.min(gap.max(0.0));
            }
            if collision.is_none() && obb_overlap(&ego_obb, &a.obb()) {
                collision = Some(a.id);
            }
        }

        let on_road = self.road.on_road(ego.y + dims.width / 2.0)
            && self.road.on_road(ego.y - dims.width / 2.0);

        GroundTruth { envelope: SafetyEnvelope::new(lon_free, lat_free), collision, on_road }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActorKind, Behavior};
    use drivefi_kinematics::VehicleState;

    fn car(id: u32, x: f64, y: f64, v: f64, behavior: Behavior) -> Actor {
        Actor::new(ActorId(id), ActorKind::Car, VehicleState::new(x, y, v, 0.0, 0.0), behavior)
    }

    fn ego_dims() -> BodyDims {
        BodyDims { length: 4.7, width: 1.9 }
    }

    #[test]
    fn constant_speed_actor_advances() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 0.0, 0.0, 10.0, Behavior::ConstantSpeed));
        for _ in 0..10 {
            w.step(0.1);
        }
        assert!((w.actor(ActorId(1)).unwrap().state.x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idm_follower_does_not_rear_end_stopped_lead() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 0.0, 0.0, 30.0, Behavior::idm(30.0)));
        w.add_actor(car(2, 120.0, 0.0, 0.0, Behavior::Static));
        for _ in 0..600 {
            w.step(0.05);
        }
        let follower = w.actor(ActorId(1)).unwrap();
        let gap = 120.0 - follower.state.x - 4.7;
        assert!(gap > 0.0, "follower collided: gap = {gap}");
        assert!(follower.state.v < 0.5, "follower should have stopped, v = {}", follower.state.v);
    }

    #[test]
    fn ground_truth_longitudinal_gap() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 54.7, 0.0, 20.0, Behavior::ConstantSpeed));
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ego_dims());
        let gt = w.ground_truth();
        // Bumper gap = 54.7 - (4.7 + 4.7)/2 = 50.0, plus the lead's own
        // stopping travel 20²/16 = 25.0.
        assert!((gt.envelope.free.longitudinal - 75.0).abs() < 1e-9);
        assert!(gt.collision.is_none());
        assert!(gt.on_road);
    }

    #[test]
    fn ground_truth_static_obstacle_gets_no_motion_credit() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 54.7, 0.0, 0.0, Behavior::Static));
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ego_dims());
        let gt = w.ground_truth();
        assert!((gt.envelope.free.longitudinal - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_1_delta_calibration() {
        // Ego at 33.5 m/s behind a same-speed lead with a 20 m bumper
        // gap: the paper quotes δ ≈ 20 m (we subtract the 2 m comfort
        // margin, giving 18).
        use drivefi_kinematics::{SafetyPotential, VehicleParams};
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 20.0 + 4.7, 0.0, 33.5, Behavior::ConstantSpeed));
        let ego = VehicleState::new(0.0, 0.0, 33.5, 0.0, 0.0);
        w.set_ego(ego, ego_dims());
        let gt = w.ground_truth();
        let delta = SafetyPotential::evaluate(&VehicleParams::default(), &ego, &gt.envelope);
        assert!((delta.longitudinal - 18.0).abs() < 0.01, "delta = {delta:?}");
    }

    #[test]
    fn ground_truth_ignores_vehicles_in_other_lanes() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 50.0, 3.7, 20.0, Behavior::ConstantSpeed));
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ego_dims());
        let gt = w.ground_truth();
        assert_eq!(gt.envelope.free.longitudinal, FREE_HORIZON);
    }

    #[test]
    fn ground_truth_lateral_lane_boundaries() {
        let mut w = World::new(Road::default_highway());
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ego_dims());
        let gt = w.ground_truth();
        // Centered in a 3.7 m lane with a 1.9 m body: 0.9 m per side.
        assert!((gt.envelope.free.lateral - 0.9).abs() < 1e-9);
    }

    #[test]
    fn collision_detected_on_overlap() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 3.0, 0.0, 0.0, Behavior::Static));
        w.set_ego(VehicleState::new(0.0, 0.0, 0.0, 0.0, 0.0), ego_dims());
        let gt = w.ground_truth();
        assert_eq!(gt.collision, Some(ActorId(1)));
        assert_eq!(gt.envelope.free.longitudinal, 0.0);
    }

    #[test]
    fn pedestrian_waits_for_trigger() {
        let mut w = World::new(Road::default_highway());
        let mut ped = Actor::new(
            ActorId(9),
            ActorKind::Pedestrian,
            VehicleState::new(50.0, -3.0, 0.0, std::f64::consts::FRAC_PI_2, 0.0),
            Behavior::Pedestrian { trigger_time: 1.0, walk_speed: 1.4 },
        );
        ped.state.v = 0.0;
        w.add_actor(ped);
        for _ in 0..5 {
            w.step(0.1);
        }
        assert!((w.actor(ActorId(9)).unwrap().state.y - (-3.0)).abs() < 1e-9);
        for _ in 0..10 {
            w.step(0.1);
        }
        assert!(w.actor(ActorId(9)).unwrap().state.y > -3.0 + 0.5);
    }

    #[test]
    fn scripted_brake_slows_actor() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![
                    crate::behavior::SpeedKeyframe { time: 0.0, accel: 0.0 },
                    crate::behavior::SpeedKeyframe { time: 1.0, accel: -5.0 },
                ],
                lane_change: None,
            },
        ));
        for _ in 0..30 {
            w.step(0.1);
        }
        let v = w.actor(ActorId(1)).unwrap().state.v;
        assert!(v < 11.0, "v = {v}");
        assert!(v >= 0.0);
    }

    #[test]
    fn lead_order_tracks_overtakes() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 10.0, 0.0, 30.0, Behavior::ConstantSpeed));
        w.add_actor(car(2, 20.0, 0.0, 0.0, Behavior::Static));
        w.set_ego(VehicleState::new(-100.0, 0.0, 0.0, 0.0, 0.0), ego_dims());
        // Actor 1 overtakes actor 2 around t ≈ 0.33 s; the incremental
        // order must keep matching the brute-force scan throughout.
        for _ in 0..60 {
            w.step(1.0 / 30.0);
            for a in 0..w.actors.len() {
                let (id, x, y, len) = {
                    let a = &w.actors[a];
                    (a.id, a.state.x, a.state.y, a.dims().length)
                };
                assert_eq!(w.lead_for(Some(id), x, y, len), w.lead_for_brute(Some(id), x, y, len));
            }
        }
    }

    mod lead_scan_properties {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        /// Draws a small world: 0..8 actors of mixed kinds (so body
        /// lengths differ), duplicate-prone positions, and an optional
        /// ego pose.
        struct ArbScene;

        impl Strategy for ArbScene {
            type Value = (Vec<Actor>, Option<(f64, f64, f64)>);

            fn generate(&self, rng: &mut proptest::StdRng) -> Self::Value {
                let kinds = [
                    ActorKind::Car,
                    ActorKind::Truck,
                    ActorKind::Pedestrian,
                    ActorKind::StaticObstacle,
                ];
                let n = rng.random_range(0..8usize);
                let actors = (0..n)
                    .map(|i| {
                        // Snap half the positions to a coarse grid so
                        // exact rear-bumper ties actually occur.
                        let mut x = rng.random_range(-60.0..1500.0f64);
                        if rng.random() {
                            x = (x / 10.0).round() * 10.0;
                        }
                        let y = rng.random_range(-6.0..6.0f64);
                        let v = rng.random_range(0.0..40.0f64);
                        Actor::new(
                            ActorId(i as u32 + 1),
                            kinds[rng.random_range(0..kinds.len())],
                            VehicleState::new(x, y, v, 0.0, 0.0),
                            Behavior::ConstantSpeed,
                        )
                    })
                    .collect();
                let ego = if rng.random() {
                    Some((
                        rng.random_range(-60.0..1500.0f64),
                        rng.random_range(-6.0..6.0f64),
                        rng.random_range(0.0..40.0f64),
                    ))
                } else {
                    None
                };
                (actors, ego)
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The incrementally-sorted lead scan returns bit-identical
            /// results to the brute-force all-pairs scan, for every
            /// querier (each actor and the ego), including duplicate
            /// positions and mixed body lengths.
            #[test]
            fn sorted_scan_equals_brute_force(scene in ArbScene) {
                let (actors, ego) = scene;
                let mut w = World::new(Road::default_highway());
                for a in actors {
                    w.add_actor(a);
                }
                if let Some((x, y, v)) = ego {
                    w.set_ego(VehicleState::new(x, y, v, 0.0, 0.0), ego_dims());
                }
                for i in 0..w.actors.len() {
                    let (id, x, y, len) = {
                        let a = &w.actors[i];
                        (a.id, a.state.x, a.state.y, a.dims().length)
                    };
                    prop_assert_eq!(
                        w.lead_for(Some(id), x, y, len),
                        w.lead_for_brute(Some(id), x, y, len)
                    );
                }
                if let Some((es, ed)) = w.ego() {
                    prop_assert_eq!(
                        w.lead_for(None, es.x, es.y, ed.length),
                        w.lead_for_brute(None, es.x, es.y, ed.length)
                    );
                }
            }
        }
    }

    #[test]
    fn idm_reacts_to_ego_as_lead() {
        let mut w = World::new(Road::default_highway());
        w.add_actor(car(1, 0.0, 0.0, 30.0, Behavior::idm(30.0)));
        w.set_ego(VehicleState::new(20.0, 0.0, 5.0, 0.0, 0.0), ego_dims());
        w.step(0.1);
        // Follower must brake toward the slow ego ahead.
        assert!(w.actor(ActorId(1)).unwrap().state.v < 30.0);
    }
}
