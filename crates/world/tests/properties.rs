//! Property-based tests for world-model invariants.

use drivefi_kinematics::VehicleState;
use drivefi_world::behavior::{Behavior, SpeedKeyframe};
use drivefi_world::{Actor, ActorId, ActorKind, Road, ScenarioSuite, World};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An IDM follower never rear-ends a braking scripted leader, for any
    /// sane spawn gap / speed / braking profile. This is the
    /// collision-free guarantee the IDM provides analytically, checked
    /// through the full world stepper.
    #[test]
    fn idm_never_rear_ends(gap in 12.0..80.0f64,
                           v0 in 5.0..33.0f64,
                           brake_t in 1.0..10.0f64,
                           decel in 1.0..6.0f64) {
        let mut world = World::new(Road::default_highway());
        world.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(0.0, 0.0, v0, 0.0, 0.0),
            Behavior::idm(v0 + 2.0),
        ));
        world.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Car,
            VehicleState::new(gap, 0.0, v0, 0.0, 0.0),
            Behavior::Scripted {
                keyframes: vec![
                    SpeedKeyframe { time: 0.0, accel: 0.0 },
                    SpeedKeyframe { time: brake_t, accel: -decel },
                ],
                lane_change: None,
            },
        ));
        // Park the (required) ego far away so it cannot interact.
        world.set_ego(VehicleState::new(-500.0, 0.0, 0.0, 0.0, 0.0), ActorKind::Car.dims());
        let dt = 1.0 / 30.0;
        for _ in 0..(40.0 / dt) as usize {
            world.step(dt);
            let follower = world.actor(ActorId(1)).unwrap();
            let leader = world.actor(ActorId(2)).unwrap();
            let bumper_gap = leader.state.x - follower.state.x
                - (leader.dims().length + follower.dims().length) / 2.0;
            prop_assert!(
                bumper_gap > 0.0,
                "IDM rear-ended: gap {bumper_gap:.2} (spawn {gap:.1}, v {v0:.1}, brake {decel:.1})"
            );
        }
    }

    /// Scenario generation is a pure function of (count, seed).
    #[test]
    fn suite_generation_deterministic(count in 1u32..16, seed in any::<u64>()) {
        let a = ScenarioSuite::generate(count, seed);
        let b = ScenarioSuite::generate(count, seed);
        prop_assert_eq!(a.scenarios.len(), b.scenarios.len());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.ego_start, y.ego_start);
            prop_assert_eq!(x.actors.len(), y.actors.len());
        }
    }

    /// Every generated scenario starts all actors on the road surface.
    #[test]
    fn actors_spawn_on_or_near_road(count in 1u32..8, seed in any::<u64>()) {
        let suite = ScenarioSuite::extended(count, seed);
        for s in &suite.scenarios {
            if s.name == "merge" {
                continue; // the merger stages on the on-ramp, off the mainline
            }
            for a in &s.actors {
                // Pedestrians stage on the shoulder; everything else
                // spawns inside the paved width.
                if !matches!(a.kind, ActorKind::Pedestrian) {
                    prop_assert!(
                        a.state.y > s.road.right_edge() && a.state.y < s.road.left_edge(),
                        "{}: actor at y = {}",
                        s.name,
                        a.state.y
                    );
                }
            }
        }
    }
}
