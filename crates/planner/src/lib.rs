//! Planning: safety envelope, ACC speed planning, lane keeping.
//!
//! The planner consumes the pose estimate and the world model `W_t` and
//! produces the **raw actuation command** `U_A,t` (paper Fig. 1) — the
//! quantity the PID controller smooths into `A_t`. It continuously
//! computes the *perceived* safety envelope `d_safe` and the safety
//! potential `δ`, using them to constrain its commands exactly as the
//! paper describes production ADSs doing ("A safety envelope is used to
//! ensure, through constraints on `U_A,t`, that the vehicle trajectory is
//! collision-free", §II-B).
//!
//! # Example
//!
//! ```
//! use drivefi_planner::{Planner, PlannerConfig};
//! use drivefi_perception::WorldModel;
//! use drivefi_kinematics::{VehicleParams, VehicleState};
//! use drivefi_world::Road;
//!
//! let planner = Planner::new(PlannerConfig::default(), VehicleParams::default());
//! let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
//! let out = planner.plan(&pose, &WorldModel::new(), &Road::default_highway(), 30.0);
//! assert!(out.raw.throttle >= 0.0);
//! ```

pub mod envelope;
pub mod lane_keep;
pub mod speed;

mod plan;

pub use envelope::perceived_envelope;
pub use lane_keep::LaneKeeper;
pub use plan::{Planner, PlannerConfig, PlannerOutput};
pub use speed::SpeedPlanner;
