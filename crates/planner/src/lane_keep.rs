//! Lateral planning: Stanley-style lane keeping.

use drivefi_kinematics::{VehicleParams, VehicleState};
use drivefi_world::Road;

/// Lane-keeping steering law: steer to cancel heading error plus a
/// speed-scaled correction of the lateral offset from the lane center
/// (the Stanley controller used by the DARPA Grand Challenge winner).
#[derive(Debug, Clone, Copy)]
pub struct LaneKeeper {
    /// Cross-track gain \[1/s\].
    pub gain: f64,
    /// Speed softening constant \[m/s\] (avoids a division blow-up at
    /// standstill).
    pub softening: f64,
    /// Heading-error gain (< 1 buys phase margin against the two
    /// low-pass stages between command and road wheel).
    pub heading_gain: f64,
}

impl Default for LaneKeeper {
    fn default() -> Self {
        // Low gain + strong softening: the cross-track estimate is fed by
        // noisy GPS fusion, and the steering path has two low-pass stages
        // (PID smoother, steering servo). Higher gains oscillate.
        LaneKeeper { gain: 0.8, softening: 5.0, heading_gain: 1.0 }
    }
}

impl LaneKeeper {
    /// Computes the raw steering command \[rad\] to keep the pose centered
    /// in its current lane (the lane containing the pose's `y`).
    pub fn steer(&self, pose: &VehicleState, road: &Road, params: &VehicleParams) -> f64 {
        let lane = road.lane_at(pose.y);
        let cross_track = lane.center_y - pose.y;
        // Road runs along +x, so the target heading is 0.
        let heading_err = -self.heading_gain * pose.theta;
        let correction = (self.gain * cross_track / (self.softening + pose.v.max(0.0))).atan();
        (heading_err + correction).clamp(-params.max_steer, params.max_steer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_aligned_vehicle_steers_straight() {
        let lk = LaneKeeper::default();
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
        let s = lk.steer(&pose, &Road::default_highway(), &VehicleParams::default());
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn offset_right_steers_left() {
        let lk = LaneKeeper::default();
        // y = -0.5: right of lane-0 center → steer left (positive).
        let pose = VehicleState::new(0.0, -0.5, 30.0, 0.0, 0.0);
        let s = lk.steer(&pose, &Road::default_highway(), &VehicleParams::default());
        assert!(s > 0.0);
    }

    #[test]
    fn heading_error_is_cancelled() {
        let lk = LaneKeeper::default();
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.1, 0.0);
        let s = lk.steer(&pose, &Road::default_highway(), &VehicleParams::default());
        assert!(s < 0.0, "heading left of road must steer right, got {s}");
    }

    #[test]
    fn command_respects_steering_limit() {
        let lk = LaneKeeper::default();
        let p = VehicleParams::default();
        let pose = VehicleState::new(0.0, -1.8, 1.0, 1.5, 0.0);
        let s = lk.steer(&pose, &Road::default_highway(), &p);
        assert!(s.abs() <= p.max_steer);
    }

    #[test]
    fn correction_softens_with_speed() {
        let lk = LaneKeeper::default();
        let p = VehicleParams::default();
        let slow =
            lk.steer(&VehicleState::new(0.0, -0.5, 2.0, 0.0, 0.0), &Road::default_highway(), &p);
        let fast =
            lk.steer(&VehicleState::new(0.0, -0.5, 30.0, 0.0, 0.0), &Road::default_highway(), &p);
        assert!(slow > fast, "lateral correction should soften at speed");
    }
}
