//! The *perceived* safety envelope: `d_safe` as seen through `W_t`.

use drivefi_kinematics::{SafetyEnvelope, VehicleParams, VehicleState};
use drivefi_perception::WorldModel;
use drivefi_world::Road;

/// Sensor horizon used when nothing is tracked ahead \[m\].
pub const PERCEIVED_HORIZON: f64 = 200.0;

/// Computes the safety envelope from the **perceived** world model (the
/// ADS view). The ground-truth twin of this function lives in
/// `drivefi_world::World::ground_truth`; keeping both lets experiments
/// compare what the ADS believes with what is true — which is precisely
/// the gap a fault opens.
pub fn perceived_envelope(
    pose: &VehicleState,
    model: &WorldModel,
    road: &Road,
    params: &VehicleParams,
) -> SafetyEnvelope {
    let mut lon_free = PERCEIVED_HORIZON;

    let lane = road.lane_at(pose.y);
    let left_gap = lane.left_boundary() - (pose.y + params.width / 2.0);
    let right_gap = (pose.y - params.width / 2.0) - lane.right_boundary();
    let mut lat_free = left_gap.min(right_gap).max(0.0);

    // `to_local` and `into_frame` rotate by the same `-θ`; one hoisted
    // sin/cos serves every object, bit-identical to the per-object calls.
    let (frame_sin, frame_cos) = (-pose.theta).sin_cos();
    let origin = pose.position();
    for obj in &model.objects {
        let local = (obj.position - origin).rotated_by(frame_sin, frame_cos);
        let obj_len = obj.extent.x;
        let obj_wid = obj.extent.y;
        // The +1.0 m corridor margin (vs the hazard monitor's +0.2 m)
        // is cut-in anticipation: production planners begin yielding to a
        // vehicle encroaching on the lane boundary well before its body
        // enters the ego's swept path.
        if local.x > 0.0 && local.y.abs() < (params.width + obj_wid) / 2.0 + 1.0 {
            let gap = local.x - (params.length + obj_len) / 2.0;
            // Credit the tracked object's receding motion (see the
            // ground-truth twin in `drivefi_world` for the rationale and
            // the Example-1 calibration).
            let recede = obj.velocity.rotated_by(frame_sin, frame_cos).x.max(0.0);
            let credit = recede * recede / (2.0 * params.max_decel);
            lon_free = lon_free.min(gap.max(0.0) + credit);
        }
        if local.x.abs() < (params.length + obj_len) / 2.0 {
            let gap = local.y.abs() - (params.width + obj_wid) / 2.0;
            lat_free = lat_free.min(gap.max(0.0));
        }
    }
    SafetyEnvelope::new(lon_free, lat_free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_kinematics::Vec2;
    use drivefi_perception::{TrackId, TrackedObject};

    fn obj(x: f64, y: f64) -> TrackedObject {
        TrackedObject {
            id: TrackId(0),
            position: Vec2::new(x, y),
            velocity: Vec2::ZERO,
            extent: Vec2::new(4.7, 1.9),
            truth_id: 0,
        }
    }

    #[test]
    fn empty_model_gives_horizon() {
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
        let env = perceived_envelope(
            &pose,
            &WorldModel::new(),
            &Road::default_highway(),
            &VehicleParams::default(),
        );
        assert_eq!(env.free.longitudinal, PERCEIVED_HORIZON);
        assert!((env.free.lateral - 0.9).abs() < 1e-9);
    }

    #[test]
    fn lead_object_limits_longitudinal() {
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
        let model = WorldModel { objects: vec![obj(54.7, 0.0)] };
        let env =
            perceived_envelope(&pose, &model, &Road::default_highway(), &VehicleParams::default());
        assert!((env.free.longitudinal - 50.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_lane_object_does_not_limit() {
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
        let model = WorldModel { objects: vec![obj(50.0, 3.7)] };
        let env =
            perceived_envelope(&pose, &model, &Road::default_highway(), &VehicleParams::default());
        assert_eq!(env.free.longitudinal, PERCEIVED_HORIZON);
    }

    #[test]
    fn alongside_object_limits_lateral() {
        let pose = VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0);
        let model = WorldModel { objects: vec![obj(0.0, 2.8)] };
        let env =
            perceived_envelope(&pose, &model, &Road::default_highway(), &VehicleParams::default());
        // gap = 2.8 - (1.9 + 1.9)/2 = 0.9 — equals the lane-boundary gap.
        assert!((env.free.lateral - 0.9).abs() < 1e-9);
        let model = WorldModel { objects: vec![obj(0.0, 2.5)] };
        let env =
            perceived_envelope(&pose, &model, &Road::default_highway(), &VehicleParams::default());
        assert!((env.free.lateral - 0.6).abs() < 1e-9);
    }
}
