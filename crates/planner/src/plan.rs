//! The top-level planner producing `U_A,t`.

use crate::envelope::perceived_envelope;
use crate::lane_keep::LaneKeeper;
use crate::speed::SpeedPlanner;
use drivefi_kinematics::{Actuation, SafetyEnvelope, SafetyPotential, VehicleParams, VehicleState};
use drivefi_perception::WorldModel;
use drivefi_world::Road;

/// Planner tunables.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerConfig {
    /// Longitudinal planner.
    pub speed: SpeedPlanner,
    /// Lateral planner.
    pub lane: LaneKeeper,
}

/// Everything the planner publishes each tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerOutput {
    /// The raw actuation command `U_A,t`.
    pub raw: Actuation,
    /// The *perceived* safety envelope `d_safe`.
    pub envelope: SafetyEnvelope,
    /// The *perceived* safety potential `δ`.
    pub delta: SafetyPotential,
}

/// The motion planner: perceived envelope → δ-constrained ACC + lane
/// keeping → raw actuation `U_A,t`.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    config: PlannerConfig,
    params: VehicleParams,
}

impl Planner {
    /// Creates a planner for a vehicle with the given parameters.
    pub fn new(config: PlannerConfig, params: VehicleParams) -> Self {
        Planner { config, params }
    }

    /// Vehicle parameters the planner assumes.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Plans one tick.
    pub fn plan(
        &self,
        pose: &VehicleState,
        model: &WorldModel,
        road: &Road,
        set_speed: f64,
    ) -> PlannerOutput {
        let envelope = perceived_envelope(pose, model, road, &self.params);
        let delta = SafetyPotential::evaluate(&self.params, pose, &envelope);

        let lead = self.config.speed.find_lead(pose, model, &self.params);
        let accel = self.config.speed.plan_accel(pose, set_speed, lead, &delta, &self.params);
        // Drag feedforward: the commanded traction must also cancel the
        // speed-proportional drag, or cruise settles below the set speed.
        let accel = if accel > -0.5 { accel + self.params.drag * pose.v.max(0.0) } else { accel };

        let (throttle, brake) = if accel >= 0.0 {
            ((accel / self.params.max_accel).min(1.0), 0.0)
        } else {
            (0.0, (-accel / self.params.max_decel).min(1.0))
        };
        let steering = self.config.lane.steer(pose, road, &self.params);

        PlannerOutput { raw: Actuation { throttle, brake, steering }, envelope, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_kinematics::Vec2;
    use drivefi_perception::{TrackId, TrackedObject};

    fn planner() -> Planner {
        Planner::new(PlannerConfig::default(), VehicleParams::default())
    }

    fn obj(x: f64, vx: f64) -> TrackedObject {
        TrackedObject {
            id: TrackId(0),
            position: Vec2::new(x, 0.0),
            velocity: Vec2::new(vx, 0.0),
            extent: Vec2::new(4.7, 1.9),
            truth_id: 0,
        }
    }

    #[test]
    fn free_road_below_set_speed_throttles() {
        let out = planner().plan(
            &VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0),
            &WorldModel::new(),
            &Road::default_highway(),
            30.0,
        );
        assert!(out.raw.throttle > 0.0);
        assert_eq!(out.raw.brake, 0.0);
        assert!(out.delta.is_safe());
    }

    #[test]
    fn imminent_obstacle_brakes_hard() {
        // 30 m/s with an object 40 m ahead: d_stop ≈ 56 m > d_safe → AEB.
        let model = WorldModel { objects: vec![obj(40.0, 0.0)] };
        let out = planner().plan(
            &VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0),
            &model,
            &Road::default_highway(),
            30.0,
        );
        assert!(out.raw.brake > 0.9, "brake = {}", out.raw.brake);
        assert!(!out.delta.is_safe());
    }

    #[test]
    fn distant_lead_allows_cruise() {
        let model = WorldModel { objects: vec![obj(180.0, 30.0)] };
        let out = planner().plan(
            &VehicleState::new(0.0, 0.0, 25.0, 0.0, 0.0),
            &model,
            &Road::default_highway(),
            30.0,
        );
        assert!(out.raw.throttle > 0.0);
        assert!(out.delta.is_safe());
    }

    #[test]
    fn throttle_and_brake_are_mutually_exclusive() {
        for gap in [20.0, 60.0, 120.0, 200.0] {
            let model = WorldModel { objects: vec![obj(gap, 10.0)] };
            let out = planner().plan(
                &VehicleState::new(0.0, 0.0, 28.0, 0.0, 0.0),
                &model,
                &Road::default_highway(),
                30.0,
            );
            assert!(
                out.raw.throttle == 0.0 || out.raw.brake == 0.0,
                "gap {gap}: throttle {} brake {}",
                out.raw.throttle,
                out.raw.brake
            );
        }
    }

    #[test]
    fn perceived_delta_reflects_envelope() {
        let model = WorldModel { objects: vec![obj(60.0, 25.0)] };
        let out = planner().plan(
            &VehicleState::new(0.0, 0.0, 25.0, 0.0, 0.0),
            &model,
            &Road::default_highway(),
            30.0,
        );
        // envelope = (60 - 4.7) + 25²/16; stop = 625/16; margin 2.0 — the
        // motion credit and the stopping distance cancel for a same-speed
        // lead, leaving δ = gap − margin.
        let credit = 625.0 / 16.0;
        assert!((out.envelope.free.longitudinal - (55.3 + credit)).abs() < 1e-9);
        assert!((out.delta.longitudinal - (55.3 - 2.0)).abs() < 1e-6);
    }
}
