//! Longitudinal (speed) planning: adaptive cruise + emergency braking.

use drivefi_kinematics::{SafetyPotential, VehicleParams, VehicleState};
use drivefi_perception::WorldModel;

/// Longitudinal planner: IDM-style adaptive cruise control toward a set
/// speed, constrained by the safety potential (automatic emergency
/// braking as `δ_lon` approaches zero).
#[derive(Debug, Clone, Copy)]
pub struct SpeedPlanner {
    /// Maximum planned acceleration \[m/s²\].
    pub max_accel: f64,
    /// Comfortable planned deceleration \[m/s²\].
    pub comfort_decel: f64,
    /// Desired time headway to the lead vehicle \[s\].
    pub time_headway: f64,
    /// Minimum standstill gap \[m\].
    pub min_gap: f64,
    /// δ_lon below which the planner blends toward full braking \[m\].
    pub aeb_delta: f64,
}

impl Default for SpeedPlanner {
    fn default() -> Self {
        SpeedPlanner {
            max_accel: 2.0,
            comfort_decel: 3.5,
            time_headway: 1.6,
            min_gap: 4.0,
            aeb_delta: 4.0,
        }
    }
}

/// The lead vehicle as seen by the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadInfo {
    /// Bumper-to-bumper gap \[m\].
    pub gap: f64,
    /// Lead speed along the ego heading \[m/s\].
    pub speed: f64,
}

impl SpeedPlanner {
    /// Finds the lead object in the ego corridor from the world model.
    pub fn find_lead(
        &self,
        pose: &VehicleState,
        model: &WorldModel,
        params: &VehicleParams,
    ) -> Option<LeadInfo> {
        let mut best: Option<LeadInfo> = None;
        // Hoisted ego rotation (see `perceived_envelope`): same `-θ` for
        // positions and velocities, computed once for all objects.
        let (frame_sin, frame_cos) = (-pose.theta).sin_cos();
        let origin = pose.position();
        for obj in &model.objects {
            let local = (obj.position - origin).rotated_by(frame_sin, frame_cos);
            // Same widened corridor as the perceived envelope: react to
            // vehicles already encroaching on the lane boundary.
            if local.x <= 0.0 || local.y.abs() > (params.width + obj.extent.y) / 2.0 + 1.0 {
                continue;
            }
            let gap = local.x - (params.length + obj.extent.x) / 2.0;
            let speed = obj.velocity.rotated_by(frame_sin, frame_cos).x;
            if best.is_none_or(|b| gap < b.gap) {
                best = Some(LeadInfo { gap: gap.max(0.0), speed });
            }
        }
        best
    }

    /// Plans a longitudinal acceleration \[m/s²\].
    ///
    /// `delta` is the planner's current safety potential; when its
    /// longitudinal component drops below `aeb_delta` the command blends
    /// toward maximum braking, reaching full braking at `δ_lon ≤ 0`.
    pub fn plan_accel(
        &self,
        pose: &VehicleState,
        set_speed: f64,
        lead: Option<LeadInfo>,
        delta: &SafetyPotential,
        params: &VehicleParams,
    ) -> f64 {
        let v = pose.v.max(0.0);
        let desired = set_speed.max(0.1);
        // IDM free-road term.
        let free = 1.0 - (v / desired).powi(4);
        let interaction = match lead {
            None => 0.0,
            Some(l) => {
                let gap = l.gap.max(0.1);
                let approach = v - l.speed;
                let s_star = self.min_gap
                    + (v * self.time_headway
                        + v * approach / (2.0 * (self.max_accel * self.comfort_decel).sqrt()))
                    .max(0.0);
                (s_star / gap).powi(2)
            }
        };
        let mut accel = self.max_accel * (free - interaction);

        // AEB blending on low safety potential.
        if delta.longitudinal < self.aeb_delta {
            let urgency = 1.0 - (delta.longitudinal / self.aeb_delta).clamp(0.0, 1.0);
            let aeb = -params.max_decel * urgency;
            accel = accel.min(aeb);
        }
        accel.clamp(-params.max_decel, self.max_accel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_kinematics::Vec2;
    use drivefi_perception::{TrackId, TrackedObject, WorldModel};

    fn pose(v: f64) -> VehicleState {
        VehicleState::new(0.0, 0.0, v, 0.0, 0.0)
    }

    fn safe_delta() -> SafetyPotential {
        SafetyPotential { longitudinal: 100.0, lateral: 1.0 }
    }

    fn obj(x: f64, y: f64, vx: f64) -> TrackedObject {
        TrackedObject {
            id: TrackId(0),
            position: Vec2::new(x, y),
            velocity: Vec2::new(vx, 0.0),
            extent: Vec2::new(4.7, 1.9),
            truth_id: 0,
        }
    }

    #[test]
    fn accelerates_toward_set_speed_on_free_road() {
        let sp = SpeedPlanner::default();
        let a = sp.plan_accel(&pose(20.0), 30.0, None, &safe_delta(), &VehicleParams::default());
        assert!(a > 0.5);
    }

    #[test]
    fn holds_speed_at_set_point() {
        let sp = SpeedPlanner::default();
        let a = sp.plan_accel(&pose(30.0), 30.0, None, &safe_delta(), &VehicleParams::default());
        assert!(a.abs() < 0.1);
    }

    #[test]
    fn brakes_for_close_lead() {
        let sp = SpeedPlanner::default();
        let lead = Some(LeadInfo { gap: 10.0, speed: 10.0 });
        let a = sp.plan_accel(&pose(30.0), 30.0, lead, &safe_delta(), &VehicleParams::default());
        assert!(a < -2.0, "a = {a}");
    }

    #[test]
    fn aeb_forces_full_braking_at_zero_delta() {
        let sp = SpeedPlanner::default();
        let p = VehicleParams::default();
        let delta = SafetyPotential { longitudinal: 0.0, lateral: 1.0 };
        let a = sp.plan_accel(&pose(30.0), 30.0, None, &delta, &p);
        assert!((a + p.max_decel).abs() < 1e-9, "a = {a}");
    }

    #[test]
    fn aeb_blends_proportionally() {
        let sp = SpeedPlanner::default();
        let p = VehicleParams::default();
        let half = SafetyPotential { longitudinal: sp.aeb_delta / 2.0, lateral: 1.0 };
        let a = sp.plan_accel(&pose(30.0), 30.0, None, &half, &p);
        assert!(a <= -p.max_decel / 2.0 + 1e-9);
        assert!(a > -p.max_decel);
    }

    #[test]
    fn find_lead_picks_nearest_in_corridor() {
        let sp = SpeedPlanner::default();
        let model = WorldModel {
            objects: vec![obj(80.0, 0.0, 20.0), obj(40.0, 0.0, 15.0), obj(20.0, 3.7, 10.0)],
        };
        let lead = sp.find_lead(&pose(30.0), &model, &VehicleParams::default()).unwrap();
        assert!((lead.gap - (40.0 - 4.7)).abs() < 1e-9);
        assert_eq!(lead.speed, 15.0);
    }

    #[test]
    fn find_lead_ignores_objects_behind() {
        let sp = SpeedPlanner::default();
        let model = WorldModel { objects: vec![obj(-20.0, 0.0, 10.0)] };
        assert!(sp.find_lead(&pose(30.0), &model, &VehicleParams::default()).is_none());
    }
}
