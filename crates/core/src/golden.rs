//! Golden-run collection: fault-free traces over the scenario suite.

use drivefi_sim::{CampaignEngine, CampaignJob, SimConfig, Trace, TraceSink};
use drivefi_world::ScenarioSuite;

/// Runs every scenario of `suite` fault-free (in parallel over `workers`
/// threads) and returns the per-scene traces, in scenario order. Jobs
/// stream through the [`CampaignEngine`] with a [`TraceSink`], so only
/// the traces themselves are retained.
///
/// # Panics
///
/// Panics if a golden run produced no trace (they are always requested).
pub fn collect_golden_traces(
    config: &SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
) -> Vec<Trace> {
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..*config };
    let engine = CampaignEngine::new(config).with_workers(workers);
    let mut sink = TraceSink::new();
    let shared = suite.shared();
    let jobs = shared.iter().map(|s| CampaignJob {
        id: u64::from(s.id),
        scenario: std::sync::Arc::clone(s),
        faults: Vec::new(),
    });
    engine.run(jobs, &mut sink);
    sink.into_traces()
}

/// The per-job [`RecordMeta`](drivefi_store::RecordMeta) table for a
/// golden (fault-free) campaign over `suite`, indexed by job index —
/// one fault-less entry per scenario, in suite order.
pub fn golden_record_metas(suite: &ScenarioSuite) -> Vec<drivefi_store::RecordMeta> {
    suite
        .scenarios
        .iter()
        .map(|scenario| drivefi_store::RecordMeta {
            scenario_id: scenario.id,
            scenario_seed: scenario.seed,
            fault: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_metas_cover_the_suite_in_order() {
        let suite = ScenarioSuite::generate(3, 5);
        let metas = golden_record_metas(&suite);
        assert_eq!(metas.len(), 3);
        for (meta, scenario) in metas.iter().zip(&suite.scenarios) {
            assert_eq!(meta.scenario_id, scenario.id);
            assert_eq!(meta.scenario_seed, scenario.seed);
            assert_eq!(meta.fault, None);
        }
    }

    #[test]
    fn traces_cover_the_suite() {
        let suite = ScenarioSuite::generate(4, 77);
        let traces = collect_golden_traces(&SimConfig::default(), &suite, 4);
        assert_eq!(traces.len(), 4);
        for (t, s) in traces.iter().zip(&suite.scenarios) {
            assert_eq!(t.scenario_id, s.id);
            assert_eq!(t.frames.len(), s.scene_count());
        }
    }

    #[test]
    fn golden_traces_are_mostly_safe() {
        let suite = ScenarioSuite::generate(8, 2026);
        let traces = collect_golden_traces(&SimConfig::default(), &suite, 8);
        let total: usize = traces.iter().map(|t| t.frames.len()).sum();
        let safe: usize = traces.iter().map(|t| t.safe_scenes().count()).sum();
        assert!(safe as f64 / total as f64 > 0.95, "safe {safe}/{total}");
    }
}
