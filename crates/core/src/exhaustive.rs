//! Exhaustive ground truth: miner precision *and* recall.
//!
//! The paper validates the mined set forward (460 of 561 mined faults
//! manifest → 82 % precision) but never runs the exhaustive campaign
//! that would expose the miner's *recall* — that campaign is the 615-day
//! cost the whole approach exists to avoid. At our simulator's speed the
//! exhaustive campaign is affordable on a *subset* of the corpus, so
//! this module closes the loop: inject **every** candidate fault for
//! real, compare the manifested set against the mined set, and report
//! precision / recall / F1.

use crate::miner::BayesianMiner;
use drivefi_fault::{FaultKind, FaultSpec};
use drivefi_sim::{CampaignEngine, CampaignResult, SimConfig, Trace};
use drivefi_world::ScenarioSuite;
use std::collections::BTreeSet;
use std::time::Duration;

/// Identity of a candidate fault for set comparison: scenario plus the
/// `Copy` [`drivefi_fault::FaultKey`] of its spec. Replaces the old
/// `(u32, u64, String, String)` key whose two `String`s were allocated
/// per candidate in the hot comparison path.
type CandidateKey = (u32, drivefi_fault::FaultKey);

/// Outcome of the exhaustive comparison.
#[derive(Debug, Clone)]
pub struct ExhaustiveReport {
    /// Total candidates injected.
    pub candidates: usize,
    /// Candidates that manifested as hazards/collisions (ground truth).
    pub true_hazards: usize,
    /// Faults the miner flagged.
    pub mined: usize,
    /// Mined ∩ ground truth.
    pub true_positives: usize,
    /// Mined but harmless in reality.
    pub false_positives: usize,
    /// Hazardous in reality but not mined.
    pub false_negatives: usize,
    /// Wall-clock of the exhaustive campaign.
    pub exhaustive_time: Duration,
    /// Wall-clock of mining.
    pub mining_time: Duration,
    /// Per-(signal, corruption) accounting: `(ground-truth hazards,
    /// candidates, mined, mined ∩ hazards)`.
    pub by_fault: std::collections::BTreeMap<(String, String), (usize, usize, usize, usize)>,
}

impl ExhaustiveReport {
    /// Precision: TP / (TP + FP). Zero when nothing was mined.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN). One when nothing is hazardous.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// One-line summary row.
    pub fn summary(&self) -> String {
        format!(
            "candidates={} hazards={} mined={} TP={} FP={} FN={} P={:.2} R={:.2} F1={:.2}",
            self.candidates,
            self.true_hazards,
            self.mined,
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

/// The `(signal, corruption)` display names of a scalar fault spec, for
/// the per-fault report rows (only built for the ~tens of distinct
/// rows, never per candidate).
fn display_names(spec: FaultSpec) -> (String, String) {
    match spec.kind {
        FaultKind::Scalar { signal, model } => (signal.name().to_owned(), model.name()),
        other => (other.name(), String::new()),
    }
}

/// The exhaustive candidate enumeration as light-weight
/// `(scenario id, FaultSpec)` pairs, in the miner's deterministic
/// candidate order: every candidate the miner would consider (same
/// eligibility and stride), each with the
/// [`crate::report::VALIDATION_WINDOW_SCENES`]-scene injection window.
/// This is the **stable job indexing** store-backed exhaustive sweeps
/// persist under — the pair at index `i` is job `i`, interrupted or
/// not, because the enumeration is a pure function of the traces.
pub fn candidate_specs(miner: &BayesianMiner, traces: &[Trace]) -> Vec<(u32, FaultSpec)> {
    traces
        .iter()
        .flat_map(|trace| {
            miner.candidates(trace).map(|(k, signal, _var, model)| {
                let scene = trace.frames[k].scene;
                (
                    trace.scenario_id,
                    FaultSpec {
                        kind: FaultKind::Scalar { signal, model },
                        window: drivefi_fault::WindowSpec::burst(
                            scene,
                            crate::report::VALIDATION_WINDOW_SCENES,
                        ),
                    },
                )
            })
        })
        .collect()
}

/// The per-job [`RecordMeta`](drivefi_store::RecordMeta) table for a
/// faulted sweep over `(scenario id, FaultSpec)` pairs (an exhaustive
/// candidate sweep or a mined-set validation), indexed by job index.
pub fn candidate_record_metas(
    suite: &ScenarioSuite,
    candidates: &[(u32, FaultSpec)],
) -> Vec<drivefi_store::RecordMeta> {
    candidates
        .iter()
        .map(|&(scenario_id, spec)| drivefi_store::RecordMeta {
            scenario_id,
            scenario_seed: suite.scenarios[scenario_id as usize].seed,
            fault: Some(spec),
        })
        .collect()
}

/// Runs the exhaustive campaign over every candidate the miner would
/// consider (same eligibility and stride), computes the ground-truth
/// hazard set, mines, and compares. Both campaigns use the same
/// [`crate::report::VALIDATION_WINDOW_SCENES`]-scene injection window,
/// so mined and ground-truth outcomes are directly comparable.
pub fn exhaustive_comparison(
    sim: &SimConfig,
    suite: &ScenarioSuite,
    miner: &BayesianMiner,
    traces: &[Trace],
    workers: usize,
) -> ExhaustiveReport {
    // Materialize only the light-weight `(scenario, FaultSpec)` pairs;
    // keys and the job stream both derive from this single enumeration
    // (so submission index i always corresponds to candidates[i]), and
    // the jobs themselves stream lazily through the engine: the
    // scenario × fault cross-product is never materialized as a job
    // vector, every job shares its scenario's single `Arc` allocation,
    // and candidate identities are `Copy` keys — no per-candidate
    // `String` allocation anywhere in the sweep.
    let candidates = candidate_specs(miner, traces);
    let key_of = |i: u64| -> CandidateKey {
        let (sid, spec) = candidates[i as usize];
        (sid, spec.key())
    };

    let shared = suite.shared();
    let jobs = candidates.iter().map(|&(sid, spec)| drivefi_sim::CampaignJob {
        id: u64::from(sid),
        scenario: std::sync::Arc::clone(&shared[sid as usize]),
        faults: vec![spec.compile()],
    });

    let engine = CampaignEngine::new(*sim).with_workers(workers);
    let start = std::time::Instant::now();
    let mut hazardous: BTreeSet<u64> = BTreeSet::new();
    engine.run(jobs, &mut |index: u64, result: CampaignResult| {
        if result.report.outcome.is_hazardous() {
            hazardous.insert(index);
        }
    });
    let exhaustive_time = start.elapsed();

    let ground_truth: BTreeSet<CandidateKey> = hazardous.iter().map(|&i| key_of(i)).collect();

    let mine_start = std::time::Instant::now();
    let mined = miner.mine(traces);
    let mining_time = mine_start.elapsed();
    let mined_keys: BTreeSet<CandidateKey> =
        mined.iter().map(|c| (c.scenario_id, c.fault_spec().key())).collect();

    let true_positives = mined_keys.intersection(&ground_truth).count();

    let mut by_fault: std::collections::BTreeMap<(String, String), (usize, usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for (i, &(_, spec)) in candidates.iter().enumerate() {
        let slot = by_fault.entry(display_names(spec)).or_default();
        slot.1 += 1;
        if ground_truth.contains(&key_of(i as u64)) {
            slot.0 += 1;
        }
    }
    for c in &mined {
        let slot = by_fault.entry(display_names(c.fault_spec())).or_default();
        slot.2 += 1;
        if ground_truth.contains(&(c.scenario_id, c.fault_spec().key())) {
            slot.3 += 1;
        }
    }

    ExhaustiveReport {
        candidates: candidates.len(),
        true_hazards: ground_truth.len(),
        mined: mined_keys.len(),
        true_positives,
        false_positives: mined_keys.len() - true_positives,
        false_negatives: ground_truth.len() - true_positives,
        exhaustive_time,
        mining_time,
        by_fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_golden_traces;
    use crate::miner::MinerConfig;

    #[test]
    fn report_arithmetic() {
        let r = ExhaustiveReport {
            candidates: 100,
            true_hazards: 10,
            mined: 12,
            true_positives: 8,
            false_positives: 4,
            false_negatives: 2,
            exhaustive_time: Duration::from_secs(60),
            mining_time: Duration::from_secs(1),
            by_fault: Default::default(),
        };
        assert!((r.precision() - 8.0 / 12.0).abs() < 1e-12);
        assert!((r.recall() - 0.8).abs() < 1e-12);
        assert!(r.f1() > 0.7 && r.f1() < 0.8);
        assert!(r.summary().contains("F1"));
    }

    #[test]
    fn degenerate_reports() {
        let r = ExhaustiveReport {
            candidates: 10,
            true_hazards: 0,
            mined: 0,
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            exhaustive_time: Duration::ZERO,
            mining_time: Duration::ZERO,
            by_fault: Default::default(),
        };
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 0.0);
    }

    #[test]
    fn small_exhaustive_comparison_is_coherent() {
        // A deliberately tiny corpus (2 scenarios, aggressive stride) so
        // the exhaustive campaign stays test-sized.
        let suite = ScenarioSuite::generate(2, 42);
        let sim = SimConfig::default();
        let traces = collect_golden_traces(&sim, &suite, 4);
        let config = MinerConfig { scene_stride: 40, ..MinerConfig::default() };
        let miner = BayesianMiner::fit(&traces, config).unwrap();
        let report = exhaustive_comparison(&sim, &suite, &miner, &traces, 8);
        assert!(report.candidates > 0);
        assert_eq!(
            report.mined,
            report.true_positives + report.false_positives,
            "mined set accounting broken"
        );
        assert_eq!(
            report.true_hazards,
            report.true_positives + report.false_negatives,
            "ground-truth accounting broken"
        );
        assert!(report.precision() >= 0.0 && report.precision() <= 1.0);
        assert!(report.recall() >= 0.0 && report.recall() <= 1.0);
    }
}
