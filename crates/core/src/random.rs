//! The random fault-injection baseline (paper fault model *b*, random
//! selection).

use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, ScalarFaultModel};
use drivefi_sim::{default_workers, CampaignEngine, CampaignJob, RunningStats, SimConfig};
use drivefi_world::ScenarioSuite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random output-corruption campaign.
#[derive(Debug, Clone, Copy)]
pub struct RandomCampaignConfig {
    /// Number of injection runs.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
}

impl Default for RandomCampaignConfig {
    fn default() -> Self {
        RandomCampaignConfig { runs: 500, seed: 0xBAD5EED, workers: default_workers() }
    }
}

/// Aggregate statistics of a random campaign.
#[derive(Debug, Clone, Default)]
pub struct RandomCampaignStats {
    /// Total runs.
    pub runs: usize,
    /// Runs ending safe.
    pub safe: usize,
    /// Runs with δ ≤ 0 but no collision.
    pub hazards: usize,
    /// Runs with a collision.
    pub collisions: usize,
    /// Runs in which the injector actually corrupted a live value.
    pub effective_injections: usize,
    /// The hazardous (scenario, scene, signal) triples, if any.
    pub hazard_details: Vec<(u32, u64, &'static str)>,
}

impl RandomCampaignStats {
    /// Fraction of runs that violated safety.
    pub fn hazard_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            (self.hazards + self.collisions) as f64 / self.runs as f64
        }
    }
}

/// Runs `config.runs` random single-scene min/max output corruptions,
/// uniformly over (scenario, scene, signal, min|max) — the paper's
/// baseline, which over several weeks of cluster time never produced a
/// single safety hazard.
pub fn random_output_campaign(
    sim: &SimConfig,
    suite: &ScenarioSuite,
    config: &RandomCampaignConfig,
) -> RandomCampaignStats {
    // Draw the light-weight picks up front (the RNG stream must not
    // depend on scheduling); the jobs themselves — each sharing its
    // scenario's one allocation — stream into the engine one idle worker
    // at a time.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let picks: Vec<(usize, u64, Signal, ScalarFaultModel)> = (0..config.runs)
        .map(|_| {
            let index = rng.random_range(0..suite.scenarios.len());
            let scene = rng.random_range(1..suite.scenarios[index].scene_count() as u64 - 1);
            let signal = Signal::ALL[rng.random_range(0..Signal::ALL.len())];
            let model = if rng.random::<bool>() {
                ScalarFaultModel::StuckMax
            } else {
                ScalarFaultModel::StuckMin
            };
            (index, scene, signal, model)
        })
        .collect();

    let engine = CampaignEngine::new(*sim).with_workers(config.workers);
    let mut running = RunningStats::new();
    let shared = suite.shared();
    let jobs = picks.iter().enumerate().map(|(id, &(index, scene, signal, model))| CampaignJob {
        id: id as u64,
        scenario: std::sync::Arc::clone(&shared[index]),
        faults: vec![Fault {
            kind: FaultKind::Scalar { signal, model },
            window: FaultWindow::scene(scene),
        }],
    });
    engine.run(jobs, &mut running);

    RandomCampaignStats {
        runs: running.runs,
        safe: running.safe,
        hazards: running.hazards,
        collisions: running.collisions,
        effective_injections: running.effective_injections,
        // BTreeSet iteration restores submission order, keeping the
        // details deterministic across worker counts.
        hazard_details: running
            .hazardous_indices
            .iter()
            .map(|&i| {
                let (index, scene, signal, _) = picks[i as usize];
                (suite.scenarios[index].id, scene, signal.name())
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_random_campaign_mostly_safe() {
        let suite = ScenarioSuite::generate(8, 42);
        let config = RandomCampaignConfig { runs: 60, seed: 1, workers: 8 };
        let stats = random_output_campaign(&SimConfig::default(), &suite, &config);
        assert_eq!(stats.runs, 60);
        assert_eq!(stats.safe + stats.hazards + stats.collisions, 60);
        // The paper's headline: random injections essentially never
        // produce hazards.
        assert!(stats.hazard_rate() < 0.1, "hazard rate {}", stats.hazard_rate());
        assert!(stats.effective_injections > 30);
    }

    #[test]
    fn campaign_is_reproducible() {
        let suite = ScenarioSuite::generate(4, 42);
        let config = RandomCampaignConfig { runs: 20, seed: 9, workers: 4 };
        let a = random_output_campaign(&SimConfig::default(), &suite, &config);
        let b = random_output_campaign(&SimConfig::default(), &suite, &config);
        assert_eq!(a.safe, b.safe);
        assert_eq!(a.hazards, b.hazards);
    }
}
