//! The random fault-injection baseline (paper fault model *b*, random
//! selection), generalized to any [`FaultSpace`].

use drivefi_fault::{FaultSpace, FaultSpec};
use drivefi_sim::{default_workers, CampaignEngine, CampaignJob, RunningStats, SimConfig};
use drivefi_world::ScenarioSuite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random output-corruption campaign.
#[derive(Debug, Clone, Copy)]
pub struct RandomCampaignConfig {
    /// Number of injection runs.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
}

impl Default for RandomCampaignConfig {
    fn default() -> Self {
        RandomCampaignConfig { runs: 500, seed: 0xBAD5EED, workers: default_workers() }
    }
}

/// Aggregate statistics of a random campaign.
#[derive(Debug, Clone, Default)]
pub struct RandomCampaignStats {
    /// Total runs.
    pub runs: usize,
    /// Runs ending safe.
    pub safe: usize,
    /// Runs with δ ≤ 0 but no collision.
    pub hazards: usize,
    /// Runs with a collision.
    pub collisions: usize,
    /// Runs in which the injector actually corrupted a live value.
    pub effective_injections: usize,
    /// The hazardous (scenario, scene, fault-target) triples, if any.
    pub hazard_details: Vec<(u32, u64, &'static str)>,
}

impl RandomCampaignStats {
    /// Fraction of runs that violated safety.
    pub fn hazard_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            (self.hazards + self.collisions) as f64 / self.runs as f64
        }
    }
}

/// The RNG stream of a random campaign: `config.runs` draws of
/// `(scenario index, fault spec)`, each pick one uniform scenario draw
/// followed by one [`FaultSpace::sample`]. Drawn up front so the stream
/// is a pure function of the seed, never of worker scheduling. This is
/// the single sampling path shared by the typed driver and the
/// plan-file runner — which is what makes a `kind = "random"` campaign
/// plan reproduce [`random_space_campaign`] number-for-number.
pub fn random_fault_picks(
    suite: &ScenarioSuite,
    space: &FaultSpace,
    config: &RandomCampaignConfig,
) -> Vec<(usize, FaultSpec)> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.runs)
        .map(|_| {
            let index = rng.random_range(0..suite.scenarios.len());
            let scene_count = suite.scenarios[index].scene_count() as u64;
            (index, space.sample(scene_count, &mut rng))
        })
        .collect()
}

/// The per-job [`RecordMeta`](drivefi_store::RecordMeta) table for a
/// random campaign's picks, indexed by job index — what a
/// [`StoreSink`](drivefi_store::StoreSink) needs to turn engine results
/// into persisted [`CampaignRecord`](drivefi_store::CampaignRecord)s.
pub fn pick_record_metas(
    suite: &ScenarioSuite,
    picks: &[(usize, FaultSpec)],
) -> Vec<drivefi_store::RecordMeta> {
    picks
        .iter()
        .map(|&(index, spec)| {
            let scenario = &suite.scenarios[index];
            drivefi_store::RecordMeta {
                scenario_id: scenario.id,
                scenario_seed: scenario.seed,
                fault: Some(spec),
            }
        })
        .collect()
}

/// Runs `config.runs` random corruptions drawn uniformly from `space` ×
/// the suite — each run one scenario with one sampled [`FaultSpec`]
/// armed. With the default space this is the paper's baseline: uniform
/// `(scenario, scene, signal, min|max)` single-scene corruptions, which
/// over several weeks of cluster time never produced a single safety
/// hazard.
pub fn random_space_campaign(
    sim: &SimConfig,
    suite: &ScenarioSuite,
    space: &FaultSpace,
    config: &RandomCampaignConfig,
) -> RandomCampaignStats {
    let picks = random_fault_picks(suite, space, config);

    let engine = CampaignEngine::new(*sim).with_workers(config.workers);
    let mut running = RunningStats::new();
    let shared = suite.shared();
    let jobs = picks.iter().enumerate().map(|(id, &(index, spec))| CampaignJob {
        id: id as u64,
        scenario: std::sync::Arc::clone(&shared[index]),
        faults: vec![spec.compile()],
    });
    engine.run(jobs, &mut running);

    RandomCampaignStats {
        runs: running.runs,
        safe: running.safe,
        hazards: running.hazards,
        collisions: running.collisions,
        effective_injections: running.effective_injections,
        // BTreeSet iteration restores submission order, keeping the
        // details deterministic across worker counts.
        hazard_details: running
            .hazardous_indices
            .iter()
            .map(|&i| {
                let (index, spec) = picks[i as usize];
                (suite.scenarios[index].id, spec.window.scene, spec.kind.target_name())
            })
            .collect(),
    }
}

/// The paper-baseline wrapper: [`random_space_campaign`] over the
/// default [`FaultSpace`] (every signal × {min, max}, single-scene
/// windows over the scenario interior).
pub fn random_output_campaign(
    sim: &SimConfig,
    suite: &ScenarioSuite,
    config: &RandomCampaignConfig,
) -> RandomCampaignStats {
    random_space_campaign(sim, suite, &FaultSpace::default(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_fault::FaultKind;

    #[test]
    fn small_random_campaign_mostly_safe() {
        let suite = ScenarioSuite::generate(8, 42);
        let config = RandomCampaignConfig { runs: 60, seed: 1, workers: 8 };
        let stats = random_output_campaign(&SimConfig::default(), &suite, &config);
        assert_eq!(stats.runs, 60);
        assert_eq!(stats.safe + stats.hazards + stats.collisions, 60);
        // The paper's headline: random injections essentially never
        // produce hazards.
        assert!(stats.hazard_rate() < 0.1, "hazard rate {}", stats.hazard_rate());
        assert!(stats.effective_injections > 30);
    }

    #[test]
    fn campaign_is_reproducible() {
        let suite = ScenarioSuite::generate(4, 42);
        let config = RandomCampaignConfig { runs: 20, seed: 9, workers: 4 };
        let a = random_output_campaign(&SimConfig::default(), &suite, &config);
        let b = random_output_campaign(&SimConfig::default(), &suite, &config);
        assert_eq!(a.safe, b.safe);
        assert_eq!(a.hazards, b.hazards);
    }

    #[test]
    fn module_fault_spaces_sample_and_run() {
        // A space of only module-level faults (hang / freeze / clear)
        // exercises the non-scalar half of the FaultSpace API end to end.
        let space = FaultSpace {
            scalars: drivefi_fault::CorruptionGrid::new(Vec::new(), Vec::new()),
            modules: vec![
                FaultKind::ClearWorldModel,
                FaultKind::FreezeWorldModel,
                FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
            ],
            first_scene: 20,
            tail_margin: 40,
            window_scenes: 4,
        };
        let suite = ScenarioSuite::generate(4, 42);
        let config = RandomCampaignConfig { runs: 12, seed: 5, workers: 4 };
        let stats = random_space_campaign(&SimConfig::default(), &suite, &space, &config);
        assert_eq!(stats.runs, 12);
        assert!(stats.effective_injections > 0, "module faults never landed");
        for (_, scene, target) in &stats.hazard_details {
            assert!(*scene >= 20);
            assert!(target.contains('.'));
        }
    }

    #[test]
    fn picks_are_a_pure_function_of_the_seed() {
        let suite = ScenarioSuite::generate(4, 42);
        let space = FaultSpace::default();
        let config = RandomCampaignConfig { runs: 30, seed: 77, workers: 2 };
        let a = random_fault_picks(&suite, &space, &config);
        let b = random_fault_picks(&suite, &space, &config);
        assert_eq!(a, b);
        for &(index, spec) in &a {
            let scene_count = suite.scenarios[index].scene_count() as u64;
            assert!(space.scene_range(scene_count).contains(&spec.window.scene));
        }
    }
}
