//! The DriveFI 3-slice temporal Bayesian network over ADS variables.
//!
//! Topology (paper Fig. 6, instantiated for our stack):
//!
//! ```text
//! intra-slice:  W_dist, W_speed, M_v  →  U_throttle/U_brake
//!               M_v                  →  U_steer
//!               U_x                  →  A_x          (per channel)
//! inter-slice:  M_v, A_throttle, A_brake (t-1) → M_v (t)
//!               A_throttle, A_brake, M_v (t-1) → M_a (t)
//!               W_dist, W_speed, M_v (t-1)     → W_dist (t)
//!               W_speed (t-1)                  → W_speed (t)
//!               A_x (t-1)                      → A_x (t)
//! ```

use drivefi_bayes::{fit_cpts, BayesError, BayesNet, DbnTemplate, Discretizer, VarId};
use drivefi_sim::{FrameRecord, Trace};

/// The ADS variables modeled per slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TbnVar {
    /// Lead-object distance (world model `W_t`), with a no-lead category.
    WDist,
    /// Lead-object speed (world model `W_t`), with a no-lead category.
    WSpeed,
    /// Measured ego speed (`M_t`).
    MV,
    /// Measured ego acceleration (`M_t`).
    MA,
    /// Raw throttle (`U_A,t`).
    UThrottle,
    /// Raw brake (`U_A,t`).
    UBrake,
    /// Raw steering (`U_A,t`).
    USteer,
    /// Final throttle (`A_t`).
    AThrottle,
    /// Final brake (`A_t`).
    ABrake,
    /// Final steering (`A_t`).
    ASteer,
}

impl TbnVar {
    /// All variables, in template order.
    pub const ALL: [TbnVar; 10] = [
        TbnVar::WDist,
        TbnVar::WSpeed,
        TbnVar::MV,
        TbnVar::MA,
        TbnVar::UThrottle,
        TbnVar::UBrake,
        TbnVar::USteer,
        TbnVar::AThrottle,
        TbnVar::ABrake,
        TbnVar::ASteer,
    ];

    /// Template index (stable).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|v| *v == self).expect("var in ALL")
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            TbnVar::WDist => "w_dist",
            TbnVar::WSpeed => "w_speed",
            TbnVar::MV => "m_v",
            TbnVar::MA => "m_a",
            TbnVar::UThrottle => "u_throttle",
            TbnVar::UBrake => "u_brake",
            TbnVar::USteer => "u_steer",
            TbnVar::AThrottle => "a_throttle",
            TbnVar::ABrake => "a_brake",
            TbnVar::ASteer => "a_steer",
        }
    }

    /// True for the lead-object variables that carry a no-lead category.
    pub fn has_no_lead(self) -> bool {
        matches!(self, TbnVar::WDist | TbnVar::WSpeed)
    }

    fn extract(self, f: &FrameRecord) -> Option<f64> {
        match self {
            TbnVar::WDist => f.lead_distance,
            TbnVar::WSpeed => f.lead_speed,
            TbnVar::MV => Some(f.imu_speed),
            TbnVar::MA => Some(f.imu_accel),
            TbnVar::UThrottle => Some(f.raw_cmd.throttle),
            TbnVar::UBrake => Some(f.raw_cmd.brake),
            TbnVar::USteer => Some(f.raw_cmd.steering),
            TbnVar::AThrottle => Some(f.final_cmd.throttle),
            TbnVar::ABrake => Some(f.final_cmd.brake),
            TbnVar::ASteer => Some(f.final_cmd.steering),
        }
    }
}

/// Sentinel used in [`SceneObs`] for "no lead object" (the last category
/// of the lead variables).
pub const NO_LEAD: usize = usize::MAX;

/// One scene observation: the discretized category of every template
/// variable.
pub type SceneObs = [usize; 10];

/// The fitted model: unrolled 3-TBN with learned CPDs plus the
/// discretizers that map between continuous traces and categories.
#[derive(Debug, Clone)]
pub struct TbnModel {
    /// The unrolled 3-slice network with fitted CPDs.
    pub net: BayesNet,
    /// `ids[slice][TbnVar::index()]` — network variable ids.
    pub ids: Vec<Vec<VarId>>,
    discretizers: Vec<Discretizer>,
    bins: usize,
}

impl TbnModel {
    /// Builds the slice template with the Fig. 6 topology.
    fn template(cards: &[usize; 10]) -> DbnTemplate {
        let mut t = DbnTemplate::new();
        for (var, &card) in TbnVar::ALL.iter().zip(cards) {
            t.add_variable(var.name(), card);
        }
        let i = TbnVar::index;
        // Intra-slice: perception/measurement drive planning; planning
        // drives control.
        for u in [TbnVar::UThrottle, TbnVar::UBrake] {
            t.add_intra_edge(i(TbnVar::WDist), i(u));
            t.add_intra_edge(i(TbnVar::WSpeed), i(u));
            t.add_intra_edge(i(TbnVar::MV), i(u));
        }
        t.add_intra_edge(i(TbnVar::MV), i(TbnVar::USteer));
        t.add_intra_edge(i(TbnVar::UThrottle), i(TbnVar::AThrottle));
        t.add_intra_edge(i(TbnVar::UBrake), i(TbnVar::ABrake));
        t.add_intra_edge(i(TbnVar::USteer), i(TbnVar::ASteer));
        // Inter-slice: actuation moves the vehicle; the world persists.
        t.add_inter_edge(i(TbnVar::MV), i(TbnVar::MV));
        t.add_inter_edge(i(TbnVar::AThrottle), i(TbnVar::MV));
        t.add_inter_edge(i(TbnVar::ABrake), i(TbnVar::MV));
        t.add_inter_edge(i(TbnVar::MV), i(TbnVar::MA));
        t.add_inter_edge(i(TbnVar::AThrottle), i(TbnVar::MA));
        t.add_inter_edge(i(TbnVar::ABrake), i(TbnVar::MA));
        t.add_inter_edge(i(TbnVar::WDist), i(TbnVar::WDist));
        t.add_inter_edge(i(TbnVar::WSpeed), i(TbnVar::WDist));
        t.add_inter_edge(i(TbnVar::MV), i(TbnVar::WDist));
        t.add_inter_edge(i(TbnVar::WSpeed), i(TbnVar::WSpeed));
        t.add_inter_edge(i(TbnVar::AThrottle), i(TbnVar::AThrottle));
        t.add_inter_edge(i(TbnVar::ABrake), i(TbnVar::ABrake));
        t.add_inter_edge(i(TbnVar::ASteer), i(TbnVar::ASteer));
        t
    }

    /// [`TbnModel::fit_with`] with kinematic augmentation enabled (the
    /// paper's design: CPDs of kinematic state variables are derived
    /// from the vehicle kinematics model, §III-B).
    ///
    /// # Errors
    ///
    /// See [`TbnModel::fit_with`].
    pub fn fit(traces: &[Trace], bins: usize) -> Result<Self, BayesError> {
        Self::fit_with(traces, bins, true)
    }

    /// Fits the 3-TBN from the golden traces persisted in a
    /// trace-logging store directory (see
    /// [`drivefi_store::open_store_with_traces`]) — the resumable form
    /// of [`TbnModel::fit`]: an interrupted mining pipeline re-fits from
    /// disk instead of re-simulating its golden runs. Persisted frames
    /// round-trip every `f64` bit-exactly, so the fitted model is
    /// identical to one fitted from the in-memory traces.
    ///
    /// # Errors
    ///
    /// Returns a [`drivefi_store::StoreError`] when the store cannot be
    /// read (or holds incomplete traces) and wraps model-fitting
    /// failures in the same error type.
    pub fn fit_from_store(
        dir: impl AsRef<std::path::Path>,
        bins: usize,
        kinematic_augmentation: bool,
    ) -> Result<Self, drivefi_store::StoreError> {
        let (_, traces) = drivefi_store::read_traces(dir)?;
        Self::fit_with(&traces, bins, kinematic_augmentation).map_err(|e| {
            drivefi_store::StoreError::new(format!("fitting 3-TBN from persisted traces: {e}"))
        })
    }

    /// Fits discretizers and CPDs from golden traces.
    ///
    /// Golden runs never exercise off-nominal actuation (a healthy
    /// planner does not command full throttle toward a close lead), so
    /// purely data-driven CPTs would leave the very rows that
    /// interventions hit at their uniform prior. With
    /// `kinematic_augmentation`, the fit adds synthetic transitions
    /// computed from the one-scene vehicle kinematics — exactly the
    /// paper's "integrating domain knowledge in the form of vehicle
    /// kinematics" — covering the full actuation grid.
    ///
    /// # Errors
    ///
    /// Propagates CPT validation failures (which indicate a bug, since
    /// the structure is fixed and acyclic).
    ///
    /// # Panics
    ///
    /// Panics if `traces` contain no frames.
    pub fn fit_with(
        traces: &[Trace],
        bins: usize,
        kinematic_augmentation: bool,
    ) -> Result<Self, BayesError> {
        // 1. Discretizers from all observed (Some) values.
        let mut discretizers = Vec::with_capacity(10);
        for var in TbnVar::ALL {
            let data: Vec<f64> = traces
                .iter()
                .flat_map(|t| t.frames.iter())
                .filter_map(|f| var.extract(f))
                .collect();
            assert!(!data.is_empty(), "no training data for {}", var.name());
            discretizers.push(Discretizer::fit(&data, bins));
        }

        // 2. Cardinalities (+1 no-lead category for W vars).
        let mut cards = [0usize; 10];
        for (k, var) in TbnVar::ALL.iter().enumerate() {
            cards[k] = discretizers[k].bins() + usize::from(var.has_no_lead());
        }

        // 3. Unroll and fit.
        let template = Self::template(&cards);
        let (mut net, ids, structure) = template.unroll(3);
        let model = TbnModel { net: BayesNet::new(), ids: ids.clone(), discretizers, bins };

        let mut rows: Vec<Vec<usize>> = Vec::new();
        for trace in traces {
            for window in trace.frames.windows(3) {
                let mut row = vec![0usize; net.len()];
                for (slice, frame) in window.iter().enumerate() {
                    let obs = model.observe(frame);
                    for (k, var) in TbnVar::ALL.iter().enumerate() {
                        let card = cards[k];
                        let cat = if obs[k] == NO_LEAD { card - 1 } else { obs[k] };
                        row[ids[slice][var.index()].0] = cat;
                    }
                }
                rows.push(row);
            }
        }
        if kinematic_augmentation {
            // The synthetic transitions inform only the *kinematic* CPDs
            // (how M and W evolve given actuation) — the *behavioral*
            // CPDs (what the planner/controller command given the world,
            // i.e. P(U|W,M) and P(A|U)) must come from golden behavior
            // alone, or the synthetic grid would dilute them to uniform
            // and the forecasts of the ego's reaction would be garbage.
            let ids_ref = &ids;
            let kinematic_children: Vec<VarId> = (0..3)
                .flat_map(|slice| {
                    [TbnVar::MV, TbnVar::MA, TbnVar::WDist, TbnVar::WSpeed]
                        .into_iter()
                        .map(move |v| ids_ref[slice][v.index()])
                })
                .collect();
            let (kin_structure, beh_structure): (Vec<_>, Vec<_>) =
                structure.into_iter().partition(|(child, _)| kinematic_children.contains(child));
            fit_cpts(&mut net, &beh_structure, &rows, 1.0)?;
            let mut aug_rows = rows;
            aug_rows.extend(model.kinematic_rows(&ids, &cards));
            fit_cpts(&mut net, &kin_structure, &aug_rows, 1.0)?;
        } else {
            fit_cpts(&mut net, &structure, &rows, 1.0)?;
        }
        Ok(TbnModel { net, ..model })
    }

    /// Synthetic one-scene transitions over the full
    /// (speed × throttle × brake × lead) grid, computed from the vehicle
    /// kinematics: `v' = v + a·Δt`, `gap' = gap + (v_lead − v)·Δt`, with
    /// `a = ζ·a_max − b·a_dec − drag·v`. One row per grid point.
    fn kinematic_rows(&self, ids: &[Vec<VarId>], cards: &[usize; 10]) -> Vec<Vec<usize>> {
        const SCENE_DT: f64 = 4.0 / 30.0;
        let params = drivefi_kinematics::VehicleParams::default();
        let n_net: usize = ids.iter().map(|s| s.len()).sum();
        let rep = |var: TbnVar, cat: usize| self.representative(var, cat);

        let mut rows = Vec::new();
        let v_bins = self.discretizers[TbnVar::MV.index()].bins();
        let thr_bins = self.discretizers[TbnVar::AThrottle.index()].bins();
        let brk_bins = self.discretizers[TbnVar::ABrake.index()].bins();
        let gap_cards = cards[TbnVar::WDist.index()];
        let ws_cards = cards[TbnVar::WSpeed.index()];
        let no_gap = gap_cards - 1;
        let no_ws = ws_cards - 1;
        let steer_cat = self.category_of(TbnVar::ASteer, 0.0);

        for v_cat in 0..v_bins {
            let v = rep(TbnVar::MV, v_cat).expect("speed bin");
            for thr_cat in 0..thr_bins {
                let thr = rep(TbnVar::AThrottle, thr_cat).expect("throttle bin");
                for brk_cat in 0..brk_bins {
                    let brk = rep(TbnVar::ABrake, brk_cat).expect("brake bin");
                    let accel = thr * params.max_accel - brk * params.max_decel - params.drag * v;
                    let v2 = (v + accel * SCENE_DT).clamp(0.0, params.max_speed);
                    for gap_cat in (0..gap_cards).step_by(1) {
                        // Pair each gap with a representative lead speed
                        // sweep; no-lead pairs only with no-lead.
                        let ws_iter: Vec<usize> = if gap_cat == no_gap {
                            vec![no_ws]
                        } else {
                            (0..ws_cards - 1).collect()
                        };
                        for ws_cat in ws_iter {
                            let (gap2_cat, ws2_cat) = if gap_cat == no_gap {
                                (no_gap, no_ws)
                            } else {
                                let gap = rep(TbnVar::WDist, gap_cat).expect("gap bin");
                                let ws = rep(TbnVar::WSpeed, ws_cat).expect("lead speed bin");
                                let gap2 = (gap + (ws - v) * SCENE_DT).max(0.0);
                                (self.category_of(TbnVar::WDist, gap2), ws_cat)
                            };
                            let a_cat = self.category_of(TbnVar::MA, accel);
                            let v2_cat = self.category_of(TbnVar::MV, v2);
                            // U channels have their own discretizers
                            // (possibly different bin counts than the A
                            // channels) — map through continuous values.
                            let u_thr_cat = self.category_of(TbnVar::UThrottle, thr);
                            let u_brk_cat = self.category_of(TbnVar::UBrake, brk);
                            let u_steer_cat = self.category_of(TbnVar::USteer, 0.0);

                            let mut row = vec![0usize; n_net];
                            let mut set = |slice: usize, var: TbnVar, cat: usize| {
                                row[ids[slice][var.index()].0] = cat;
                            };
                            for slice in 0..3 {
                                set(slice, TbnVar::WDist, gap_cat);
                                set(slice, TbnVar::WSpeed, ws_cat);
                                set(slice, TbnVar::MV, v_cat);
                                set(slice, TbnVar::MA, a_cat);
                                set(slice, TbnVar::UThrottle, u_thr_cat);
                                set(slice, TbnVar::UBrake, u_brk_cat);
                                set(slice, TbnVar::USteer, u_steer_cat);
                                set(slice, TbnVar::AThrottle, thr_cat);
                                set(slice, TbnVar::ABrake, brk_cat);
                                set(slice, TbnVar::ASteer, steer_cat);
                            }
                            set(2, TbnVar::WDist, gap2_cat);
                            set(2, TbnVar::WSpeed, ws2_cat);
                            set(2, TbnVar::MV, v2_cat);
                            rows.push(row);
                        }
                    }
                }
            }
        }
        rows
    }

    /// Number of quantile bins per continuous variable.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Discretizes one frame record into per-variable categories
    /// ([`NO_LEAD`] marks an absent lead object).
    pub fn observe(&self, f: &FrameRecord) -> SceneObs {
        let mut obs = [0usize; 10];
        for (k, var) in TbnVar::ALL.iter().enumerate() {
            obs[k] = match var.extract(f) {
                Some(v) => self.discretizers[k].transform(v),
                None => NO_LEAD,
            };
        }
        obs
    }

    /// The network category for a variable given a raw (continuous)
    /// value.
    pub fn category_of(&self, var: TbnVar, value: f64) -> usize {
        self.discretizers[var.index()].transform(value)
    }

    /// The no-lead network category of a lead variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable has no no-lead category.
    pub fn no_lead_category(&self, var: TbnVar) -> usize {
        assert!(var.has_no_lead(), "{} has no no-lead category", var.name());
        self.discretizers[var.index()].bins()
    }

    /// Converts a network category back to a representative continuous
    /// value; `None` for the no-lead category.
    pub fn representative(&self, var: TbnVar, category: usize) -> Option<f64> {
        let d = &self.discretizers[var.index()];
        (category < d.bins()).then(|| d.representative(category))
    }

    /// The network id of `var` in `slice`.
    pub fn id(&self, slice: usize, var: TbnVar) -> VarId {
        self.ids[slice][var.index()]
    }

    /// The network category for an observation entry (maps [`NO_LEAD`]
    /// to the last category).
    pub fn obs_category(&self, var: TbnVar, obs: &SceneObs) -> usize {
        let raw = obs[var.index()];
        if raw == NO_LEAD {
            self.no_lead_category(var)
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_golden_traces;
    use drivefi_sim::SimConfig;
    use drivefi_world::ScenarioSuite;

    fn small_model() -> (TbnModel, Vec<Trace>) {
        let suite = ScenarioSuite::generate(8, 42);
        let traces = collect_golden_traces(&SimConfig::default(), &suite, 8);
        let model = TbnModel::fit(&traces, 6).unwrap();
        (model, traces)
    }

    #[test]
    fn model_fits_and_has_30_nodes() {
        let (model, _) = small_model();
        assert_eq!(model.net.len(), 30);
        assert_eq!(model.ids.len(), 3);
    }

    #[test]
    fn observation_round_trip() {
        let (model, traces) = small_model();
        let frame = &traces[1].frames[100];
        let obs = model.observe(frame);
        // The m_v category must map back near the observed speed.
        let cat = obs[TbnVar::MV.index()];
        let rep = model.representative(TbnVar::MV, cat).unwrap();
        assert!((rep - frame.imu_speed).abs() < 6.0, "rep {rep} vs {}", frame.imu_speed);
    }

    #[test]
    fn no_lead_category_is_last() {
        let (model, traces) = small_model();
        // free_drive (scenario 0) has no lead: w_dist must be NO_LEAD.
        let obs = model.observe(&traces[0].frames[50]);
        assert_eq!(obs[TbnVar::WDist.index()], NO_LEAD);
        assert_eq!(model.obs_category(TbnVar::WDist, &obs), model.no_lead_category(TbnVar::WDist));
        assert!(model
            .representative(TbnVar::WDist, model.no_lead_category(TbnVar::WDist))
            .is_none());
    }

    #[test]
    fn learned_dynamics_predict_speed_persistence() {
        use drivefi_bayes::Evidence;
        let (model, traces) = small_model();
        // Evidence: two slices of a steady cruise scene; the MAP of
        // m_v@2 should be the same category (speed persists).
        let f = &traces[1].frames;
        let mid = f.len() / 2;
        let mut ev = Evidence::new();
        for (slice, frame) in [&f[mid], &f[mid + 1]].iter().enumerate() {
            let obs = model.observe(frame);
            for var in TbnVar::ALL {
                ev.insert(model.id(slice, var), model.obs_category(var, &obs));
            }
        }
        let map = model.net.map_category(model.id(2, TbnVar::MV), &ev, &Evidence::new()).unwrap();
        let expected = model.obs_category(TbnVar::MV, &model.observe(&f[mid + 2]));
        assert!(
            (map as i64 - expected as i64).abs() <= 1,
            "m_v@2 MAP {map} far from observed {expected}"
        );
    }

    #[test]
    fn throttle_intervention_raises_predicted_speed() {
        use drivefi_bayes::Evidence;
        let (model, traces) = small_model();
        let f = &traces[1].frames;
        let mid = f.len() / 2;
        let mut ev = Evidence::new();
        // Observe slice 0 fully and slice 1 partially (upstream of A).
        let obs0 = model.observe(&f[mid]);
        for var in TbnVar::ALL {
            ev.insert(model.id(0, var), model.obs_category(var, &obs0));
        }
        let obs1 = model.observe(&f[mid + 1]);
        for var in [TbnVar::WDist, TbnVar::WSpeed, TbnVar::MV, TbnVar::MA] {
            ev.insert(model.id(1, var), model.obs_category(var, &obs1));
        }
        let base = model.net.posterior(model.id(2, TbnVar::MV), &ev).unwrap();
        // do(A_throttle@1 = max category, A_brake@1 = 0)
        let max_thr = model.category_of(TbnVar::AThrottle, 1.0);
        let min_brk = model.category_of(TbnVar::ABrake, 0.0);
        let interventions = Evidence::from([
            (model.id(1, TbnVar::AThrottle), max_thr),
            (model.id(1, TbnVar::ABrake), min_brk),
        ]);
        let forced = model.net.posterior_do(model.id(2, TbnVar::MV), &ev, &interventions).unwrap();
        // Expected speed under full throttle ≥ baseline.
        let mean = |p: &[f64]| -> f64 {
            p.iter()
                .enumerate()
                .map(|(c, pr)| pr * model.representative(TbnVar::MV, c).unwrap_or(0.0))
                .sum()
        };
        assert!(
            mean(&forced) >= mean(&base) - 0.2,
            "full throttle lowered expected speed: {} vs {}",
            mean(&forced),
            mean(&base)
        );
    }
}
