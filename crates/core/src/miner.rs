//! The Bayesian fault-selection engine (paper §III-B).

use crate::tbn::{SceneObs, TbnModel, TbnVar};
use drivefi_ads::Signal;
use drivefi_bayes::{BayesError, Evidence};
use drivefi_fault::ScalarFaultModel;
use drivefi_sim::Trace;
use std::collections::HashMap;

/// Miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Quantile bins per continuous variable.
    pub bins: usize,
    /// Augment CPD training with kinematics-derived transitions (the
    /// paper's domain-knowledge integration; disable only for the
    /// ablation bench).
    pub kinematic_augmentation: bool,
    /// Evaluate every `scene_stride`-th eligible scene (1 = all).
    pub scene_stride: usize,
    /// A candidate joins `F_crit` when `δ̂_do(f) ≤ delta_threshold`.
    pub delta_threshold: f64,
    /// Longitudinal comfort margin `d_safe,min` \[m\].
    pub margin_lon: f64,
    /// Lateral comfort margin \[m\].
    pub margin_lat: f64,
    /// Assumed braking deceleration \[m/s²\] (matches the hazard monitor).
    pub brake_decel: f64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            bins: 6,
            kinematic_augmentation: true,
            scene_stride: 1,
            delta_threshold: 0.0,
            margin_lon: 2.0,
            margin_lat: 0.3,
            brake_decel: 8.0,
        }
    }
}

/// The BN's forecast of the final-actuation triple at the faulted slice:
/// what reaches the vehicle interface while the corruption is live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseForecast {
    /// Final throttle `A_t` \[0, 1\].
    pub throttle: f64,
    /// Final brake `A_t` \[0, 1\].
    pub brake: f64,
    /// Final steering `A_t` \[rad\].
    pub steering: f64,
}

/// A candidate fault evaluated by the miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateFault {
    /// Scenario the scene belongs to.
    pub scenario_id: u32,
    /// Scene (7.5 Hz frame) index at which the fault is injected.
    pub scene: u64,
    /// Target signal.
    pub signal: Signal,
    /// Corruption (min or max stuck value, paper fault model *b*).
    pub model: ScalarFaultModel,
    /// Ground-truth δ (min of both axes) at the scene in the golden run.
    pub golden_delta: f64,
    /// The counterfactual `δ̂_do(f)` inferred through the 3-TBN.
    pub predicted_delta: f64,
}

impl CandidateFault {
    /// The validation-time [`drivefi_fault::FaultSpec`]: this candidate's
    /// corruption held for the [`crate::report::VALIDATION_WINDOW_SCENES`]
    /// injection window at its mined scene. Validation and the
    /// exhaustive ground-truth comparison both compile (and key) their
    /// faults through this spec, so the two judge the exact same fault.
    pub fn fault_spec(&self) -> drivefi_fault::FaultSpec {
        drivefi_fault::FaultSpec {
            kind: drivefi_fault::FaultKind::Scalar { signal: self.signal, model: self.model },
            window: drivefi_fault::WindowSpec::burst(
                self.scene,
                crate::report::VALIDATION_WINDOW_SCENES,
            ),
        }
    }
}

/// A mined fault together with its validation outcome.
#[derive(Debug, Clone)]
pub struct MinedFault {
    /// The candidate as mined.
    pub candidate: CandidateFault,
    /// Outcome of the real injection run.
    pub outcome: drivefi_sim::Outcome,
}

/// The signals the 3-TBN models, with their template variables. Signals
/// outside this list remain available to the random campaigns but are
/// not mined:
///
/// * pose position/heading — the pose plausibility gate (production
///   localization monitoring) rejects implausible jumps, so min/max
///   corruptions there are masked by construction;
/// * `ImuSpeed`/`ImuAccel` — the same gate bounds per-tick speed jumps,
///   making gross `M_t` corruptions unreachable.
///
/// Mining only the reachable fault surface mirrors the paper, which
/// mines the variables its BN models and its injector can land.
pub const MINED_SIGNALS: [(Signal, TbnVar); 8] = [
    (Signal::LeadDistance, TbnVar::WDist),
    (Signal::LeadSpeed, TbnVar::WSpeed),
    (Signal::RawThrottle, TbnVar::UThrottle),
    (Signal::RawBrake, TbnVar::UBrake),
    (Signal::RawSteering, TbnVar::USteer),
    (Signal::FinalThrottle, TbnVar::AThrottle),
    (Signal::FinalBrake, TbnVar::ABrake),
    (Signal::FinalSteering, TbnVar::ASteer),
];

/// Intra-slice descendants of each template variable (hand-derived from
/// the Fig. 6 topology): when we intervene on a slice-1 variable, its
/// slice-1 descendants must not be clamped to golden evidence — the fault
/// changes them.
fn intra_descendants(var: TbnVar) -> &'static [TbnVar] {
    use TbnVar::*;
    match var {
        WDist | WSpeed => &[UThrottle, UBrake, AThrottle, ABrake],
        MV => &[UThrottle, UBrake, USteer, AThrottle, ABrake, ASteer],
        MA => &[],
        UThrottle => &[AThrottle],
        UBrake => &[ABrake],
        USteer => &[ASteer],
        AThrottle | ABrake | ASteer => &[],
    }
}

/// The continuous value of `signal` recorded in a trace frame, when the
/// trace captures that signal.
fn recorded_value(frame: &drivefi_sim::FrameRecord, signal: Signal) -> Option<f64> {
    match signal {
        Signal::LeadDistance => frame.lead_distance,
        Signal::LeadSpeed => frame.lead_speed,
        Signal::RawThrottle => Some(frame.raw_cmd.throttle),
        Signal::RawBrake => Some(frame.raw_cmd.brake),
        Signal::RawSteering => Some(frame.raw_cmd.steering),
        Signal::FinalThrottle => Some(frame.final_cmd.throttle),
        Signal::FinalBrake => Some(frame.final_cmd.brake),
        Signal::FinalSteering => Some(frame.final_cmd.steering),
        _ => None,
    }
}

/// The Bayesian miner: a fitted 3-TBN plus the counterfactual machinery.
#[derive(Debug, Clone)]
pub struct BayesianMiner {
    model: TbnModel,
    config: MinerConfig,
}

impl BayesianMiner {
    /// Fits the 3-TBN from golden traces.
    ///
    /// # Errors
    ///
    /// Propagates model-fitting failures.
    pub fn fit(traces: &[Trace], config: MinerConfig) -> Result<Self, BayesError> {
        let model = TbnModel::fit_with(traces, config.bins, config.kinematic_augmentation)?;
        Ok(BayesianMiner { model, config })
    }

    /// Fits the miner from the golden traces persisted in a
    /// trace-logging store (see [`TbnModel::fit_from_store`]), returning
    /// the loaded traces alongside so the caller can mine without
    /// re-reading the store. The fitted miner — and therefore the mined
    /// `F_crit` — is identical to one fitted from the same traces in
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns a [`drivefi_store::StoreError`] on store I/O failure,
    /// incomplete traces, or a (bug-indicating) model-fit failure.
    pub fn fit_from_store(
        dir: impl AsRef<std::path::Path>,
        config: MinerConfig,
    ) -> Result<(Self, Vec<Trace>), drivefi_store::StoreError> {
        let (_, traces) = drivefi_store::read_traces(dir)?;
        let miner = Self::fit(&traces, config).map_err(|e| {
            drivefi_store::StoreError::new(format!("fitting 3-TBN from persisted traces: {e}"))
        })?;
        Ok((miner, traces))
    }

    /// The fitted model.
    pub fn model(&self) -> &TbnModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Builds the evidence for slices 0 and 1 given an intervention on
    /// `intervened` in slice 1.
    fn evidence_for(&self, obs0: &SceneObs, obs1: &SceneObs, intervened: TbnVar) -> Evidence {
        let mut ev = Evidence::new();
        for var in TbnVar::ALL {
            ev.insert(self.model.id(0, var), self.model.obs_category(var, obs0));
        }
        let blocked = intra_descendants(intervened);
        for var in TbnVar::ALL {
            if var == intervened || blocked.contains(&var) {
                continue;
            }
            ev.insert(self.model.id(1, var), self.model.obs_category(var, obs1));
        }
        ev
    }

    /// The BN's forecast of the ADS's *within-period response* to a held
    /// fault: the final-actuation triple of the faulted slice under
    /// `do(var@1 = category)` — how the controller output reacts while
    /// the corruption is live (the generic analog of the paper's Eq. 2,
    /// with the kinematic reconstruction left to
    /// [`BayesianMiner::delta_hat_from_forecast`]).
    ///
    /// The BN is deliberately **not** asked for the post-fault world
    /// state: a corrupted perception variable changes the ADS's beliefs
    /// and hence its actuation, but not the physical obstacles.
    ///
    /// Uses the joint MAP over all unobserved variables (one max-product
    /// elimination pass).
    ///
    /// # Errors
    ///
    /// Propagates inference failures (which indicate a model bug).
    pub fn forecast(
        &self,
        obs0: &SceneObs,
        obs1: &SceneObs,
        var: TbnVar,
        category: usize,
    ) -> Result<ResponseForecast, BayesError> {
        let ev = self.evidence_for(obs0, obs1, var);
        let interventions = Evidence::from([(self.model.id(1, var), category)]);
        let map = self.model.net.map_assignment(&ev, &interventions)?;
        let rep1 =
            |v: TbnVar| self.model.representative(v, map[&self.model.id(1, v)]).unwrap_or(0.0);
        Ok(ResponseForecast {
            throttle: rep1(TbnVar::AThrottle),
            brake: rep1(TbnVar::ABrake),
            steering: rep1(TbnVar::ASteer),
        })
    }

    /// Computes `δ̂_do(f)` for the scene recorded in `frame`, given the
    /// BN-forecast actuation response — the paper's "speculating forward
    /// in time to after the fault has been injected, recomputing `d_stop`
    /// under the fault" (§III-B).
    ///
    /// The speculation horizon equals the validation injection window
    /// ([`crate::report::VALIDATION_WINDOW_SCENES`] scenes, the Example-1
    /// persistence): the faulted actuation is held for the window, the
    /// vehicle kinematics integrate it (procedure `P`), the lead (if
    /// any) continues at its ground-truth speed, and the emergency-stop
    /// criteria evaluated at the end of the window produce the
    /// counterfactual safety potential. Forecasting the same horizon the
    /// validator injects is what makes δ̂ commensurable with the real
    /// outcome.
    pub fn delta_hat_from_forecast(
        &self,
        frame: &drivefi_sim::FrameRecord,
        response: &ResponseForecast,
    ) -> f64 {
        const SCENE_DT: f64 = 4.0 / 30.0;
        let window = crate::report::VALIDATION_WINDOW_SCENES as f64;
        let horizon = window * SCENE_DT;
        let params = drivefi_kinematics::VehicleParams::default();

        // Longitudinal: the held actuation determines acceleration.
        let v0 = frame.ego.v;
        let throttle = response.throttle.clamp(0.0, 1.0);
        let brake = response.brake.clamp(0.0, 1.0);
        let a_lon = throttle * params.max_accel - brake * params.max_decel - params.drag * v0;
        let v_end = (v0 + a_lon * horizon).clamp(0.0, params.max_speed);
        let v_avg = 0.5 * (v0 + v_end);

        let d_safe = match frame.lead_distance {
            Some(gap) => {
                let lead_v = frame.lead_speed.unwrap_or(0.0).max(0.0);
                let gap_end = (gap + (lead_v - v_avg) * horizon).max(0.0);
                gap_end + lead_v * lead_v / (2.0 * self.config.brake_decel)
            }
            None => 200.0,
        };
        let d_stop = v_end * v_end / (2.0 * self.config.brake_decel);
        let delta_lon = d_safe - self.config.margin_lon - d_stop;

        // Lateral axis: a centered vehicle has ~0.9 m of lane clearance.
        // The held steering — bounded by the vehicle interface's
        // speed-dependent envelope — accrues lateral drift over the
        // window, on top of the terminal lateral arrest distance.
        let steer_limit = drivefi_kinematics::BicycleModel::new(params).steer_limit(v_avg);
        let phi = response.steering.clamp(-steer_limit, steer_limit);
        let a_lat = (v_avg * v_avg * phi.tan() / params.wheelbase).clamp(
            -drivefi_kinematics::SafetyPotential::MAX_STEER_LATERAL_ACCEL,
            drivefi_kinematics::SafetyPotential::MAX_STEER_LATERAL_ACCEL,
        );
        let drift = 0.5 * a_lat.abs() * horizon * horizon;
        let theta_end = if v_avg > 1e-6 { a_lat * horizon / v_avg } else { 0.0 };
        let state = drivefi_kinematics::VehicleState::new(0.0, 0.0, v_end, theta_end, phi);
        let lat_stop =
            drivefi_kinematics::SafetyPotential::lateral_stop_distance(&params, &state, 0.0);
        let delta_lat = 0.9 - self.config.margin_lat - drift - lat_stop;

        delta_lon.min(delta_lat)
    }

    /// True when [`BayesianMiner::apply_exact_value`] replaces a channel
    /// for this signal.
    fn overrides_exact(signal: Signal) -> bool {
        matches!(
            signal,
            Signal::FinalThrottle
                | Signal::FinalBrake
                | Signal::FinalSteering
                | Signal::RawSteering
        )
    }

    /// The exact-value override for the forecast response: when the
    /// corrupted signal *is* (or envelope-binds) a final-actuation
    /// channel, the injected continuous value is known exactly and beats
    /// the bin representative (a median of golden values, which for
    /// steering never approaches the injected extreme — golden runs
    /// steer millirads).
    fn apply_exact_value(signal: Signal, value: f64, response: &mut ResponseForecast) {
        match signal {
            Signal::FinalThrottle => response.throttle = value,
            Signal::FinalBrake => response.brake = value,
            // The controller's envelope clamp means a held raw steering
            // command binds at the same speed-dependent limit the final
            // channel does, so the exact value is faithful for both.
            Signal::FinalSteering | Signal::RawSteering => response.steering = value,
            _ => {}
        }
    }

    /// Convenience: forecast + exact-value override + reconstruction in
    /// one call, for the fault `signal:model` at the scene of `frame`.
    ///
    /// # Errors
    ///
    /// Propagates inference failures.
    pub fn delta_hat(
        &self,
        frame: &drivefi_sim::FrameRecord,
        obs0: &SceneObs,
        obs1: &SceneObs,
        signal: Signal,
        model: ScalarFaultModel,
    ) -> Result<f64, BayesError> {
        let var = MINED_SIGNALS
            .iter()
            .find(|(s, _)| *s == signal)
            .map(|(_, v)| *v)
            .expect("signal is mined");
        let value = model.apply(0.0, signal.range());
        let category = self.model.category_of(var, value);
        let mut response = self.forecast(obs0, obs1, var, category)?;
        Self::apply_exact_value(signal, value, &mut response);
        Ok(self.delta_hat_from_forecast(frame, &response))
    }

    /// The candidate list for one trace: every eligible scene × mined
    /// signal × {min, max}. Eligible scenes are those with positive
    /// golden δ (Eq. 1's pre-condition) and enough scenario left for the
    /// fault to play out — the injection window plus the recovery
    /// transient (a fault injected into the final seconds of a scenario
    /// is censored, not masked, and the paper's scenes all had full
    /// scenario remaining). Faults on lead-object signals are only
    /// candidates when a lead object exists — corrupting a variable that
    /// holds no live value is a no-op (the injector would write
    /// nothing).
    pub fn candidates<'t>(
        &self,
        trace: &'t Trace,
    ) -> impl Iterator<Item = (usize, Signal, TbnVar, ScalarFaultModel)> + 't {
        let stride = self.config.scene_stride.max(1);
        let n = trace.frames.len();
        let tail = (3 * crate::report::VALIDATION_WINDOW_SCENES) as usize;
        trace
            .frames
            .iter()
            .enumerate()
            .skip(1)
            .step_by(stride)
            .filter(move |(k, f)| *k + tail < n && f.delta_true.is_safe())
            .flat_map(|(k, f)| {
                let has_lead = f.lead_distance.is_some();
                MINED_SIGNALS
                    .into_iter()
                    .filter(move |(_, var)| has_lead || !var.has_no_lead())
                    .flat_map(move |(sig, var)| {
                        [
                            (k, sig, var, ScalarFaultModel::StuckMin),
                            (k, sig, var, ScalarFaultModel::StuckMax),
                        ]
                    })
            })
    }

    /// Mines the critical set `F_crit` over golden traces (Eq. 1):
    /// candidates whose counterfactual δ̂ falls at or below the
    /// threshold. Results are sorted by ascending δ̂ (most critical
    /// first).
    ///
    /// Counterfactual queries are memoized on the discretized evidence,
    /// which collapses the (highly repetitive) scene corpus to a few
    /// thousand distinct inferences — this is what makes Bayesian FI fast
    /// enough to beat exhaustive injection by orders of magnitude.
    pub fn mine(&self, traces: &[Trace]) -> Vec<CandidateFault> {
        let mut cache: HashMap<(SceneObs, SceneObs, usize, usize), ResponseForecast> =
            HashMap::new();
        let mut out = Vec::new();
        for trace in traces {
            for (k, signal, var, model) in self.candidates(trace) {
                let value = match model {
                    ScalarFaultModel::StuckMin => signal.range().min,
                    ScalarFaultModel::StuckMax => signal.range().max,
                    other => {
                        debug_assert!(false, "unexpected mining model {other:?}");
                        continue;
                    }
                };
                let category = self.model.category_of(var, value);
                let obs0 = self.model.observe(&trace.frames[k - 1]);
                let obs1 = self.model.observe(&trace.frames[k]);
                // Skip true no-ops. For exact-override channels that
                // means the injected value equals the recorded one; for
                // the rest, bin identity (the forecast cannot change).
                if Self::overrides_exact(signal) {
                    if let Some(r) = recorded_value(&trace.frames[k], signal) {
                        if (r - value).abs() < 1e-9 {
                            continue;
                        }
                    }
                } else if self.model.obs_category(var, &obs1) == category {
                    continue;
                }
                let mut response =
                    *cache.entry((obs0, obs1, var.index(), category)).or_insert_with(|| {
                        self.forecast(&obs0, &obs1, var, category)
                            .expect("inference on fitted model")
                    });
                Self::apply_exact_value(signal, value, &mut response);
                let delta_hat = self.delta_hat_from_forecast(&trace.frames[k], &response);
                if delta_hat <= self.config.delta_threshold {
                    out.push(CandidateFault {
                        scenario_id: trace.scenario_id,
                        scene: trace.frames[k].scene,
                        signal,
                        model,
                        golden_delta: trace.frames[k]
                            .delta_true
                            .longitudinal
                            .min(trace.frames[k].delta_true.lateral),
                        predicted_delta: delta_hat,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            a.predicted_delta.partial_cmp(&b.predicted_delta).expect("finite deltas")
        });
        out
    }

    /// The counterfactual δ̂ for **every** candidate over the traces, in
    /// [`crate::exhaustive::candidate_specs`] order — the unfiltered
    /// sibling of [`BayesianMiner::mine`], for acquisition loops that
    /// need a prediction per candidate rather than only the critical
    /// set. `predictions[i].fault_spec()` is exactly
    /// `candidate_specs(miner, traces)[i].1`, so the two enumerations
    /// index the same job space.
    ///
    /// Candidates [`BayesianMiner::mine`] skips as true no-ops (the
    /// injected value equals the recorded one, or the bin cannot change)
    /// keep their golden δ: injecting them would leave the run — and so
    /// its safety margin — unchanged.
    pub fn predict_deltas(&self, traces: &[Trace]) -> Vec<CandidateFault> {
        let mut cache: HashMap<(SceneObs, SceneObs, usize, usize), ResponseForecast> =
            HashMap::new();
        let mut out = Vec::new();
        for trace in traces {
            for (k, signal, var, model) in self.candidates(trace) {
                let value = match model {
                    ScalarFaultModel::StuckMin => signal.range().min,
                    ScalarFaultModel::StuckMax => signal.range().max,
                    other => {
                        debug_assert!(false, "unexpected mining model {other:?}");
                        continue;
                    }
                };
                let golden_delta =
                    trace.frames[k].delta_true.longitudinal.min(trace.frames[k].delta_true.lateral);
                let category = self.model.category_of(var, value);
                let obs0 = self.model.observe(&trace.frames[k - 1]);
                let obs1 = self.model.observe(&trace.frames[k]);
                // Same no-op test as mine(): exact-override channels
                // compare injected to recorded values, the rest compare
                // bins. A no-op's forecast is the golden margin itself.
                let noop = if Self::overrides_exact(signal) {
                    recorded_value(&trace.frames[k], signal)
                        .is_some_and(|r| (r - value).abs() < 1e-9)
                } else {
                    self.model.obs_category(var, &obs1) == category
                };
                let predicted_delta = if noop {
                    golden_delta
                } else {
                    let mut response =
                        *cache.entry((obs0, obs1, var.index(), category)).or_insert_with(|| {
                            self.forecast(&obs0, &obs1, var, category)
                                .expect("inference on fitted model")
                        });
                    Self::apply_exact_value(signal, value, &mut response);
                    self.delta_hat_from_forecast(&trace.frames[k], &response)
                };
                out.push(CandidateFault {
                    scenario_id: trace.scenario_id,
                    scene: trace.frames[k].scene,
                    signal,
                    model,
                    golden_delta,
                    predicted_delta,
                });
            }
        }
        out
    }

    /// Total number of candidate faults over the traces — the size of
    /// the exhaustive campaign the miner replaces (paper: 98 400).
    pub fn candidate_count(&self, traces: &[Trace]) -> usize {
        traces.iter().map(|t| self.candidates(t).count()).sum()
    }

    /// [`BayesianMiner::mine`] fanned out over `workers` threads (one
    /// trace shard per worker task, each with its own memo cache), via
    /// the workspace's central fan-out primitive
    /// ([`drivefi_sim::parallel_map`]). Results are identical to the
    /// serial version up to ordering, and are returned sorted the same
    /// way.
    pub fn mine_parallel(&self, traces: &[Trace], workers: usize) -> Vec<CandidateFault> {
        let shards =
            drivefi_sim::parallel_map(traces.iter().map(std::slice::from_ref), workers, |shard| {
                self.mine(shard)
            });
        let mut out: Vec<CandidateFault> = shards.into_iter().flatten().collect();
        out.sort_by(|a, b| {
            a.predicted_delta.partial_cmp(&b.predicted_delta).expect("finite deltas")
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_golden_traces;
    use drivefi_sim::SimConfig;
    use drivefi_world::ScenarioSuite;

    fn miner() -> (BayesianMiner, Vec<Trace>) {
        let suite = ScenarioSuite::generate(8, 42);
        let traces = collect_golden_traces(&SimConfig::default(), &suite, 8);
        let config = MinerConfig { scene_stride: 10, ..MinerConfig::default() };
        (BayesianMiner::fit(&traces, config).unwrap(), traces)
    }

    #[test]
    fn candidate_enumeration_counts() {
        let (m, traces) = miner();
        let n = m.candidate_count(&traces);
        // 8 scenarios × ~30 sampled scenes × 10 signals × 2 values,
        // minus no-lead scenes for lead signals and unsafe scenes.
        assert!(n > 200, "n = {n}");
        assert!(n < 8 * 31 * 20, "n = {n}");
    }

    #[test]
    fn brake_min_throttle_max_is_predicted_worse_than_golden() {
        let (m, traces) = miner();
        // In a car-following trace, do(A_brake = 0) + evidence should
        // never *improve* δ̂ relative to do(A_brake = max).
        let t = &traces[2];
        let mid = t.frames.len() / 2;
        let frame = &t.frames[mid];
        let obs0 = m.model.observe(&t.frames[mid - 1]);
        let obs1 = m.model.observe(frame);
        let brake_min = m
            .delta_hat(frame, &obs0, &obs1, Signal::FinalBrake, ScalarFaultModel::StuckMin)
            .unwrap();
        let brake_max = m
            .delta_hat(frame, &obs0, &obs1, Signal::FinalBrake, ScalarFaultModel::StuckMax)
            .unwrap();
        assert!(
            brake_min < brake_max,
            "no braking ({brake_min}) should forecast tighter than full braking ({brake_max})"
        );
    }

    #[test]
    fn perception_underestimate_faults_are_not_mined() {
        // A min-distance perception fault makes the ADS *brake* — the
        // ego response forecast must not call that hazardous.
        let (m, traces) = miner();
        let trace = traces
            .iter()
            .find(|t| t.frames.iter().any(|f| f.lead_distance.is_some()))
            .expect("a trace with a lead");
        let k = trace.frames.iter().position(|f| f.lead_distance.is_some()).unwrap().max(1);
        let frame = &trace.frames[k];
        let obs0 = m.model.observe(&trace.frames[k - 1]);
        let obs1 = m.model.observe(frame);
        let cat = m.model.category_of(TbnVar::WDist, 0.0);
        if m.model.obs_category(TbnVar::WDist, &obs1) == cat {
            return; // already in the lowest bin — nothing to intervene
        }
        let dh = m
            .delta_hat(frame, &obs0, &obs1, Signal::LeadDistance, ScalarFaultModel::StuckMin)
            .unwrap();
        let golden = frame.delta_true.longitudinal;
        assert!(
            dh >= golden.min(0.0) - 3.0,
            "phantom-braking fault predicted catastrophic: δ̂ = {dh}, golden = {golden}"
        );
    }

    #[test]
    fn fit_from_store_mines_the_same_critical_set() {
        // Persist golden traces through the store, re-fit from disk, and
        // compare the mined F_crit candidate-for-candidate: the trace
        // log round-trips every f64 bit-exactly, so nothing may drift.
        let suite = ScenarioSuite::generate(4, 42);
        let sim = SimConfig::default();
        let traces = collect_golden_traces(&sim, &suite, 4);
        let config = MinerConfig { scene_stride: 12, ..MinerConfig::default() };
        let in_memory = BayesianMiner::fit(&traces, config).unwrap();

        let dir = std::env::temp_dir().join(format!("drivefi-fitstore-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (mut writer, _) =
            drivefi_store::open_store_with_traces(&dir, 1, traces.len() as u64, 2, 64).unwrap();
        for (job, trace) in traces.iter().enumerate() {
            for frame in &trace.frames {
                writer
                    .append_trace(&drivefi_store::TraceRecord {
                        job: job as u64,
                        scenario_id: trace.scenario_id,
                        scenario_seed: suite.scenarios[job].seed,
                        frame: *frame,
                    })
                    .unwrap();
            }
            writer
                .append(&drivefi_store::CampaignRecord {
                    job: job as u64,
                    scenario_id: trace.scenario_id,
                    scenario_seed: suite.scenarios[job].seed,
                    fault: None,
                    outcome: drivefi_sim::Outcome::Safe,
                    injections: 0,
                    scenes: trace.frames.len() as u64,
                    min_delta_lon: 1.0,
                    min_delta_lat: 1.0,
                })
                .unwrap();
        }
        assert!(writer.finish().unwrap().complete);

        let (from_store, loaded) = BayesianMiner::fit_from_store(&dir, config).unwrap();
        assert_eq!(loaded, traces, "persisted traces round-trip bit-exactly");
        assert_eq!(
            in_memory.candidate_count(&traces),
            from_store.candidate_count(&loaded),
            "candidate enumeration drifted through the store"
        );
        assert_eq!(
            in_memory.mine(&traces),
            from_store.mine(&loaded),
            "mined F_crit drifted through the store"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mining_returns_sorted_critical_set() {
        let (m, traces) = miner();
        let crit = m.mine(&traces);
        for w in crit.windows(2) {
            assert!(w[0].predicted_delta <= w[1].predicted_delta);
        }
        for c in &crit {
            assert!(c.golden_delta > 0.0, "Eq. 1 pre-condition violated");
            assert!(c.predicted_delta <= 0.0);
        }
    }

    #[test]
    fn steering_faults_shrink_lateral_forecast() {
        let (m, traces) = miner();
        let t = &traces[2];
        let mid = t.frames.len() / 2;
        let frame = &t.frames[mid];
        let obs0 = m.model.observe(&t.frames[mid - 1]);
        let obs1 = m.model.observe(frame);
        // Hard-right steering pinned at the controller output: the
        // forecast δ must shrink relative to a centered command (the
        // lateral-acceleration interlock keeps the one-step effect
        // bounded, so it need not go negative).
        let hard = m
            .delta_hat(frame, &obs0, &obs1, Signal::FinalSteering, ScalarFaultModel::StuckMax)
            .unwrap();
        assert!(hard < 0.7, "hard steer fault predicted harmless: {hard}");
    }
}
