//! The **situation library** — the paper's proposed downstream use of
//! Bayesian FI results (§I): "Combining results from a range of fault
//! injection experiments to create a library of situations will help
//! manufacturers to develop rules and conditions for AV testing and safe
//! driving."
//!
//! A [`Situation`] summarizes one validated safety-critical scene: the
//! driving context (speeds, gaps, δ) plus the set of faults that turn it
//! hazardous. The library renders to CSV/markdown for test-plan authors.

use crate::miner::MinedFault;
use drivefi_sim::Trace;
use std::collections::BTreeMap;

/// One safety-critical situation mined and validated by DriveFI.
#[derive(Debug, Clone)]
pub struct Situation {
    /// Scenario id.
    pub scenario_id: u32,
    /// Scenario family name.
    pub scenario_name: String,
    /// Scene index within the scenario.
    pub scene: u64,
    /// Ego speed at the scene \[m/s\].
    pub ego_speed: f64,
    /// Perceived lead gap, if any \[m\].
    pub lead_gap: Option<f64>,
    /// Golden ground-truth δ_lon at the scene \[m\].
    pub golden_delta: f64,
    /// Fault names validated hazardous at this scene.
    pub hazardous_faults: Vec<String>,
    /// Whether any validated fault collided (vs hazard only).
    pub collision: bool,
}

/// A library of validated critical situations.
#[derive(Debug, Clone, Default)]
pub struct SituationLibrary {
    /// Situations, ordered by (scenario, scene).
    pub situations: Vec<Situation>,
}

impl SituationLibrary {
    /// Builds the library from validation results and the golden traces
    /// (for the scene context). `names[scenario_id]` supplies family
    /// names.
    pub fn build(mined: &[MinedFault], golden: &[Trace], names: &[String]) -> Self {
        let mut by_scene: BTreeMap<(u32, u64), Situation> = BTreeMap::new();
        for m in mined {
            if !m.outcome.is_hazardous() {
                continue;
            }
            let c = m.candidate;
            let entry = by_scene.entry((c.scenario_id, c.scene)).or_insert_with(|| {
                let frame = golden
                    .iter()
                    .find(|t| t.scenario_id == c.scenario_id)
                    .and_then(|t| t.frames.get(c.scene as usize));
                Situation {
                    scenario_id: c.scenario_id,
                    scenario_name: names
                        .get(c.scenario_id as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("scenario{}", c.scenario_id)),
                    scene: c.scene,
                    ego_speed: frame.map_or(f64::NAN, |f| f.ego.v),
                    lead_gap: frame.and_then(|f| f.lead_distance),
                    golden_delta: c.golden_delta,
                    hazardous_faults: Vec::new(),
                    collision: false,
                }
            });
            let name = format!("{}:{}", c.signal.name(), c.model.name());
            if !entry.hazardous_faults.contains(&name) {
                entry.hazardous_faults.push(name);
            }
            entry.collision |= m.outcome.is_collision();
        }
        SituationLibrary { situations: by_scene.into_values().collect() }
    }

    /// Number of distinct critical scenes (the paper's "68 of 7 200").
    pub fn len(&self) -> usize {
        self.situations.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.situations.is_empty()
    }

    /// CSV rendering for test-plan tooling.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario_id,scenario,scene,ego_speed,lead_gap,golden_delta,collision,hazardous_faults\n",
        );
        for s in &self.situations {
            out.push_str(&format!(
                "{},{},{},{:.2},{},{:.2},{},{}\n",
                s.scenario_id,
                s.scenario_name,
                s.scene,
                s.ego_speed,
                s.lead_gap.map_or(String::new(), |g| format!("{g:.1}")),
                s.golden_delta,
                s.collision,
                s.hazardous_faults.join(";"),
            ));
        }
        out
    }

    /// Markdown table for reports.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| scenario | scene | ego v [m/s] | lead gap [m] | golden δ [m] | faults |\n\
             |----------|-------|-------------|--------------|--------------|--------|\n",
        );
        for s in &self.situations {
            out.push_str(&format!(
                "| {} | {} | {:.1} | {} | {:.1} | {} |\n",
                s.scenario_name,
                s.scene,
                s.ego_speed,
                s.lead_gap.map_or(String::from("—"), |g| format!("{g:.0}")),
                s.golden_delta,
                s.hazardous_faults.join(", "),
            ));
        }
        out
    }

    /// Derives per-fault **test rules** — the paper's proposed end
    /// product ("develop rules and conditions for AV testing and safe
    /// driving"): for each fault class, the envelope of driving
    /// conditions over which it validated as hazardous. A rule reads as
    /// *"when ego speed ∈ [a, b] and lead gap ∈ [c, d] and golden δ ∈
    /// [e, f], fault X is safety-critical — cover this region in track
    /// testing / runtime monitoring."*
    pub fn derive_rules(&self) -> Vec<TestRule> {
        let mut by_fault: BTreeMap<&str, TestRule> = BTreeMap::new();
        for s in &self.situations {
            for fault in &s.hazardous_faults {
                let rule = by_fault.entry(fault).or_insert_with(|| TestRule {
                    fault: fault.clone(),
                    situations: 0,
                    speed: (f64::INFINITY, f64::NEG_INFINITY),
                    lead_gap: None,
                    golden_delta: (f64::INFINITY, f64::NEG_INFINITY),
                    collisions: 0,
                });
                rule.situations += 1;
                if s.ego_speed.is_finite() {
                    rule.speed.0 = rule.speed.0.min(s.ego_speed);
                    rule.speed.1 = rule.speed.1.max(s.ego_speed);
                }
                if let Some(gap) = s.lead_gap {
                    let slot = rule.lead_gap.get_or_insert((f64::INFINITY, f64::NEG_INFINITY));
                    slot.0 = slot.0.min(gap);
                    slot.1 = slot.1.max(gap);
                }
                rule.golden_delta.0 = rule.golden_delta.0.min(s.golden_delta);
                rule.golden_delta.1 = rule.golden_delta.1.max(s.golden_delta);
                if s.collision {
                    rule.collisions += 1;
                }
            }
        }
        let mut rules: Vec<TestRule> = by_fault.into_values().collect();
        rules.sort_by_key(|r| std::cmp::Reverse(r.situations));
        rules
    }
}

/// A testing rule derived from the situation library: the driving-
/// condition envelope over which one fault class validated as hazardous.
#[derive(Debug, Clone, PartialEq)]
pub struct TestRule {
    /// Fault name (`signal:model`).
    pub fault: String,
    /// Number of validated critical situations backing the rule.
    pub situations: usize,
    /// Ego-speed envelope \[m/s\] (min, max).
    pub speed: (f64, f64),
    /// Lead-gap envelope \[m\], when any backing situation had a lead.
    pub lead_gap: Option<(f64, f64)>,
    /// Golden-δ envelope \[m\] (min, max).
    pub golden_delta: (f64, f64),
    /// Backing situations that ended in collision (vs hazard only).
    pub collisions: usize,
}

impl TestRule {
    /// One-line condition rendering for test plans.
    pub fn condition(&self) -> String {
        let gap = match self.lead_gap {
            Some((lo, hi)) => format!(" ∧ lead gap ∈ [{lo:.0}, {hi:.0}] m"),
            None => String::new(),
        };
        format!(
            "v ∈ [{:.1}, {:.1}] m/s{gap} ∧ δ ∈ [{:.1}, {:.1}] m ⇒ {} critical ({} situations, {} collisions)",
            self.speed.0, self.speed.1, self.golden_delta.0, self.golden_delta.1,
            self.fault, self.situations, self.collisions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::CandidateFault;
    use drivefi_ads::Signal;
    use drivefi_fault::ScalarFaultModel;
    use drivefi_sim::Outcome;

    fn mined(scenario: u32, scene: u64, signal: Signal, outcome: Outcome) -> MinedFault {
        MinedFault {
            candidate: CandidateFault {
                scenario_id: scenario,
                scene,
                signal,
                model: ScalarFaultModel::StuckMax,
                golden_delta: 3.0,
                predicted_delta: -1.0,
            },
            outcome,
        }
    }

    #[test]
    fn groups_faults_by_scene() {
        let items = vec![
            mined(0, 10, Signal::RawThrottle, Outcome::Hazard { scene: 11 }),
            mined(0, 10, Signal::FinalBrake, Outcome::Collision { scene: 12, actor: 1 }),
            mined(0, 20, Signal::RawThrottle, Outcome::Hazard { scene: 21 }),
            mined(0, 30, Signal::RawThrottle, Outcome::Safe), // not hazardous → dropped
        ];
        let lib = SituationLibrary::build(&items, &[], &["cut_in".into()]);
        assert_eq!(lib.len(), 2);
        let s = &lib.situations[0];
        assert_eq!(s.scene, 10);
        assert_eq!(s.hazardous_faults.len(), 2);
        assert!(s.collision);
        assert!(!lib.situations[1].collision);
    }

    #[test]
    fn renders_csv_and_markdown() {
        let items = vec![mined(0, 10, Signal::RawThrottle, Outcome::Hazard { scene: 11 })];
        let lib = SituationLibrary::build(&items, &[], &["cut_in".into()]);
        let csv = lib.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("cut_in"));
        let md = lib.to_markdown();
        assert!(md.contains("| cut_in | 10 |"));
    }

    #[test]
    fn duplicate_fault_names_are_deduped() {
        let items = vec![
            mined(0, 10, Signal::RawThrottle, Outcome::Hazard { scene: 11 }),
            mined(0, 10, Signal::RawThrottle, Outcome::Hazard { scene: 12 }),
        ];
        let lib = SituationLibrary::build(&items, &[], &[]);
        assert_eq!(lib.situations[0].hazardous_faults.len(), 1);
        assert_eq!(lib.situations[0].scenario_name, "scenario0");
    }

    #[test]
    fn rules_envelope_backing_situations() {
        let lib = SituationLibrary {
            situations: vec![
                Situation {
                    scenario_id: 0,
                    scenario_name: "cut_in".into(),
                    scene: 10,
                    ego_speed: 30.0,
                    lead_gap: Some(15.0),
                    golden_delta: 2.0,
                    hazardous_faults: vec!["plan.throttle:max".into()],
                    collision: true,
                },
                Situation {
                    scenario_id: 1,
                    scenario_name: "cut_in".into(),
                    scene: 40,
                    ego_speed: 26.0,
                    lead_gap: Some(22.0),
                    golden_delta: 5.0,
                    hazardous_faults: vec!["plan.throttle:max".into(), "ctrl.steering:max".into()],
                    collision: false,
                },
            ],
        };
        let rules = lib.derive_rules();
        assert_eq!(rules.len(), 2);
        // Sorted by backing count: throttle rule (2 situations) first.
        let throttle = &rules[0];
        assert_eq!(throttle.fault, "plan.throttle:max");
        assert_eq!(throttle.situations, 2);
        assert_eq!(throttle.speed, (26.0, 30.0));
        assert_eq!(throttle.lead_gap, Some((15.0, 22.0)));
        assert_eq!(throttle.golden_delta, (2.0, 5.0));
        assert_eq!(throttle.collisions, 1);
        let cond = throttle.condition();
        assert!(cond.contains("v ∈ [26.0, 30.0]"));
        assert!(cond.contains("plan.throttle:max"));
    }

    #[test]
    fn rules_without_leads_omit_gap() {
        let lib = SituationLibrary {
            situations: vec![Situation {
                scenario_id: 0,
                scenario_name: "free_drive".into(),
                scene: 5,
                ego_speed: 33.0,
                lead_gap: None,
                golden_delta: 80.0,
                hazardous_faults: vec!["ctrl.steering:min".into()],
                collision: false,
            }],
        };
        let rules = lib.derive_rules();
        assert_eq!(rules[0].lead_gap, None);
        assert!(!rules[0].condition().contains("lead gap"));
    }

    #[test]
    fn empty_library_yields_no_rules() {
        assert!(SituationLibrary::default().derive_rules().is_empty());
    }
}
