//! Validation of mined faults and campaign accounting.

use crate::miner::{CandidateFault, MinedFault};
use drivefi_sim::{CampaignEngine, CampaignJob, Collector, SimConfig};
use drivefi_world::ScenarioSuite;
use std::collections::BTreeSet;
use std::time::Duration;

/// Statistics of validating a mined critical set by real injection.
#[derive(Debug, Clone)]
pub struct ValidationStats {
    /// Every mined fault with its real-injection outcome.
    pub mined: Vec<MinedFault>,
    /// Mined faults that manifested as hazards or collisions
    /// (paper: 460 of 561).
    pub manifested: usize,
    /// Collisions among those.
    pub collisions: usize,
    /// Distinct safety-critical (scenario, scene) pairs
    /// (paper: 68 of 7 200 scenes).
    pub critical_scenes: BTreeSet<(u32, u64)>,
    /// Wall-clock spent validating.
    pub wall_clock: Duration,
}

impl ValidationStats {
    /// Precision of the miner: manifested / mined.
    pub fn precision(&self) -> f64 {
        if self.mined.is_empty() {
            0.0
        } else {
            self.manifested as f64 / self.mined.len() as f64
        }
    }
}

/// Number of scenes a corrupted variable persists during validation.
/// The paper's Example-1 throttle corruption persisted long enough for
/// the vehicle to commit past recoverability (the EV "velocity is high
/// enough that braking, even with a_max, is not able to prevent an
/// accident"); six scenes (0.8 s) at the 7.5 Hz scene clock matches that
/// commitment latency. This is also the miner's speculation horizon, so
/// forecast and validation judge the same fault.
pub const VALIDATION_WINDOW_SCENES: u64 = 6;

/// Re-simulates every mined candidate with the actual injector (fault
/// model *b* mechanics, a [`VALIDATION_WINDOW_SCENES`]-scene window at
/// the mined scene) and classifies outcomes.
pub fn validate_candidates(
    sim: &SimConfig,
    suite: &ScenarioSuite,
    candidates: &[CandidateFault],
    workers: usize,
) -> ValidationStats {
    let start = std::time::Instant::now();
    let engine = CampaignEngine::new(*sim).with_workers(workers);
    let mut collector = Collector::new();
    let shared = suite.shared();
    let jobs = candidates.iter().enumerate().map(|(i, c)| CampaignJob {
        id: i as u64,
        scenario: std::sync::Arc::clone(&shared[c.scenario_id as usize]),
        faults: vec![c.fault_spec().compile()],
    });
    engine.run(jobs, &mut collector);
    let results = collector.into_results();

    let mut mined = Vec::with_capacity(candidates.len());
    let mut manifested = 0;
    let mut collisions = 0;
    let mut critical_scenes = BTreeSet::new();
    for (c, r) in candidates.iter().zip(results) {
        if r.report.outcome.is_hazardous() {
            manifested += 1;
            critical_scenes.insert((c.scenario_id, c.scene));
            if r.report.outcome.is_collision() {
                collisions += 1;
            }
        }
        mined.push(MinedFault { candidate: *c, outcome: r.report.outcome });
    }
    ValidationStats { mined, manifested, collisions, critical_scenes, wall_clock: start.elapsed() }
}

/// The acceleration accounting of experiment E4 (paper: 98 400 candidate
/// faults, 615 days exhaustive vs < 4 h Bayesian → 3 690×).
#[derive(Debug, Clone, Copy)]
pub struct AccelerationReport {
    /// Size of the exhaustive candidate pool.
    pub candidate_pool: usize,
    /// Measured average wall-clock per simulated injection run.
    pub avg_sim_time: Duration,
    /// Wall-clock of golden collection + model fit + mining.
    pub mining_time: Duration,
    /// Wall-clock of validating the mined set.
    pub validation_time: Duration,
    /// Number of mined faults.
    pub mined_faults: usize,
}

impl AccelerationReport {
    /// Estimated cost of exhaustively simulating the candidate pool.
    pub fn exhaustive_time(&self) -> Duration {
        self.avg_sim_time.mul_f64(self.candidate_pool as f64)
    }

    /// Total cost of the Bayesian approach.
    pub fn bayesian_time(&self) -> Duration {
        self.mining_time + self.validation_time
    }

    /// The acceleration factor (exhaustive / Bayesian).
    pub fn acceleration(&self) -> f64 {
        let b = self.bayesian_time().as_secs_f64();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.exhaustive_time().as_secs_f64() / b
        }
    }

    /// One-line summary row.
    pub fn summary(&self) -> String {
        format!(
            "pool={} exhaustive={:.1?} bayesian={:.1?} mined={} acceleration={:.0}x",
            self.candidate_pool,
            self.exhaustive_time(),
            self.bayesian_time(),
            self.mined_faults,
            self.acceleration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::Signal;
    use drivefi_fault::ScalarFaultModel;

    #[test]
    fn acceleration_arithmetic() {
        let r = AccelerationReport {
            candidate_pool: 98_400,
            avg_sim_time: Duration::from_millis(540),
            mining_time: Duration::from_secs(10),
            validation_time: Duration::from_secs(4),
            mined_faults: 561,
        };
        assert!((r.exhaustive_time().as_secs_f64() - 53_136.0).abs() < 1.0);
        assert!((r.acceleration() - 53_136.0 / 14.0).abs() < 1.0);
        assert!(r.summary().contains("acceleration"));
    }

    #[test]
    fn validation_of_a_known_lethal_fault() {
        // A permanent... rather, a single-scene max-throttle fault at the
        // cut-in knife edge must manifest; a no-op scene far from traffic
        // must not.
        let suite = ScenarioSuite::generate(8, 42);
        let sim = SimConfig::default();
        // Find the cut-in scenario (family index 3).
        let cut_in_id = suite.scenarios.iter().find(|s| s.name == "cut_in").map(|s| s.id).unwrap();
        // Golden trace tells us where δ is tight.
        let traces = crate::collect_golden_traces(&sim, &suite, 8);
        let tight_scene = traces[cut_in_id as usize]
            .frames
            .iter()
            .min_by(|a, b| {
                a.delta_true.longitudinal.partial_cmp(&b.delta_true.longitudinal).unwrap()
            })
            .map(|f| f.scene)
            .unwrap();
        let candidates = vec![CandidateFault {
            scenario_id: cut_in_id,
            // Inject a few scenes *before* the squeeze so the extra
            // speed carries into it.
            scene: tight_scene.saturating_sub(8),
            signal: Signal::FinalBrake,
            model: ScalarFaultModel::StuckMin,
            golden_delta: 2.0,
            predicted_delta: -1.0,
        }];
        let stats = validate_candidates(&sim, &suite, &candidates, 4);
        assert_eq!(stats.mined.len(), 1);
        // (The single-scene brake-suppression may or may not manifest —
        // what must hold is coherent accounting.)
        assert_eq!(
            stats.manifested + stats.mined.iter().filter(|m| m.outcome.is_safe()).count(),
            1
        );
    }
}
