//! Posterior-guided candidate acquisition: which faults to inject next.
//!
//! The miner's δ̂ ranks candidates by *predicted* severity, but a ranking
//! alone over-commits to the model: the TBN is fitted on golden traces
//! only, so its forecasts are exactly wrong where they are most
//! interesting. The acquisition loop treats injection outcomes as
//! evidence instead — candidates are pooled into groups of like
//! predictions (same signal, same corruption model, same δ̂ severity
//! bin), each group carries a Beta posterior over its hazard
//! probability seeded from the miner's forecast, and every validated
//! outcome sharpens it. The score of a candidate is its group's
//! posterior hazard mean plus an exploration bonus proportional to the
//! expected information gain of one more observation — so the loop
//! exploits groups known to produce hazards while still paying for
//! observations that teach it the most (a Bayesian
//! exploration/exploitation trade, the paper's "the fitted network
//! tells you where to inject next" closed into a feedback loop).
//!
//! Everything here is deterministic: group ids come from a sorted map,
//! scores are pure arithmetic over the posterior state, and ties break
//! by candidate index — so an interrupted acquisition campaign replays
//! its picks exactly.

use crate::miner::CandidateFault;
use std::collections::BTreeMap;

/// Scoring knobs of the acquisition loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionConfig {
    /// Weight of the expected-information-gain exploration bonus
    /// relative to the posterior hazard mean.
    pub explore_weight: f64,
    /// Pseudo-observation count of each group's Beta prior (how much
    /// real evidence it takes to overrule the miner's forecast).
    pub prior_strength: f64,
    /// Length scale \[m\] of the δ̂ → prior-hazard-probability squash:
    /// smaller = sharper trust in the sign of the predicted margin.
    pub delta_scale: f64,
}

impl Default for AcquisitionConfig {
    fn default() -> Self {
        AcquisitionConfig { explore_weight: 0.5, prior_strength: 2.0, delta_scale: 1.0 }
    }
}

/// The severity bin of a predicted margin: candidates forecast to
/// violate safety (δ̂ ≤ 0) pool separately from near-misses and from
/// comfortably-safe forecasts, so one group's outcomes only speak for
/// like predictions.
fn delta_bin(delta_hat: f64) -> usize {
    if delta_hat <= 0.0 {
        0
    } else if delta_hat <= 1.0 {
        1
    } else if delta_hat <= 3.0 {
        2
    } else {
        3
    }
}

/// One group's Beta posterior over its hazard probability.
#[derive(Debug, Clone, Copy)]
struct Posterior {
    alpha: f64,
    beta: f64,
}

impl Posterior {
    fn mean(self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Expected information gain (in nats) about the group's hazard
    /// probability from one more observed injection:
    /// `I(X; θ) = h(E[θ]) − E[h(θ)]` with `h` the binary entropy, the
    /// Beta expectation in closed form via the digamma function.
    fn info_gain(self) -> f64 {
        let Posterior { alpha, beta } = self;
        let mu = self.mean();
        let expected_entropy = digamma(alpha + beta + 1.0)
            - mu * digamma(alpha + 1.0)
            - (1.0 - mu) * digamma(beta + 1.0);
        binary_entropy(mu) - expected_entropy
    }
}

/// Binary entropy in nats; 0 at the (unreachable for a Beta mean)
/// endpoints.
fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.ln()) - (1.0 - p) * (1.0 - p).ln()
}

/// Digamma ψ(x) for x > 0: recurrence ψ(x) = ψ(x+1) − 1/x to push the
/// argument past 10 (where the truncated asymptotic series is good to
/// ~4e-11), then the series itself — plenty for the ≤ 1e-10 absolute
/// error this scoring needs, with no special-function dependency.
fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma needs a positive argument");
    let mut acc = 0.0;
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0)))
}

/// Deterministic hazard-information scorer over a fixed candidate list
/// (one [`CandidateFault`] prediction per candidate, in
/// [`crate::exhaustive::candidate_specs`] order).
#[derive(Debug, Clone)]
pub struct CandidateScorer {
    config: AcquisitionConfig,
    /// Candidate index → group index.
    group_of: Vec<usize>,
    /// Group label, `"signal:model:binN"` (sorted, so ids are stable).
    labels: Vec<String>,
    posteriors: Vec<Posterior>,
}

impl CandidateScorer {
    /// Builds the scorer: groups the predictions by
    /// `(signal, model, δ̂ bin)` and seeds each group's Beta prior from
    /// the group's mean predicted margin — a margin well below zero
    /// squashes to a hazard probability near 1, a comfortable margin to
    /// near 0, with `prior_strength` pseudo-observations either way.
    pub fn new(predictions: &[CandidateFault], config: AcquisitionConfig) -> CandidateScorer {
        let mut keyed: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        let key = |p: &CandidateFault| {
            format!("{}:{}:bin{}", p.signal.name(), p.model.name(), delta_bin(p.predicted_delta))
        };
        for p in predictions {
            let entry = keyed.entry(key(p)).or_insert((0.0, 0));
            entry.0 += p.predicted_delta;
            entry.1 += 1;
        }
        let labels: Vec<String> = keyed.keys().cloned().collect();
        let posteriors: Vec<Posterior> = keyed
            .values()
            .map(|&(delta_sum, n)| {
                let mean_delta = delta_sum / n as f64;
                // Logistic squash of the predicted margin: δ̂ ≤ 0 means
                // "the model expects a violation".
                let p0 = (1.0 / (1.0 + (mean_delta / config.delta_scale).exp())).clamp(0.01, 0.99);
                Posterior {
                    alpha: p0 * config.prior_strength,
                    beta: (1.0 - p0) * config.prior_strength,
                }
            })
            .collect();
        let index_of: BTreeMap<&str, usize> =
            labels.iter().enumerate().map(|(i, l)| (l.as_str(), i)).collect();
        let group_of = predictions.iter().map(|p| index_of[key(p).as_str()]).collect();
        CandidateScorer { config, group_of, labels, posteriors }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.labels.len()
    }

    /// Group labels, in group-index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Folds one observed injection outcome into the candidate's group
    /// posterior.
    pub fn observe(&mut self, candidate: usize, hazardous: bool) {
        let p = &mut self.posteriors[self.group_of[candidate]];
        if hazardous {
            p.alpha += 1.0;
        } else {
            p.beta += 1.0;
        }
    }

    /// The posterior hazard mean of a candidate's group.
    pub fn hazard_mean(&self, candidate: usize) -> f64 {
        self.posteriors[self.group_of[candidate]].mean()
    }

    /// The acquisition score: posterior hazard mean plus the weighted
    /// expected information gain of observing this candidate's group
    /// once more.
    pub fn score(&self, candidate: usize) -> f64 {
        let p = self.posteriors[self.group_of[candidate]];
        p.mean() + self.config.explore_weight * p.info_gain()
    }

    /// Per-group posterior hazard means, in group-index order — the
    /// convergence signal: when one more round of observations no
    /// longer moves any group's mean, the loop has learned what it can.
    pub fn posterior_means(&self) -> Vec<f64> {
        self.posteriors.iter().map(|p| p.mean()).collect()
    }

    /// Selects the top-`k` unexplored candidates by score, ties broken
    /// by candidate index — deterministic, so an interrupted campaign
    /// re-selects the same batch on resume.
    pub fn select(&self, explored: &[bool], k: usize) -> Vec<usize> {
        let mut ranked: Vec<(usize, f64)> = (0..self.group_of.len())
            .filter(|&i| !explored[i])
            .map(|i| (i, self.score(i)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("finite scores").then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked.into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::Signal;
    use drivefi_fault::ScalarFaultModel;

    fn prediction(signal: Signal, model: ScalarFaultModel, delta: f64) -> CandidateFault {
        CandidateFault {
            scenario_id: 0,
            scene: 10,
            signal,
            model,
            golden_delta: 5.0,
            predicted_delta: delta,
        }
    }

    fn tiny_predictions() -> Vec<CandidateFault> {
        vec![
            prediction(Signal::FinalBrake, ScalarFaultModel::StuckMin, -2.0),
            prediction(Signal::FinalBrake, ScalarFaultModel::StuckMin, -1.0),
            prediction(Signal::FinalThrottle, ScalarFaultModel::StuckMax, 0.5),
            prediction(Signal::FinalThrottle, ScalarFaultModel::StuckMax, 4.0),
        ]
    }

    #[test]
    fn digamma_matches_reference_values() {
        // ψ(1) = −γ, ψ(2) = 1 − γ, ψ(1/2) = −γ − 2 ln 2.
        const GAMMA: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + GAMMA).abs() < 1e-10);
        assert!((digamma(2.0) - (1.0 - GAMMA)).abs() < 1e-10);
        assert!((digamma(0.5) + GAMMA + 2.0 * f64::ln(2.0)).abs() < 1e-10);
    }

    #[test]
    fn groups_pool_like_predictions_and_priors_follow_deltas() {
        let scorer = CandidateScorer::new(&tiny_predictions(), AcquisitionConfig::default());
        // (brake:min:bin0), (throttle:max:bin1), (throttle:max:bin3).
        assert_eq!(scorer.group_count(), 3);
        assert_eq!(scorer.group_of[0], scorer.group_of[1]);
        assert_ne!(scorer.group_of[2], scorer.group_of[3]);
        // Violating forecasts seed a higher hazard prior than safe ones.
        assert!(scorer.hazard_mean(0) > scorer.hazard_mean(2));
        assert!(scorer.hazard_mean(2) > scorer.hazard_mean(3));
    }

    #[test]
    fn observations_move_the_posterior_and_selection_is_deterministic() {
        let mut scorer = CandidateScorer::new(&tiny_predictions(), AcquisitionConfig::default());
        let before = scorer.hazard_mean(2);
        scorer.observe(2, true);
        assert!(scorer.hazard_mean(2) > before, "a hazard raises the group mean");
        let mut explored = vec![false; 4];
        let first = scorer.select(&explored, 2);
        assert_eq!(first, scorer.select(&explored, 2), "selection is a pure function");
        explored[first[0]] = true;
        let next = scorer.select(&explored, 4);
        assert!(!next.contains(&first[0]), "explored candidates are never re-picked");
        assert_eq!(next.len(), 3);
    }

    #[test]
    fn information_gain_shrinks_as_a_group_saturates() {
        let mut scorer = CandidateScorer::new(&tiny_predictions(), AcquisitionConfig::default());
        let p0 = scorer.posteriors[scorer.group_of[0]];
        let fresh_gain = p0.info_gain();
        assert!(fresh_gain > 0.0);
        for _ in 0..50 {
            scorer.observe(0, true);
        }
        let saturated_gain = scorer.posteriors[scorer.group_of[0]].info_gain();
        assert!(
            saturated_gain < fresh_gain / 5.0,
            "50 consistent observations should exhaust most of the information: \
             {fresh_gain} → {saturated_gain}"
        );
    }
}
