//! DriveFI: Bayesian fault injection for autonomous vehicles.
//!
//! This crate is the paper's primary contribution (§III): an ML-based
//! fault-selection engine that mines the *(scene, fault)* pairs most
//! likely to violate AV safety, orders of magnitude faster than running
//! every candidate through the simulator.
//!
//! The pipeline:
//!
//! 1. **Golden runs** ([`collect_golden_traces`]) drive every scenario
//!    fault-free and record per-scene traces of the ADS variables
//!    (`W_t`, `M_t`, `U_A,t`, `A_t`) and the ground-truth δ.
//! 2. **Model fitting** ([`TbnModel::fit`]) discretizes the traces and
//!    learns the CPDs of a 3-slice temporal Bayesian network whose
//!    topology mirrors the ADS architecture (paper Fig. 6).
//! 3. **Mining** ([`BayesianMiner`]) treats each candidate fault as a
//!    Pearl intervention `do(f)` on the middle slice, infers the
//!    maximum-likelihood next-slice kinematic state `M̂_{t+1}` (Eq. 2),
//!    reconstructs δ̂ through the emergency-stop procedure, and keeps the
//!    faults with `δ > 0 ∧ δ̂_do(f) ≤ 0` — the critical set `F_crit`
//!    (Eq. 1).
//! 4. **Validation** ([`validate_candidates`]) re-simulates each mined
//!    fault with the real injector and classifies outcomes, and
//!    [`random_output_campaign`] provides the random-FI baseline the
//!    paper compares against.
//!
//! # Example
//!
//! ```no_run
//! use drivefi_core::{collect_golden_traces, BayesianMiner, MinerConfig};
//! use drivefi_sim::SimConfig;
//! use drivefi_world::ScenarioSuite;
//!
//! let suite = ScenarioSuite::paper_suite(2026);
//! let golden = collect_golden_traces(&SimConfig::default(), &suite, 8);
//! let miner = BayesianMiner::fit(&golden, MinerConfig::default()).unwrap();
//! let critical = miner.mine(&golden);
//! println!("|F_crit| = {}", critical.len());
//! ```

pub mod acquisition;
pub mod exhaustive;
pub mod golden;
pub mod miner;
pub mod random;
pub mod report;
pub mod situations;
pub mod tbn;

pub use acquisition::{AcquisitionConfig, CandidateScorer};
pub use exhaustive::{
    candidate_record_metas, candidate_specs, exhaustive_comparison, ExhaustiveReport,
};
pub use golden::{collect_golden_traces, golden_record_metas};
pub use miner::{BayesianMiner, CandidateFault, MinedFault, MinerConfig};
pub use random::{
    pick_record_metas, random_fault_picks, random_output_campaign, random_space_campaign,
    RandomCampaignConfig, RandomCampaignStats,
};
pub use report::{validate_candidates, AccelerationReport, ValidationStats};
pub use situations::{Situation, SituationLibrary, TestRule};
pub use tbn::{SceneObs, TbnModel, TbnVar, NO_LEAD};
