//! A per-stage tick profiler for the simulation hot path.
//!
//! The profiler attributes wall-clock time to the pipeline stages of a
//! simulation tick (sensing, localization, perception, planning,
//! control, vehicle dynamics, world sweep, scene evaluation). It is
//! **off by default** and costs a single cached branch per probe when
//! disabled, so the instrumentation can live permanently in the hot
//! loop. Enable it with the environment variable `DRIVEFI_PROFILE=1`
//! (or programmatically with [`enable`]) and read the accumulated
//! numbers with [`report`]; [`emit_json`] appends one JSONL line per
//! stage to the file named by `DRIVEFI_BENCH_JSON`, the same channel
//! the bench harness uses.
//!
//! Counters are global atomics: campaign worker threads all accumulate
//! into the same table, so a whole campaign profiles with zero plumbing.
//! The accounting is additive nanoseconds per stage — cross-stage
//! ordering is not recorded, which is exactly enough to answer "where
//! does the tick time go".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One profiled phase of a simulation tick.
///
/// The first five mirror the ADS pipeline stages on the bus; the rest
/// cover the simulation work around the stack (ego dynamics, the world
/// actor sweep, scene-rate evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TickPhase {
    /// Sensor sampling (`SensorSuite::sample_into`).
    Sense,
    /// Pose estimation + plausibility gate.
    Localization,
    /// Detection transform + tracker fusion.
    Perception,
    /// Planner recompute (skipped ticks still count the probe).
    Planning,
    /// Actuation smoothing, envelope clamp, watchdog.
    Control,
    /// Ego vehicle dynamics integration.
    Vehicle,
    /// World actor sweep (`World::step` / SoA batch sweep).
    World,
    /// Scene-rate outcome evaluation.
    Eval,
}

impl TickPhase {
    /// Every phase, in pipeline order.
    pub const ALL: [TickPhase; 8] = [
        TickPhase::Sense,
        TickPhase::Localization,
        TickPhase::Perception,
        TickPhase::Planning,
        TickPhase::Control,
        TickPhase::Vehicle,
        TickPhase::World,
        TickPhase::Eval,
    ];

    /// Stable lowercase name (used as the JSON `id`).
    pub fn name(self) -> &'static str {
        match self {
            TickPhase::Sense => "sense",
            TickPhase::Localization => "localization",
            TickPhase::Perception => "perception",
            TickPhase::Planning => "planning",
            TickPhase::Control => "control",
            TickPhase::Vehicle => "vehicle",
            TickPhase::World => "world",
            TickPhase::Eval => "eval",
        }
    }
}

const PHASES: usize = TickPhase::ALL.len();

static TOTAL_NS: [AtomicU64; PHASES] = [const { AtomicU64::new(0) }; PHASES];
static SAMPLES: [AtomicU64; PHASES] = [const { AtomicU64::new(0) }; PHASES];
static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether profiling is active. Resolved once, from `DRIVEFI_PROFILE`
/// (any value other than `0` enables) unless [`enable`] ran first.
#[inline]
pub fn enabled() -> bool {
    *ENABLED.get_or_init(|| std::env::var_os("DRIVEFI_PROFILE").is_some_and(|v| v != "0"))
}

/// Forces profiling on for this process, regardless of the environment.
/// Must run before the first probe resolves [`enabled`] (benches call it
/// first thing); afterwards it has no effect.
pub fn enable() {
    let _ = ENABLED.set(true);
}

/// Starts timing a phase. Returns `None` (one cached branch, no clock
/// read) when profiling is disabled.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Accumulates the elapsed time since [`start`] under `phase`. A `None`
/// token (profiling disabled) is a no-op.
#[inline]
pub fn record(phase: TickPhase, start: Option<Instant>) {
    if let Some(t0) = start {
        let ns = t0.elapsed().as_nanos() as u64;
        TOTAL_NS[phase as usize].fetch_add(ns, Ordering::Relaxed);
        SAMPLES[phase as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Accumulated numbers for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReport {
    /// Which phase.
    pub phase: TickPhase,
    /// Total accumulated nanoseconds.
    pub total_ns: u64,
    /// Number of recorded probes.
    pub samples: u64,
}

impl PhaseReport {
    /// Mean nanoseconds per probe (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.samples).unwrap_or(0)
    }
}

/// Snapshot of all phase accumulators, in pipeline order.
pub fn report() -> [PhaseReport; PHASES] {
    std::array::from_fn(|i| PhaseReport {
        phase: TickPhase::ALL[i],
        total_ns: TOTAL_NS[i].load(Ordering::Relaxed),
        samples: SAMPLES[i].load(Ordering::Relaxed),
    })
}

/// Clears all accumulators (e.g. between bench arms).
pub fn reset() {
    for i in 0..PHASES {
        TOTAL_NS[i].store(0, Ordering::Relaxed);
        SAMPLES[i].store(0, Ordering::Relaxed);
    }
}

/// Appends one JSONL record per recorded phase to the file named by
/// `DRIVEFI_BENCH_JSON`, using the bench harness's schema
/// (`group`/`id`/`mean_ns`), with the accumulated totals under
/// `total_ns`/`samples`. No-op when profiling is disabled, nothing was
/// recorded, or the variable is unset.
pub fn emit_json(group: &str) {
    use std::io::Write;

    let Some(path) = std::env::var_os("DRIVEFI_BENCH_JSON") else { return };
    let rows: Vec<PhaseReport> = report().into_iter().filter(|r| r.samples > 0).collect();
    if rows.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    for r in rows {
        let _ = writeln!(
            file,
            concat!(
                "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{},",
                "\"total_ns\":{},\"samples\":{}}}"
            ),
            group,
            r.phase.name(),
            r.mean_ns(),
            r.total_ns,
            r.samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert_and_report_consistent() {
        // `enabled()` may already be forced on by another test binary
        // sharing the process — exercise both paths without asserting
        // the environment.
        let t = start();
        record(TickPhase::Sense, t);
        let rep = report();
        let sense = rep[TickPhase::Sense as usize];
        assert_eq!(sense.phase, TickPhase::Sense);
        if t.is_none() {
            assert_eq!(sense.samples, 0);
            assert_eq!(sense.mean_ns(), 0);
        } else {
            assert!(sense.samples > 0);
        }
    }

    #[test]
    fn phase_names_are_unique() {
        let names: Vec<&str> = TickPhase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
