//! The typed message bus carrying all inter-module signals.

use drivefi_kinematics::{Actuation, SafetyEnvelope, SafetyPotential, VehicleState};
use drivefi_perception::WorldModel;
use drivefi_sensors::{ImuSample, SensorFrame};

/// A pipeline stage boundary. The fault injector is invoked after each
/// stage publishes to the bus — these are the paper's injection points
/// into `I_t`, `M_t`, `S_t`, `U_A,t` and `A_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Raw sensor data `I_t` and `M_t` just arrived.
    Sensors,
    /// Localization published the pose estimate (part of `S_t`).
    Localization,
    /// Perception published the world model `W_t`.
    Perception,
    /// The planner published the raw actuation `U_A,t`.
    Planning,
    /// The PID controller published the final actuation `A_t`.
    Control,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Sensors, Stage::Localization, Stage::Perception, Stage::Planning, Stage::Control];

    /// Dense index of the stage (pipeline order).
    pub fn index(self) -> usize {
        match self {
            Stage::Sensors => 0,
            Stage::Localization => 1,
            Stage::Perception => 2,
            Stage::Planning => 3,
            Stage::Control => 4,
        }
    }

    /// The inverse of [`Stage::name`], for deserialized fault specs.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Sensors => "sensors",
            Stage::Localization => "localization",
            Stage::Perception => "perception",
            Stage::Planning => "planning",
            Stage::Control => "control",
        }
    }
}

/// The bus: a snapshot of every signal flowing between ADS modules during
/// one tick. Modules write their outputs here; the next module reads its
/// inputs from here; the injector may mutate anything in between.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Sensor data for this tick (`I_t` + raw `M_t`).
    pub sensors: SensorFrame,
    /// Latest inertial measurement `M_t` (held between IMU ticks).
    pub imu: ImuSample,
    /// Localization output: estimated ego pose.
    pub pose: VehicleState,
    /// Perception output: the world model `W_t`.
    pub world_model: WorldModel,
    /// Planner output: raw actuation `U_A,t`.
    pub raw_cmd: Actuation,
    /// Planner output: perceived safety envelope.
    pub envelope: SafetyEnvelope,
    /// Planner output: perceived safety potential δ.
    pub delta: SafetyPotential,
    /// Control output: final actuation `A_t`.
    pub final_cmd: Actuation,
    /// Per-stage publication counters (indexed by [`Stage::index`]),
    /// bumped each time a module publishes its outputs. These are the
    /// heartbeats the [`crate::Watchdog`] monitors: a hung module stops
    /// bumping its counter the way a hung CyberRT node stops publishing
    /// on its channel.
    pub heartbeats: [u64; 5],
}

impl Bus {
    /// Returns every signal to its [`Bus::default`] value in place,
    /// keeping the world-model object storage allocated — the campaign
    /// arena path. The sensor frame is reset to empty; callers that pool
    /// its detection buffers reclaim them first (the simulation arena
    /// parks them back into the `SensorSuite` spare pool before
    /// resetting). Built on `Bus::default()` so a new field can never
    /// diverge between fresh and reset buses.
    pub fn reset(&mut self) {
        let mut objects = std::mem::take(&mut self.world_model.objects);
        objects.clear();
        *self = Bus { world_model: WorldModel { objects }, ..Bus::default() };
    }
}

impl Default for Bus {
    fn default() -> Self {
        Bus {
            sensors: SensorFrame::default(),
            imu: ImuSample { speed: 0.0, accel: 0.0, yaw_rate: 0.0 },
            pose: VehicleState::default(),
            world_model: WorldModel::default(),
            raw_cmd: Actuation::default(),
            envelope: SafetyEnvelope::new(200.0, 0.9),
            delta: SafetyPotential { longitudinal: 200.0, lateral: 0.6 },
            final_cmd: Actuation::default(),
            heartbeats: [0; 5],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered_pipeline_wise() {
        let all = Stage::ALL;
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bus_default_is_sane() {
        let b = Bus::default();
        assert_eq!(b.world_model.objects.len(), 0);
        assert_eq!(b.raw_cmd.throttle, 0.0);
    }
}
