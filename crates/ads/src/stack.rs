//! The assembled ADS stack with rate scheduling and injection hooks.

use crate::profiler::{self, TickPhase};
use crate::{Bus, Stage};
use drivefi_control::ActuationSmoother;
use drivefi_kinematics::{Actuation, Vec2, VehicleParams};
use drivefi_perception::{MultiObjectTracker, PoseEstimator, TrackId, TrackedObject};
use drivefi_planner::{Planner, PlannerConfig};
use drivefi_sensors::{Detection, SensorFrame};

/// Something that can observe and mutate the bus between pipeline stages
/// — the seam where DriveFI's injector attaches (paper Fig. 1: "DriveFI
/// Injector" arrows into `I_t`, `M_t`, `S_t`, `U_A,t`, `A_t`).
pub trait BusInterceptor {
    /// Called after `stage` has published its outputs for tick `frame`.
    fn intercept(&mut self, stage: Stage, frame: u64, bus: &mut Bus);
}

/// An interceptor that does nothing (golden runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullInterceptor;

impl BusInterceptor for NullInterceptor {
    fn intercept(&mut self, _stage: Stage, _frame: u64, _bus: &mut Bus) {}
}

/// Configuration of the ADS stack, including the ablation switches used
/// by experiment E7 (natural-resilience analysis).
#[derive(Debug, Clone, Copy)]
pub struct AdsConfig {
    /// Base tick rate \[Hz\].
    pub tick_hz: f64,
    /// Run the planner every `planner_divisor` ticks (1 = every tick).
    /// The paper credits high recompute rates for transient masking;
    /// raising this divisor ablates that mechanism.
    pub planner_divisor: u32,
    /// Use Kalman fusion for the world model. When `false`, perception
    /// republishes raw detections every tick (no filtering) — ablating
    /// the paper's "EKF masks transients" mechanism.
    pub kalman_fusion: bool,
    /// Smooth `U_A,t` with the PID controller. When `false`, `A_t` is the
    /// raw command — ablating the paper's "PID smoothing" mechanism.
    pub pid_smoothing: bool,
    /// Engage the module-health [`crate::Watchdog`]: heartbeat-stale or
    /// crashed modules trigger a fallback controlled stop (the paper's
    /// "backup/redundant systems that are present in AVs today").
    pub watchdog: bool,
    /// Vehicle parameters the planner assumes.
    pub vehicle: VehicleParams,
}

impl Default for AdsConfig {
    fn default() -> Self {
        AdsConfig {
            tick_hz: 30.0,
            planner_divisor: 1,
            kalman_fusion: true,
            pid_smoothing: true,
            watchdog: true,
            vehicle: VehicleParams::default(),
        }
    }
}

/// Plausibility gate on the published pose — the monitor layer every
/// production localization stack runs (Apollo's MSF status checks): a
/// pose that implies physically impossible motion between consecutive
/// ticks is rejected and replaced by constant-velocity dead reckoning
/// from the last accepted pose. This masks gross localization
/// corruptions (position teleports, heading snaps, speed jumps) exactly
/// the way the paper's "inherently resilient" ADS architectures do.
#[derive(Debug, Clone, Default)]
struct PoseGate {
    last: Option<drivefi_kinematics::VehicleState>,
    rejects: u32,
}

impl PoseGate {
    /// Maximum plausible position change per tick beyond dead reckoning
    /// \[m\]. Honest GPS-fusion steps move the estimate a few
    /// centimeters; 1.5 m is an order-of-magnitude margin.
    const POS_GATE: f64 = 1.5;
    /// Maximum plausible heading change per tick \[rad\]. The physical
    /// yaw-rate bound at speed is ~0.004 rad/tick; 0.03 is ~8x margin.
    const HEADING_GATE: f64 = 0.03;
    /// Maximum plausible speed change per tick \[m/s\] (max braking
    /// gives 0.27 m/s per tick).
    const SPEED_GATE: f64 = 1.0;
    /// After this many consecutive rejections the gate re-acquires: the
    /// divergence is evidently not a glitch, and flying blind on dead
    /// reckoning forever would be worse. 45 ticks (1.5 s) is long enough
    /// for the GPS fusion to heal a corrupted estimator before the gate
    /// gives up, so transient localization faults stay fully masked
    /// while genuinely persistent divergence eventually passes through.
    const REACQUIRE_AFTER: u32 = 45;

    /// True when the gate has rejected long enough that the stack should
    /// re-initialize localization from raw GNSS (Apollo MSF-style
    /// recovery).
    fn reacquire_due(&self) -> bool {
        self.rejects >= Self::REACQUIRE_AFTER
    }

    /// Re-anchors the gate after a filter re-initialization.
    fn reset_to(&mut self, pose: drivefi_kinematics::VehicleState) {
        self.last = Some(pose);
        self.rejects = 0;
    }

    fn filter(
        &mut self,
        proposed: drivefi_kinematics::VehicleState,
        imu: &drivefi_sensors::ImuSample,
        dt: f64,
        warmup: Option<&drivefi_sensors::GpsFix>,
    ) -> drivefi_kinematics::VehicleState {
        let accepted = match self.last {
            // During filter warm-up there is no trusted history yet, so
            // the gate validates against raw GNSS instead (the
            // consistency check production MSF stacks run while
            // initializing): a pose far from the fix, or with an
            // implausible heading, is replaced by the GNSS-anchored one.
            _ if warmup.is_some() => {
                let gps = warmup.expect("checked is_some");
                let jump =
                    Vec2::new(proposed.x - gps.position.x, proposed.y - gps.position.y).norm();
                let heading_err = (proposed.theta - gps.heading).abs();
                if proposed.is_finite() && jump <= 5.0 && heading_err <= 0.2 {
                    proposed
                } else {
                    drivefi_kinematics::VehicleState::new(
                        gps.position.x,
                        gps.position.y,
                        imu.speed.max(0.0),
                        gps.heading,
                        0.0,
                    )
                }
            }
            None => proposed,
            Some(prev) => {
                // Inertial dead reckoning from the last good pose: speed
                // and yaw rate come from the IMU (rate-limited so a
                // corrupted IMU cannot teleport the prediction either).
                let dv = (imu.speed - prev.v).clamp(-9.0 * dt, 9.0 * dt);
                let v = (prev.v + dv).max(0.0);
                let theta = prev.theta + imu.yaw_rate.clamp(-1.0, 1.0) * dt;
                let dir = Vec2::from_heading(theta);
                let pred = drivefi_kinematics::VehicleState {
                    x: prev.x + dir.x * v * dt,
                    y: prev.y + dir.y * v * dt,
                    v,
                    theta,
                    phi: prev.phi,
                };
                let jump = Vec2::new(proposed.x - pred.x, proposed.y - pred.y).norm();
                let plausible = proposed.is_finite()
                    && jump <= Self::POS_GATE
                    && (proposed.theta - pred.theta).abs() <= Self::HEADING_GATE
                    && (proposed.v - pred.v).abs() <= Self::SPEED_GATE;
                if plausible {
                    proposed
                } else {
                    self.rejects += 1;
                    self.last = Some(pred);
                    return pred;
                }
            }
        };
        self.rejects = 0;
        self.last = Some(accepted);
        accepted
    }
}

/// The full ADS stack: localization → perception → planning → control,
/// all signals flowing through the [`Bus`].
#[derive(Debug, Clone)]
pub struct AdsStack {
    config: AdsConfig,
    localization: PoseEstimator,
    tracker: MultiObjectTracker,
    planner: Planner,
    smoother: ActuationSmoother,
    pose_gate: PoseGate,
    last_gps: Option<drivefi_sensors::GpsFix>,
    road: drivefi_world::Road,
    set_speed: f64,
    watchdog: crate::Watchdog,
    /// The bus, public so tests and tools can inspect the latest tick.
    pub bus: Bus,
    raw_track_seq: u32,
    /// Per-tick scratch: detections lifted into the world frame for the
    /// tracker, reused across ticks so perception never allocates.
    det_scratch: Vec<(Detection, Vec2, Vec2)>,
}

impl AdsStack {
    /// Creates a stack driving toward `set_speed` on the default highway.
    pub fn new(config: AdsConfig, set_speed: f64) -> Self {
        Self::with_road(config, set_speed, drivefi_world::Road::default_highway())
    }

    /// Creates a stack for a specific road geometry.
    pub fn with_road(config: AdsConfig, set_speed: f64, road: drivefi_world::Road) -> Self {
        AdsStack {
            config,
            localization: PoseEstimator::new(),
            tracker: MultiObjectTracker::new(),
            planner: Planner::new(PlannerConfig::default(), config.vehicle),
            smoother: ActuationSmoother::default(),
            pose_gate: PoseGate::default(),
            last_gps: None,
            road,
            set_speed,
            watchdog: crate::Watchdog::new(crate::WatchdogConfig::default()),
            bus: Bus::default(),
            raw_track_seq: 0,
            det_scratch: Vec::new(),
        }
    }

    /// Resets the stack in place for a new drive: every module returns
    /// to its freshly constructed state, but heap storage — the
    /// tracker's track/object vectors, the bus world model, the road's
    /// lane vector — stays allocated. Behavior after a reset is
    /// identical to [`AdsStack::with_road`] with the same config; the
    /// campaign engine's worker arenas call this between jobs instead of
    /// rebuilding the stack.
    pub fn reset(&mut self, set_speed: f64, road: &drivefi_world::Road) {
        self.localization = PoseEstimator::new();
        self.tracker.reset();
        self.planner = Planner::new(PlannerConfig::default(), self.config.vehicle);
        self.smoother = ActuationSmoother::default();
        self.pose_gate = PoseGate::default();
        self.last_gps = None;
        self.road.copy_from(road);
        self.set_speed = set_speed;
        self.watchdog.reset();
        self.bus.reset();
        self.raw_track_seq = 0;
        self.det_scratch.clear();
    }

    /// The module-health watchdog (for inspection).
    pub fn watchdog(&self) -> &crate::Watchdog {
        &self.watchdog
    }

    /// The stack configuration.
    pub fn config(&self) -> &AdsConfig {
        &self.config
    }

    /// The cruise set speed.
    pub fn set_speed(&self) -> f64 {
        self.set_speed
    }

    /// Executes one 30 Hz tick: consumes a sensor frame, runs the
    /// pipeline with `interceptor` invoked after every stage, and returns
    /// the final actuation `A_t`.
    ///
    /// Thin wrapper over [`AdsStack::tick_in_place`]; moving a frame in
    /// drops the previous tick's detection buffers. The hot path samples
    /// straight into `bus.sensors` instead and keeps those buffers alive.
    pub fn tick<I: BusInterceptor + ?Sized>(
        &mut self,
        sensors: SensorFrame,
        frame: u64,
        interceptor: &mut I,
    ) -> Actuation {
        self.bus.sensors = sensors;
        self.tick_in_place(frame, interceptor)
    }

    /// Executes one 30 Hz tick over the sensor frame already present in
    /// `bus.sensors`. This is the allocation-free path: the caller
    /// writes the frame in place (`SensorSuite::sample_into` into
    /// `bus.sensors`), perception lifts detections into a reused scratch
    /// buffer, and the tracker publishes into the bus world model
    /// without cloning — in the steady state no stage touches the heap.
    pub fn tick_in_place<I: BusInterceptor + ?Sized>(
        &mut self,
        frame: u64,
        interceptor: &mut I,
    ) -> Actuation {
        let dt = 1.0 / self.config.tick_hz;

        // --- Stage: sensors (I_t, M_t) --- (frame already on the bus)
        if let Some(imu) = self.bus.sensors.imu {
            self.bus.imu = imu;
        }
        self.bus.heartbeats[Stage::Sensors.index()] += 1;
        interceptor.intercept(Stage::Sensors, frame, &mut self.bus);

        // --- Stage: localization ---
        let probe = profiler::start();
        self.localization.predict(&self.bus.imu, dt);
        if let Some(gps) = self.bus.sensors.gps {
            self.localization.correct(&gps);
        }
        self.bus.pose = self.localization.pose();
        self.bus.heartbeats[Stage::Localization.index()] += 1;
        interceptor.intercept(Stage::Localization, frame, &mut self.bus);
        // Write any interceptor corruption back into module state so the
        // fault persists the way a corrupted variable would...
        self.localization.set_pose(self.bus.pose);
        // ...but downstream consumers read through the plausibility gate,
        // which rejects physically impossible pose jumps (production
        // localization monitors do exactly this). The first ticks pass
        // through ungated while localization converges.
        if let Some(gps) = self.bus.sensors.gps {
            self.last_gps = Some(gps);
        }
        let warmup_gps = if frame < 10 { self.last_gps.as_ref() } else { None };
        self.bus.pose = self.pose_gate.filter(self.bus.pose, &self.bus.imu, dt, warmup_gps);
        if self.pose_gate.reacquire_due() {
            // Persistent divergence: re-initialize the filter from raw
            // GNSS (the multi-source fallback production localization
            // performs) instead of ever trusting the diverged estimate.
            let reset = match self.last_gps {
                Some(gps) => drivefi_kinematics::VehicleState::new(
                    gps.position.x,
                    gps.position.y,
                    self.bus.imu.speed.max(0.0),
                    gps.heading,
                    0.0,
                ),
                None => self.bus.pose,
            };
            self.localization.set_pose(reset);
            self.pose_gate.reset_to(reset);
            self.bus.pose = reset;
        }
        profiler::record(TickPhase::Localization, probe);

        // --- Stage: perception (W_t) ---
        let probe = profiler::start();
        let pose = self.bus.pose;
        // One ego rotation serves every detection on the bus.
        let (pose_sin, pose_cos) = pose.theta.sin_cos();
        let pose_pos = pose.position();
        let pose_vel = pose.velocity();
        self.det_scratch.clear();
        self.det_scratch.extend(self.bus.sensors.detections().map(|d| {
            let world_pos = d.position.rotated_by(pose_sin, pose_cos) + pose_pos;
            let world_vel = d.rel_velocity.rotated_by(pose_sin, pose_cos) + pose_vel;
            (*d, world_pos, world_vel)
        }));
        if self.config.kalman_fusion {
            // Publish straight into the bus, reusing its object storage.
            // The bus owns the live `W_t` between ticks; interceptor
            // corruption persists tick-over-tick exactly as before (the
            // tracker never reads the published model back — fused state
            // lives in its tracks), so no write-back clone is needed, and
            // the `set_world_model` seam stays available to tools.
            self.tracker.step_into(&pose, &self.det_scratch, dt, &mut self.bus.world_model);
        } else {
            // Ablation: raw detections become the world model directly.
            if !self.det_scratch.is_empty() {
                let seq = &mut self.raw_track_seq;
                self.bus.world_model.objects.clear();
                self.bus.world_model.objects.extend(self.det_scratch.iter().map(|(d, wp, wv)| {
                    *seq = seq.wrapping_add(1);
                    TrackedObject {
                        id: TrackId(*seq),
                        position: *wp,
                        velocity: *wv,
                        extent: Vec2::new(d.extent.x, d.extent.y),
                        truth_id: d.truth_id,
                    }
                }));
            }
        }
        self.bus.heartbeats[Stage::Perception.index()] += 1;
        interceptor.intercept(Stage::Perception, frame, &mut self.bus);
        profiler::record(TickPhase::Perception, probe);

        // --- Stage: planning (U_A,t) ---
        let probe = profiler::start();
        if frame.is_multiple_of(u64::from(self.config.planner_divisor.max(1))) {
            let out = self.planner.plan(
                &self.bus.pose,
                &self.bus.world_model,
                &self.road,
                self.set_speed,
            );
            self.bus.raw_cmd = out.raw;
            self.bus.envelope = out.envelope;
            self.bus.delta = out.delta;
            self.bus.heartbeats[Stage::Planning.index()] += 1;
        }
        interceptor.intercept(Stage::Planning, frame, &mut self.bus);
        profiler::record(TickPhase::Planning, probe);

        // --- Stage: control (A_t) ---
        let probe = profiler::start();
        self.bus.final_cmd = if self.config.pid_smoothing {
            self.smoother.step(&self.bus.raw_cmd, dt)
        } else {
            self.bus.raw_cmd.clamped(&self.config.vehicle)
        };
        // Envelope protection: the controller never commands — nor
        // accumulates in its tracking state — steering beyond the
        // vehicle interface's speed-dependent lateral authority. Without
        // this, a corrupted raw steering command winds the smoother up to
        // full deflection and the unwind (slew-limited) keeps the
        // vehicle turning long after the corruption clears. Production
        // controllers clamp their output to the interface envelope for
        // exactly this reason.
        let steer_limit = drivefi_kinematics::BicycleModel::new(self.config.vehicle)
            .steer_limit(self.bus.pose.v.max(0.0));
        if self.bus.final_cmd.steering.abs() > steer_limit {
            self.bus.final_cmd.steering =
                self.bus.final_cmd.steering.clamp(-steer_limit, steer_limit);
            if self.config.pid_smoothing {
                self.smoother.set_last_output(self.bus.final_cmd);
            }
        }
        self.bus.heartbeats[Stage::Control.index()] += 1;
        interceptor.intercept(Stage::Control, frame, &mut self.bus);
        // Note: corruption of `A_t` affects the *published* command for
        // exactly the fault window; the smoother's internal state is a
        // separate variable (persistent controller-state corruption is
        // modeled with longer fault windows, not by poisoning the
        // tracker).

        // --- Backup path: the watchdog (outside the monitored pipeline,
        // like a drive-by-wire safety MCU). On a hang or crash it
        // overrides the published command with a controlled stop.
        if self.config.watchdog {
            self.watchdog.observe(frame, &self.bus);
            if self.watchdog.is_fallback() {
                self.bus.final_cmd = self.watchdog.command(self.bus.final_cmd);
            }
        }
        profiler::record(TickPhase::Control, probe);

        self.bus.final_cmd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_sensors::SensorSuite;
    use drivefi_world::{scenario::ScenarioConfig, ActorKind, World};

    fn run_stack(config: AdsConfig, frames: u64) -> (AdsStack, World) {
        let cfg = ScenarioConfig::lead_vehicle_cruise(11);
        let mut world = World::from_scenario(&cfg);
        world.set_ego(cfg.ego_start, ActorKind::Car.dims());
        let mut sensors = SensorSuite::with_seed(11);
        let mut ads = AdsStack::new(config, cfg.ego_set_speed);
        let mut ego = cfg.ego_start;
        let model = drivefi_kinematics::BicycleModel::new(config.vehicle);
        for f in 0..frames {
            let frame = sensors.sample(&world, f);
            let act = ads.tick(frame, f, &mut NullInterceptor);
            ego = model.step(&ego, &act, 1.0 / 30.0);
            world.set_ego(ego, ActorKind::Car.dims());
            world.step(1.0 / 30.0);
        }
        (ads, world)
    }

    #[test]
    fn stack_tracks_the_lead_vehicle() {
        let (ads, world) = run_stack(AdsConfig::default(), 60);
        assert!(!ads.bus.world_model.objects.is_empty(), "no tracks after 2 s");
        let lead_truth = world.actors()[0].state.x;
        let tracked = ads.bus.world_model.objects[0].position.x;
        assert!((tracked - lead_truth).abs() < 5.0, "track at {tracked}, truth {lead_truth}");
    }

    #[test]
    fn stack_drives_safely_for_ten_seconds() {
        let (ads, world) = run_stack(AdsConfig::default(), 300);
        assert!(ads.bus.delta.is_safe(), "delta = {:?}", ads.bus.delta);
        assert!(world.ground_truth().collision.is_none());
    }

    #[test]
    fn localization_converges_to_truth() {
        let (ads, world) = run_stack(AdsConfig::default(), 150);
        let (truth, _) = world.ego().unwrap();
        let est = ads.bus.pose;
        assert!((est.x - truth.x).abs() < 2.0, "x err = {}", (est.x - truth.x).abs());
        assert!((est.y - truth.y).abs() < 1.0);
        assert!((est.v - truth.v).abs() < 1.0);
    }

    #[test]
    fn ablated_stack_still_runs() {
        let config = AdsConfig {
            kalman_fusion: false,
            pid_smoothing: false,
            planner_divisor: 4,
            ..AdsConfig::default()
        };
        let (ads, _) = run_stack(config, 120);
        assert!(ads.bus.final_cmd.is_finite());
    }

    #[test]
    fn interceptor_sees_all_stages() {
        struct Recorder(Vec<Stage>);
        impl BusInterceptor for Recorder {
            fn intercept(&mut self, stage: Stage, _f: u64, _b: &mut Bus) {
                self.0.push(stage);
            }
        }
        let cfg = ScenarioConfig::free_drive(1);
        let mut world = World::from_scenario(&cfg);
        world.set_ego(cfg.ego_start, ActorKind::Car.dims());
        let mut sensors = SensorSuite::with_seed(1);
        let mut ads = AdsStack::new(AdsConfig::default(), cfg.ego_set_speed);
        let mut rec = Recorder(Vec::new());
        ads.tick(sensors.sample(&world, 0), 0, &mut rec);
        assert_eq!(rec.0, Stage::ALL.to_vec());
    }

    #[test]
    fn interceptor_corruption_reaches_actuators() {
        struct MaxThrottle;
        impl BusInterceptor for MaxThrottle {
            fn intercept(&mut self, stage: Stage, _f: u64, bus: &mut Bus) {
                if stage == Stage::Control {
                    bus.final_cmd.throttle = 1.0;
                    bus.final_cmd.brake = 0.0;
                }
            }
        }
        let cfg = ScenarioConfig::free_drive(1);
        let mut world = World::from_scenario(&cfg);
        world.set_ego(cfg.ego_start, ActorKind::Car.dims());
        let mut sensors = SensorSuite::with_seed(1);
        let mut ads = AdsStack::new(AdsConfig::default(), cfg.ego_set_speed);
        let act = ads.tick(sensors.sample(&world, 0), 0, &mut MaxThrottle);
        assert_eq!(act.throttle, 1.0);
    }
}
