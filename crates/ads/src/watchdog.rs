//! Module-health watchdog with a fallback controlled stop.
//!
//! The paper's random architectural-state campaign found that 7.35 % of
//! injections ended in kernel panics and hangs, and notes that "recovery
//! from such faults can be done with the backup/redundant systems that
//! are present in AVs today" (§I). This module implements that backup
//! system at the ADS level: every pipeline module publishes a heartbeat
//! (its [`crate::Bus::heartbeats`] counter); the watchdog declares a
//! module *hung* when its heartbeat goes stale past a deadline, and
//! *crashed* when it publishes non-finite outputs. Either way the
//! watchdog latches into **fallback**: it overrides the published
//! actuation with a minimal-risk controlled stop (steady braking, decay
//! steering to neutral) — the drive-by-wire safety path of a production
//! vehicle.

use crate::bus::{Bus, Stage};
use drivefi_kinematics::Actuation;

/// Why the watchdog engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogTrigger {
    /// A module's heartbeat went stale: no publication for longer than
    /// the deadline.
    Hang(Stage),
    /// A module published a non-finite value (NaN/∞) — a crash symptom.
    Crash(Stage),
}

/// Watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Deadline in base ticks: a stage with no publication for more than
    /// this many ticks is declared hung. Must exceed the slowest healthy
    /// publication interval (the planner divisor).
    pub deadline_ticks: u64,
    /// Brake command held during the fallback stop (fraction of full
    /// braking — a minimal-risk stop is firm but not a panic stop).
    pub fallback_brake: f64,
    /// Per-tick decay factor applied to the steering command during
    /// fallback, easing the vehicle straight.
    pub steer_decay: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { deadline_ticks: 15, fallback_brake: 0.45, steer_decay: 0.85 }
    }
}

/// The watchdog: monitors heartbeats and output sanity; latches into a
/// fallback controlled stop when a module hangs or crashes.
///
/// # Example
///
/// ```
/// use drivefi_ads::{Bus, Stage, Watchdog, WatchdogConfig};
///
/// let mut dog = Watchdog::new(WatchdogConfig::default());
/// let mut bus = Bus::default();
/// for frame in 0..30 {
///     for s in Stage::ALL {
///         bus.heartbeats[s.index()] += 1; // healthy modules publish
///     }
///     dog.observe(frame, &bus);
/// }
/// assert!(!dog.is_fallback());
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    last_beat: Option<[u64; 5]>,
    last_change: [u64; 5],
    trigger: Option<WatchdogTrigger>,
    engaged_at: u64,
    fallback_steer: f64,
}

impl Watchdog {
    /// Creates a watchdog.
    pub fn new(config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            last_beat: None,
            last_change: [0; 5],
            trigger: None,
            engaged_at: 0,
            fallback_steer: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Returns the watchdog to its freshly constructed state (no
    /// heartbeat history, fallback disengaged) — the campaign arena path.
    pub fn reset(&mut self) {
        *self = Watchdog::new(self.config);
    }

    /// True once the watchdog has latched into fallback.
    pub fn is_fallback(&self) -> bool {
        self.trigger.is_some()
    }

    /// What tripped the watchdog, if anything.
    pub fn trigger(&self) -> Option<WatchdogTrigger> {
        self.trigger
    }

    /// The frame at which fallback engaged (meaningful only when
    /// [`Watchdog::is_fallback`]).
    pub fn engaged_at(&self) -> u64 {
        self.engaged_at
    }

    fn engage(&mut self, trigger: WatchdogTrigger, frame: u64, bus: &Bus) {
        if self.trigger.is_none() {
            self.trigger = Some(trigger);
            self.engaged_at = frame;
            let steer = bus.final_cmd.steering;
            self.fallback_steer = if steer.is_finite() { steer } else { 0.0 };
        }
    }

    /// Checks crash symptoms: non-finite values in module outputs.
    fn crashed_stage(bus: &Bus) -> Option<Stage> {
        if !bus.pose.is_finite() {
            return Some(Stage::Localization);
        }
        if bus
            .world_model
            .objects
            .iter()
            .any(|o| !(o.position.x.is_finite() && o.position.y.is_finite()))
        {
            return Some(Stage::Perception);
        }
        if !bus.raw_cmd.is_finite() {
            return Some(Stage::Planning);
        }
        if !bus.final_cmd.is_finite() {
            return Some(Stage::Control);
        }
        None
    }

    /// Observes the bus at the end of a tick. Once a hang or crash is
    /// detected the watchdog latches (real safety paths require a manual
    /// reset).
    pub fn observe(&mut self, frame: u64, bus: &Bus) {
        if self.trigger.is_some() {
            return;
        }
        if let Some(stage) = Self::crashed_stage(bus) {
            self.engage(WatchdogTrigger::Crash(stage), frame, bus);
            return;
        }
        match &mut self.last_beat {
            None => {
                self.last_beat = Some(bus.heartbeats);
                self.last_change = [frame; 5];
            }
            Some(prev) => {
                for stage in Stage::ALL {
                    let i = stage.index();
                    if bus.heartbeats[i] != prev[i] {
                        self.last_change[i] = frame;
                    } else if frame - self.last_change[i] > self.config.deadline_ticks {
                        self.engage(WatchdogTrigger::Hang(stage), frame, bus);
                        return;
                    }
                }
                self.last_beat = Some(bus.heartbeats);
            }
        }
    }

    /// The minimal-risk actuation for this tick while in fallback:
    /// throttle released, firm braking, steering decayed toward neutral.
    /// Returns `published` unchanged when the watchdog is nominal.
    pub fn command(&mut self, published: Actuation) -> Actuation {
        if self.trigger.is_none() {
            return published;
        }
        self.fallback_steer *= self.config.steer_decay;
        Actuation {
            throttle: 0.0,
            brake: self.config.fallback_brake,
            steering: self.fallback_steer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_bus(frame: u64) -> Bus {
        let mut bus = Bus::default();
        for s in Stage::ALL {
            bus.heartbeats[s.index()] = frame + 1;
        }
        bus
    }

    #[test]
    fn nominal_on_steady_heartbeats() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        for frame in 0..100 {
            dog.observe(frame, &healthy_bus(frame));
        }
        assert!(!dog.is_fallback());
        let act = Actuation { throttle: 0.3, brake: 0.0, steering: 0.01 };
        assert_eq!(dog.command(act), act);
    }

    #[test]
    fn slow_but_alive_module_is_tolerated() {
        // A planner on a divisor publishes every 10 ticks — within the
        // 15-tick deadline.
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = Bus::default();
        for frame in 0..200u64 {
            for s in Stage::ALL {
                if s == Stage::Planning {
                    if frame % 10 == 0 {
                        bus.heartbeats[s.index()] += 1;
                    }
                } else {
                    bus.heartbeats[s.index()] += 1;
                }
            }
            dog.observe(frame, &bus);
        }
        assert!(!dog.is_fallback());
    }

    #[test]
    fn hang_is_detected_after_deadline() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = Bus::default();
        let hang_at = 50u64;
        let mut engaged_frame = None;
        for frame in 0..120u64 {
            for s in Stage::ALL {
                if s == Stage::Planning && frame >= hang_at {
                    continue; // hung: stops publishing
                }
                bus.heartbeats[s.index()] += 1;
            }
            dog.observe(frame, &bus);
            if dog.is_fallback() && engaged_frame.is_none() {
                engaged_frame = Some(frame);
            }
        }
        assert_eq!(dog.trigger(), Some(WatchdogTrigger::Hang(Stage::Planning)));
        // Engages one past the deadline after the last publication.
        let engaged = engaged_frame.unwrap();
        assert!(
            engaged >= hang_at + 15 && engaged <= hang_at + 17,
            "engaged at {engaged}, hang at {hang_at}"
        );
    }

    #[test]
    fn nan_command_is_a_crash() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = healthy_bus(0);
        bus.final_cmd.throttle = f64::NAN;
        dog.observe(0, &bus);
        assert_eq!(dog.trigger(), Some(WatchdogTrigger::Crash(Stage::Control)));
    }

    #[test]
    fn nan_pose_is_a_localization_crash() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = healthy_bus(0);
        bus.pose.x = f64::INFINITY;
        dog.observe(0, &bus);
        assert_eq!(dog.trigger(), Some(WatchdogTrigger::Crash(Stage::Localization)));
    }

    #[test]
    fn fallback_command_is_a_controlled_stop() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = healthy_bus(0);
        bus.final_cmd = Actuation { throttle: 0.6, brake: 0.0, steering: 0.1 };
        bus.raw_cmd.throttle = f64::NAN;
        dog.observe(0, &bus);
        assert!(dog.is_fallback());
        let a1 = dog.command(bus.final_cmd);
        assert_eq!(a1.throttle, 0.0);
        assert!(a1.brake > 0.3);
        assert!(a1.steering.abs() < 0.1, "steering decays from the last command");
        let a2 = dog.command(bus.final_cmd);
        assert!(a2.steering.abs() < a1.steering.abs(), "steering keeps decaying");
    }

    #[test]
    fn watchdog_latches() {
        let mut dog = Watchdog::new(WatchdogConfig::default());
        let mut bus = healthy_bus(0);
        bus.raw_cmd.brake = f64::NAN;
        dog.observe(0, &bus);
        assert!(dog.is_fallback());
        // Healthy observations afterwards do not clear it.
        for frame in 1..50 {
            dog.observe(frame, &healthy_bus(frame));
        }
        assert!(dog.is_fallback());
        assert_eq!(dog.engaged_at(), 0);
    }
}
