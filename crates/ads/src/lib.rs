//! The ADS middleware: message bus, injectable signals, and the stack.
//!
//! This crate plays the role of Apollo's CyberRT / DriveWorks pipelines in
//! the paper: it wires localization, perception, planning and control into
//! a rate-scheduled loop, and — crucially for DriveFI — exposes **every
//! inter-module signal** (`I_t`, `M_t`, `W_t` inside `S_t`, `U_A,t`,
//! `A_t`) on a [`Bus`] where a fault injector can read and corrupt it
//! between pipeline stages (the paper's Fig. 1 injection points).
//!
//! The [`Signal`] enum is the analog of the paper's table of instrumented
//! ADS variables: the enumerable list of scalar outputs that the fault
//! models (min/max corruption, bit flips, offsets) target.
//!
//! # Example
//!
//! ```
//! use drivefi_ads::{AdsStack, AdsConfig, NullInterceptor};
//! use drivefi_sensors::SensorSuite;
//! use drivefi_world::{World, scenario::ScenarioConfig, ActorKind};
//!
//! let cfg = ScenarioConfig::lead_vehicle_cruise(1);
//! let mut world = World::from_scenario(&cfg);
//! world.set_ego(cfg.ego_start, ActorKind::Car.dims());
//! let mut sensors = SensorSuite::with_seed(1);
//! let mut ads = AdsStack::new(AdsConfig::default(), cfg.ego_set_speed);
//!
//! let frame = sensors.sample(&world, 0);
//! let actuation = ads.tick(frame, 0, &mut NullInterceptor);
//! assert!(actuation.throttle.is_finite());
//! ```

pub mod bus;
pub mod profiler;
pub mod signal;
pub mod stack;
pub mod watchdog;

pub use bus::{Bus, Stage};
pub use signal::{Signal, SignalRange};
pub use stack::{AdsConfig, AdsStack, BusInterceptor, NullInterceptor};
pub use watchdog::{Watchdog, WatchdogConfig, WatchdogTrigger};
