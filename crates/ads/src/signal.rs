//! Enumerable injectable signals — the paper's instrumented ADS outputs.
//!
//! The paper's fault model *(b)* corrupts "ADS software module outputs
//! with min or max values", drawn from a compiled list of variables per
//! stack (§IV, Table I analog). [`Signal`] is that list for our stack:
//! every scalar an injector can read or overwrite on the [`Bus`], with
//! its physical range for min/max corruption.

use crate::Bus;
use drivefi_kinematics::Vec2;

/// A scalar signal on the bus that faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Localization: estimated x position (part of `S_t`).
    PoseX,
    /// Localization: estimated y position.
    PoseY,
    /// Localization: estimated speed.
    PoseSpeed,
    /// Localization: estimated heading.
    PoseHeading,
    /// Inertial measurement `M_t`: speed over ground.
    ImuSpeed,
    /// Inertial measurement `M_t`: longitudinal acceleration.
    ImuAccel,
    /// World model `W_t`: longitudinal distance of the lead object
    /// (ego-frame x of the nearest tracked object ahead).
    LeadDistance,
    /// World model `W_t`: lead object speed along the road.
    LeadSpeed,
    /// Planner `U_A,t`: raw throttle.
    RawThrottle,
    /// Planner `U_A,t`: raw brake.
    RawBrake,
    /// Planner `U_A,t`: raw steering.
    RawSteering,
    /// Control `A_t`: final throttle.
    FinalThrottle,
    /// Control `A_t`: final brake.
    FinalBrake,
    /// Control `A_t`: final steering.
    FinalSteering,
}

/// The physical range of a signal, used by min/max corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalRange {
    /// Minimum plausible value.
    pub min: f64,
    /// Maximum plausible value.
    pub max: f64,
}

impl Signal {
    /// Every injectable signal, in a stable order. The cross product of
    /// this list with `{min, max}` and the scene list forms the paper's
    /// candidate fault corpus (98 400 faults in their setup).
    pub const ALL: [Signal; 14] = [
        Signal::PoseX,
        Signal::PoseY,
        Signal::PoseSpeed,
        Signal::PoseHeading,
        Signal::ImuSpeed,
        Signal::ImuAccel,
        Signal::LeadDistance,
        Signal::LeadSpeed,
        Signal::RawThrottle,
        Signal::RawBrake,
        Signal::RawSteering,
        Signal::FinalThrottle,
        Signal::FinalBrake,
        Signal::FinalSteering,
    ];

    /// Position of this signal in [`Signal::ALL`] — a dense `u8` index
    /// for cheap `Copy` fault keys.
    pub fn index(self) -> u8 {
        Signal::ALL.iter().position(|s| *s == self).expect("signal listed in ALL") as u8
    }

    /// The inverse of [`Signal::name`], for deserialized fault specs.
    pub fn from_name(name: &str) -> Option<Signal> {
        Signal::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable short name (used in reports and CSV output).
    pub fn name(self) -> &'static str {
        match self {
            Signal::PoseX => "pose.x",
            Signal::PoseY => "pose.y",
            Signal::PoseSpeed => "pose.v",
            Signal::PoseHeading => "pose.theta",
            Signal::ImuSpeed => "imu.speed",
            Signal::ImuAccel => "imu.accel",
            Signal::LeadDistance => "world.lead_distance",
            Signal::LeadSpeed => "world.lead_speed",
            Signal::RawThrottle => "plan.throttle",
            Signal::RawBrake => "plan.brake",
            Signal::RawSteering => "plan.steering",
            Signal::FinalThrottle => "ctrl.throttle",
            Signal::FinalBrake => "ctrl.brake",
            Signal::FinalSteering => "ctrl.steering",
        }
    }

    /// The pipeline stage after which this signal becomes valid.
    pub fn stage(self) -> crate::Stage {
        match self {
            Signal::ImuSpeed | Signal::ImuAccel => crate::Stage::Sensors,
            Signal::PoseX | Signal::PoseY | Signal::PoseSpeed | Signal::PoseHeading => {
                crate::Stage::Localization
            }
            Signal::LeadDistance | Signal::LeadSpeed => crate::Stage::Perception,
            Signal::RawThrottle | Signal::RawBrake | Signal::RawSteering => crate::Stage::Planning,
            Signal::FinalThrottle | Signal::FinalBrake | Signal::FinalSteering => {
                crate::Stage::Control
            }
        }
    }

    /// Physical range for min/max corruption (paper fault model *b*).
    pub fn range(self) -> SignalRange {
        match self {
            Signal::PoseX => SignalRange { min: 0.0, max: 4000.0 },
            Signal::PoseY => SignalRange { min: -2.0, max: 10.0 },
            Signal::PoseSpeed | Signal::ImuSpeed => SignalRange { min: 0.0, max: 55.0 },
            Signal::PoseHeading => SignalRange { min: -0.8, max: 0.8 },
            Signal::ImuAccel => SignalRange { min: -8.0, max: 3.5 },
            Signal::LeadDistance => SignalRange { min: 0.0, max: 200.0 },
            Signal::LeadSpeed => SignalRange { min: 0.0, max: 55.0 },
            Signal::RawThrottle | Signal::FinalThrottle => SignalRange { min: 0.0, max: 1.0 },
            Signal::RawBrake | Signal::FinalBrake => SignalRange { min: 0.0, max: 1.0 },
            Signal::RawSteering | Signal::FinalSteering => SignalRange { min: -0.55, max: 0.55 },
        }
    }

    /// Index of the lead object (nearest tracked object ahead of the
    /// pose) in the bus world model.
    fn lead_index(bus: &Bus) -> Option<usize> {
        let pose = bus.pose;
        bus.world_model
            .objects
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                let local = pose.to_local(o.position);
                local.x > 0.0 && local.y.abs() < 2.0
            })
            .min_by(|(_, a), (_, b)| {
                let da = pose.to_local(a.position).x;
                let db = pose.to_local(b.position).x;
                da.partial_cmp(&db).expect("finite positions")
            })
            .map(|(i, _)| i)
    }

    /// Reads the signal's current value from the bus. Returns `None` when
    /// the signal has no value (e.g. no lead object exists).
    pub fn read(self, bus: &Bus) -> Option<f64> {
        match self {
            Signal::PoseX => Some(bus.pose.x),
            Signal::PoseY => Some(bus.pose.y),
            Signal::PoseSpeed => Some(bus.pose.v),
            Signal::PoseHeading => Some(bus.pose.theta),
            Signal::ImuSpeed => Some(bus.imu.speed),
            Signal::ImuAccel => Some(bus.imu.accel),
            Signal::LeadDistance => Self::lead_index(bus)
                .map(|i| bus.pose.to_local(bus.world_model.objects[i].position).x),
            Signal::LeadSpeed => {
                Self::lead_index(bus).map(|i| bus.world_model.objects[i].velocity.x)
            }
            Signal::RawThrottle => Some(bus.raw_cmd.throttle),
            Signal::RawBrake => Some(bus.raw_cmd.brake),
            Signal::RawSteering => Some(bus.raw_cmd.steering),
            Signal::FinalThrottle => Some(bus.final_cmd.throttle),
            Signal::FinalBrake => Some(bus.final_cmd.brake),
            Signal::FinalSteering => Some(bus.final_cmd.steering),
        }
    }

    /// Writes `value` into the bus. Writes to lead-object signals move the
    /// tracked object; writes to missing signals are no-ops (a fault in a
    /// variable that holds no live value cannot propagate).
    pub fn write(self, bus: &mut Bus, value: f64) {
        match self {
            Signal::PoseX => bus.pose.x = value,
            Signal::PoseY => bus.pose.y = value,
            Signal::PoseSpeed => bus.pose.v = value,
            Signal::PoseHeading => bus.pose.theta = value,
            Signal::ImuSpeed => bus.imu.speed = value,
            Signal::ImuAccel => bus.imu.accel = value,
            Signal::LeadDistance => {
                if let Some(i) = Self::lead_index(bus) {
                    let local = bus.pose.to_local(bus.world_model.objects[i].position);
                    let new_local = Vec2::new(value, local.y);
                    let world = new_local.rotated(bus.pose.theta) + bus.pose.position();
                    bus.world_model.objects[i].position = world;
                }
            }
            Signal::LeadSpeed => {
                if let Some(i) = Self::lead_index(bus) {
                    bus.world_model.objects[i].velocity.x = value;
                }
            }
            Signal::RawThrottle => bus.raw_cmd.throttle = value,
            Signal::RawBrake => bus.raw_cmd.brake = value,
            Signal::RawSteering => bus.raw_cmd.steering = value,
            Signal::FinalThrottle => bus.final_cmd.throttle = value,
            Signal::FinalBrake => bus.final_cmd.brake = value,
            Signal::FinalSteering => bus.final_cmd.steering = value,
        }
    }
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_perception::{TrackId, TrackedObject, WorldModel};

    fn bus_with_lead(x: f64) -> Bus {
        let mut bus = Bus::default();
        bus.pose.v = 30.0;
        bus.world_model = WorldModel {
            objects: vec![TrackedObject {
                id: TrackId(0),
                position: Vec2::new(x, 0.0),
                velocity: Vec2::new(20.0, 0.0),
                extent: Vec2::new(4.7, 1.9),
                truth_id: 1,
            }],
        };
        bus
    }

    #[test]
    fn scalar_round_trip_all_signals() {
        for sig in Signal::ALL {
            // Fresh bus per signal: writes to pose fields change the ego
            // frame, which would perturb later lead-relative reads.
            let mut bus = bus_with_lead(50.0);
            sig.write(&mut bus, 0.25);
            let v = sig.read(&bus).unwrap();
            assert!((v - 0.25).abs() < 1e-9, "{sig} round-trip failed: {v}");
        }
    }

    #[test]
    fn lead_distance_moves_object() {
        let mut bus = bus_with_lead(50.0);
        Signal::LeadDistance.write(&mut bus, 150.0);
        assert_eq!(bus.world_model.objects[0].position.x, 150.0);
        assert_eq!(Signal::LeadDistance.read(&bus), Some(150.0));
    }

    #[test]
    fn lead_signals_none_without_objects() {
        let bus = Bus::default();
        assert_eq!(Signal::LeadDistance.read(&bus), None);
        assert_eq!(Signal::LeadSpeed.read(&bus), None);
        // Writing is a no-op, not a panic.
        let mut bus = Bus::default();
        Signal::LeadDistance.write(&mut bus, 10.0);
    }

    #[test]
    fn ranges_are_ordered() {
        for sig in Signal::ALL {
            let r = sig.range();
            assert!(r.min < r.max, "{sig} range inverted");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Signal::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Signal::ALL.len());
    }

    #[test]
    fn stages_cover_pipeline() {
        use crate::Stage;
        assert_eq!(Signal::ImuSpeed.stage(), Stage::Sensors);
        assert_eq!(Signal::PoseX.stage(), Stage::Localization);
        assert_eq!(Signal::LeadDistance.stage(), Stage::Perception);
        assert_eq!(Signal::RawThrottle.stage(), Stage::Planning);
        assert_eq!(Signal::FinalBrake.stage(), Stage::Control);
    }

    #[test]
    fn lead_index_ignores_objects_behind_and_offside() {
        let mut bus = bus_with_lead(50.0);
        bus.world_model.objects.push(TrackedObject {
            id: TrackId(1),
            position: Vec2::new(-20.0, 0.0),
            velocity: Vec2::ZERO,
            extent: Vec2::new(4.7, 1.9),
            truth_id: 2,
        });
        bus.world_model.objects.push(TrackedObject {
            id: TrackId(2),
            position: Vec2::new(30.0, 3.7),
            velocity: Vec2::ZERO,
            extent: Vec2::new(4.7, 1.9),
            truth_id: 3,
        });
        // Nearest *in-corridor ahead* object is still the one at 50 m.
        assert_eq!(Signal::LeadDistance.read(&bus), Some(50.0));
    }
}
