//! Tiny fixed-size linear algebra for Kalman filtering.
//!
//! Matrices are `[[f64; C]; R]` (row-major). Only the handful of
//! operations a Kalman filter needs are provided; everything is generic
//! over dimensions via const generics so the 4-state tracker and the
//! 2-state localizer share code.

/// Multiplies an `R×K` matrix by a `K×C` matrix.
pub fn mat_mul<const R: usize, const K: usize, const C: usize>(
    a: &[[f64; K]; R],
    b: &[[f64; C]; K],
) -> [[f64; C]; R] {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for k in 0..K {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..C {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// Transposes an `R×C` matrix.
pub fn transpose<const R: usize, const C: usize>(a: &[[f64; C]; R]) -> [[f64; R]; C] {
    let mut out = [[0.0; R]; C];
    for i in 0..R {
        for j in 0..C {
            out[j][i] = a[i][j];
        }
    }
    out
}

/// Adds two matrices of identical shape.
pub fn mat_add<const R: usize, const C: usize>(
    a: &[[f64; C]; R],
    b: &[[f64; C]; R],
) -> [[f64; C]; R] {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for j in 0..C {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

/// Subtracts `b` from `a`.
pub fn mat_sub<const R: usize, const C: usize>(
    a: &[[f64; C]; R],
    b: &[[f64; C]; R],
) -> [[f64; C]; R] {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for j in 0..C {
            out[i][j] = a[i][j] - b[i][j];
        }
    }
    out
}

/// The `N×N` identity.
pub fn identity<const N: usize>() -> [[f64; N]; N] {
    let mut out = [[0.0; N]; N];
    for (i, row) in out.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    out
}

/// Multiplies a matrix by a column vector.
pub fn mat_vec<const R: usize, const C: usize>(a: &[[f64; C]; R], v: &[f64; C]) -> [f64; R] {
    let mut out = [0.0; R];
    for i in 0..R {
        for j in 0..C {
            out[i] += a[i][j] * v[j];
        }
    }
    out
}

/// Inverts a small square matrix by Gauss–Jordan elimination with partial
/// pivoting. Returns `None` when the matrix is (numerically) singular.
pub fn inverse<const N: usize>(a: &[[f64; N]; N]) -> Option<[[f64; N]; N]> {
    let mut aug = [[0.0; N]; N];
    let mut inv = identity::<N>();
    aug.copy_from_slice(a);

    for col in 0..N {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..N {
            if aug[row][col].abs() > aug[pivot][col].abs() {
                pivot = row;
            }
        }
        if aug[pivot][col].abs() < 1e-12 {
            return None;
        }
        aug.swap(col, pivot);
        inv.swap(col, pivot);

        let diag = aug[col][col];
        for j in 0..N {
            aug[col][j] /= diag;
            inv[col][j] /= diag;
        }
        for row in 0..N {
            if row == col {
                continue;
            }
            let factor = aug[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..N {
                aug[row][j] -= factor * aug[col][j];
                inv[row][j] -= factor * inv[col][j];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_is_noop() {
        let a = [[1.0, 2.0], [3.0, 4.0]];
        assert_eq!(mat_mul(&a, &identity::<2>()), a);
        assert_eq!(mat_mul(&identity::<2>(), &a), a);
    }

    #[test]
    fn rectangular_multiply() {
        let a = [[1.0, 2.0, 3.0]];
        let b = [[1.0], [1.0], [1.0]];
        assert_eq!(mat_mul(&a, &b), [[6.0]]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a)[2][1], 6.0);
    }

    #[test]
    fn inverse_of_known_2x2() {
        let a = [[4.0, 7.0], [2.0, 6.0]];
        let inv = inverse(&a).unwrap();
        let expect = [[0.6, -0.7], [-0.2, 0.4]];
        for i in 0..2 {
            for j in 0..2 {
                assert!((inv[i][j] - expect[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity_4x4() {
        let a = [
            [2.0, 0.5, 0.0, 1.0],
            [0.1, 3.0, 0.2, 0.0],
            [0.0, 0.3, 1.5, 0.4],
            [1.0, 0.0, 0.2, 2.5],
        ];
        let inv = inverse(&a).unwrap();
        let prod = mat_mul(&a, &inv);
        let id = identity::<4>();
        for i in 0..4 {
            for j in 0..4 {
                assert!((prod[i][j] - id[i][j]).abs() < 1e-10, "prod[{i}][{j}] = {}", prod[i][j]);
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = [[1.0, 2.0], [2.0, 4.0]];
        assert!(inverse(&a).is_none());
    }

    #[test]
    fn mat_vec_multiplies() {
        let a = [[1.0, 0.0, 2.0], [0.0, 1.0, -1.0]];
        let v = [3.0, 4.0, 5.0];
        assert_eq!(mat_vec(&a, &v), [13.0, -1.0]);
    }

    #[test]
    fn add_sub_inverse_each_other() {
        let a = [[1.0, 2.0], [3.0, 4.0]];
        let b = [[0.5, 0.5], [0.5, 0.5]];
        assert_eq!(mat_sub(&mat_add(&a, &b), &b), a);
    }
}
