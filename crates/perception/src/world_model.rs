//! The ADS world model `W_t`: tracked objects.

use drivefi_kinematics::Vec2;

/// Identifier of a perception track (not a ground-truth actor id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "track{}", self.0)
    }
}

/// One confirmed object in the world model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedObject {
    /// Track identifier.
    pub id: TrackId,
    /// Estimated world-frame position \[m\].
    pub position: Vec2,
    /// Estimated world-frame velocity \[m/s\].
    pub velocity: Vec2,
    /// Estimated footprint (length, width) \[m\].
    pub extent: Vec2,
    /// Ground-truth actor id of the majority of associated detections.
    /// Evaluation-only; the ADS logic never reads it.
    pub truth_id: u32,
}

/// The world model published by perception — the paper's `W_t`, which
/// "maintains and tracks the trajectories of all static and dynamic
/// objects perceived by the ADS".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldModel {
    /// Confirmed tracks.
    pub objects: Vec<TrackedObject>,
}

impl WorldModel {
    /// An empty model.
    pub fn new() -> Self {
        WorldModel::default()
    }

    /// The object nearest to `point`, if any.
    pub fn nearest(&self, point: Vec2) -> Option<&TrackedObject> {
        self.objects.iter().min_by(|a, b| {
            a.position
                .distance(point)
                .partial_cmp(&b.position.distance(point))
                .expect("positions are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u32, x: f64, y: f64) -> TrackedObject {
        TrackedObject {
            id: TrackId(id),
            position: Vec2::new(x, y),
            velocity: Vec2::ZERO,
            extent: Vec2::new(4.7, 1.9),
            truth_id: id,
        }
    }

    #[test]
    fn nearest_picks_closest() {
        let wm = WorldModel { objects: vec![obj(1, 10.0, 0.0), obj(2, 3.0, 1.0)] };
        assert_eq!(wm.nearest(Vec2::ZERO).unwrap().id, TrackId(2));
    }

    #[test]
    fn nearest_on_empty_is_none() {
        assert!(WorldModel::new().nearest(Vec2::ZERO).is_none());
    }
}
