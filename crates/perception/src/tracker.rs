//! Multi-object tracking by Kalman-filtered sensor fusion.
//!
//! Each track runs a constant-velocity Kalman filter over world-frame
//! position measurements (camera/LiDAR) and position+velocity
//! measurements (RADAR). Detections are associated to tracks by gated
//! nearest-neighbor matching. Tracks are confirmed after a few hits and
//! dropped after consecutive misses — the usual M/N logic.

use crate::linalg::{inverse, mat_mul, mat_vec};
use crate::world_model::{TrackId, TrackedObject, WorldModel};
use drivefi_kinematics::{Vec2, VehicleState};
use drivefi_sensors::{Detection, SensorKind};

/// Tunables of the tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Association gate radius \[m\].
    pub gate: f64,
    /// Hits needed to confirm a track.
    pub confirm_hits: u32,
    /// Consecutive misses before a track is dropped.
    pub max_misses: u32,
    /// Process noise intensity (acceleration variance) \[m²/s⁴\].
    pub process_noise: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { gate: 4.0, confirm_hits: 2, max_misses: 8, process_noise: 4.0 }
    }
}

/// Internal Kalman track: state `[x, y, vx, vy]` in the world frame.
#[derive(Debug, Clone)]
struct Track {
    id: TrackId,
    x: [f64; 4],
    p: [[f64; 4]; 4],
    hits: u32,
    misses: u32,
    extent: Vec2,
    truth_id: u32,
}

impl Track {
    fn new(id: TrackId, pos: Vec2, vel: Vec2, extent: Vec2, truth_id: u32) -> Self {
        let mut p = [[0.0; 4]; 4];
        p[0][0] = 4.0;
        p[1][1] = 4.0;
        p[2][2] = 25.0;
        p[3][3] = 25.0;
        Track { id, x: [pos.x, pos.y, vel.x, vel.y], p, hits: 1, misses: 0, extent, truth_id }
    }

    fn position(&self) -> Vec2 {
        Vec2::new(self.x[0], self.x[1])
    }

    fn velocity(&self) -> Vec2 {
        Vec2::new(self.x[2], self.x[3])
    }

    /// Constant-velocity prediction over `dt`.
    ///
    /// Hand-specialized `x ← Fx`, `P ← FPFᵀ + Q` for the structured
    /// `F = [I, dt·I; 0, I]`: only the terms the dense products actually
    /// contribute are computed, in the same accumulation order, so the
    /// result is bit-identical to the generic matrix chain while doing a
    /// tenth of the work.
    fn predict(&mut self, dt: f64, q_intensity: f64) {
        let [x0, x1, x2, x3] = self.x;
        self.x = [x0 + dt * x2, x1 + dt * x3, x2, x3];
        // White-acceleration process noise.
        let dt2 = dt * dt;
        let dt3 = dt2 * dt / 2.0;
        let dt4 = dt2 * dt2 / 4.0;
        let q = q_intensity;
        let p = &self.p;
        // F P: position rows pick up the dt-coupled velocity rows.
        let mut fp = [[0.0; 4]; 4];
        for j in 0..4 {
            fp[0][j] = p[0][j] + dt * p[2][j];
            fp[1][j] = p[1][j] + dt * p[3][j];
            fp[2][j] = p[2][j];
            fp[3][j] = p[3][j];
        }
        // (F P) Fᵀ, same sparsity on the right, plus Q's eight entries.
        let mut out = [[0.0; 4]; 4];
        for (i, fpi) in fp.iter().enumerate() {
            out[i][0] = fpi[0] + fpi[2] * dt;
            out[i][1] = fpi[1] + fpi[3] * dt;
            out[i][2] = fpi[2];
            out[i][3] = fpi[3];
        }
        out[0][0] += dt4 * q;
        out[0][2] += dt3 * q;
        out[1][1] += dt4 * q;
        out[1][3] += dt3 * q;
        out[2][0] += dt3 * q;
        out[2][2] += dt2 * q;
        out[3][1] += dt3 * q;
        out[3][3] += dt2 * q;
        self.p = out;
    }

    /// Position-only measurement update.
    ///
    /// Specialized for `H = [I₂ 0]`: `S` is the top-left 2×2 block of `P`
    /// plus `R`, `PHᵀ` is the first two columns of `P`, and `(I − KH)P`
    /// only couples through those columns. Term order matches the generic
    /// chain, so the arithmetic is bit-identical.
    fn update_position(&mut self, z: Vec2, r_std: f64) {
        let r = r_std * r_std;
        let p = &self.p;
        let s = [[p[0][0] + r, p[0][1]], [p[1][0], p[1][1] + r]];
        let Some(s_inv) = inverse(&s) else { return };
        let mut k = [[0.0; 2]; 4];
        for (i, pi) in p.iter().enumerate() {
            k[i][0] = pi[0] * s_inv[0][0] + pi[1] * s_inv[1][0];
            k[i][1] = pi[0] * s_inv[0][1] + pi[1] * s_inv[1][1];
        }
        let y = [z.x - self.x[0], z.y - self.x[1]];
        let dx = mat_vec(&k, &y);
        for (xi, dxi) in self.x.iter_mut().zip(&dx) {
            *xi += dxi;
        }
        // (I − KH) P: `0.0 - k` (not `-k`) matches the generic
        // `mat_sub(identity, kh)` exactly on signed zeros.
        let mut np = [[0.0; 4]; 4];
        for j in 0..4 {
            np[0][j] = (1.0 - k[0][0]) * p[0][j] + (0.0 - k[0][1]) * p[1][j];
            np[1][j] = (0.0 - k[1][0]) * p[0][j] + (1.0 - k[1][1]) * p[1][j];
            np[2][j] = (0.0 - k[2][0]) * p[0][j] + (0.0 - k[2][1]) * p[1][j] + p[2][j];
            np[3][j] = (0.0 - k[3][0]) * p[0][j] + (0.0 - k[3][1]) * p[1][j] + p[3][j];
        }
        self.p = np;
        self.hits += 1;
        self.misses = 0;
    }

    /// Position + velocity measurement update (RADAR).
    ///
    /// Specialized for `H = I`: the `HPHᵀ` and `KH` products collapse, so
    /// only `S = P + R`, the 4×4 inverse, `K = PS⁻¹`, and `(I − K)P`
    /// remain — bit-identical to the generic chain.
    fn update_full(&mut self, z_pos: Vec2, z_vel: Vec2, r_pos: f64, r_vel: f64) {
        let mut s = self.p;
        s[0][0] += r_pos * r_pos;
        s[1][1] += r_pos * r_pos;
        s[2][2] += r_vel * r_vel;
        s[3][3] += r_vel * r_vel;
        let Some(s_inv) = inverse(&s) else { return };
        let k = mat_mul(&self.p, &s_inv);
        let y =
            [z_pos.x - self.x[0], z_pos.y - self.x[1], z_vel.x - self.x[2], z_vel.y - self.x[3]];
        let dx = mat_vec(&k, &y);
        for (xi, dxi) in self.x.iter_mut().zip(&dx) {
            *xi += dxi;
        }
        let mut m = [[0.0; 4]; 4];
        for (i, (mi, ki)) in m.iter_mut().zip(&k).enumerate() {
            for (j, (mij, kij)) in mi.iter_mut().zip(ki).enumerate() {
                *mij = if i == j { 1.0 - kij } else { 0.0 - kij };
            }
        }
        self.p = mat_mul(&m, &self.p);
        self.hits += 1;
        self.misses = 0;
    }
}

/// The fusion tracker producing the world model `W_t`.
#[derive(Debug, Clone)]
pub struct MultiObjectTracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u32,
    model: WorldModel,
    /// Per-step association scratch (`claimed[i]` ⇔ track `i` matched a
    /// detection this step), kept across steps so the hot loop never
    /// allocates.
    claimed: Vec<bool>,
}

impl Default for MultiObjectTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiObjectTracker {
    /// Creates a tracker with default configuration.
    pub fn new() -> Self {
        Self::with_config(TrackerConfig::default())
    }

    /// Creates a tracker with the given configuration.
    pub fn with_config(config: TrackerConfig) -> Self {
        MultiObjectTracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
            model: WorldModel::new(),
            claimed: Vec::new(),
        }
    }

    /// Drops every track and the published model, returning the tracker
    /// to its freshly constructed state while keeping the track and
    /// object storage allocated — the campaign arena path.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.next_id = 0;
        self.model.objects.clear();
        self.claimed.clear();
    }

    /// The most recently published world model.
    pub fn world_model(&self) -> &WorldModel {
        &self.model
    }

    /// Replaces the published world model (fault-injection hook: DriveFI
    /// corrupts `W_t` through this seam).
    pub fn set_world_model(&mut self, model: WorldModel) {
        self.model = model;
    }

    /// Advances all tracks by `dt` and fuses one batch of detections
    /// (already converted to world frame by the caller). Returns the
    /// refreshed world model.
    ///
    /// Thin wrapper over [`MultiObjectTracker::step_into`] that also
    /// refreshes the tracker's own published copy (visible through
    /// [`MultiObjectTracker::world_model`]). The returned clone makes
    /// this the reference path for equivalence tests; hot loops use
    /// `step_into` and publish straight into the caller's buffer.
    pub fn step(
        &mut self,
        ego: &VehicleState,
        detections: &[(Detection, Vec2, Vec2)],
        dt: f64,
    ) -> WorldModel {
        let mut out = std::mem::take(&mut self.model);
        self.step_into(ego, detections, dt, &mut out);
        self.model = out;
        self.model.clone()
    }

    /// Advances all tracks by `dt`, fuses one batch of detections, and
    /// publishes the confirmed tracks into `out` in place — `out.objects`
    /// is cleared and refilled, reusing its capacity, so a warmed-up
    /// steady-state step performs no heap allocation. The result is
    /// independent of `out`'s prior contents and bit-identical to what
    /// [`MultiObjectTracker::step`] returns.
    ///
    /// This path does *not* refresh the tracker's internally published
    /// model ([`MultiObjectTracker::world_model`]): the caller owns the
    /// live `W_t` between steps, and the [`set_world_model`] corruption
    /// seam stays available for fault injection.
    ///
    /// [`set_world_model`]: MultiObjectTracker::set_world_model
    pub fn step_into(
        &mut self,
        ego: &VehicleState,
        detections: &[(Detection, Vec2, Vec2)],
        dt: f64,
        out: &mut WorldModel,
    ) {
        let _ = ego;
        for t in &mut self.tracks {
            t.predict(dt, self.config.process_noise);
        }

        self.claimed.clear();
        self.claimed.resize(self.tracks.len(), false);
        // Gate and nearest-neighbor ordering compare squared distances:
        // the metric is monotone, the distance itself is never published,
        // and skipping `hypot` is a measurable win in the hot loop.
        let gate_sq = self.config.gate * self.config.gate;
        for (det, world_pos, world_vel) in detections {
            // Gated nearest-neighbor association.
            let mut best: Option<(usize, f64)> = None;
            for (i, t) in self.tracks.iter().enumerate() {
                if self.claimed[i] {
                    continue;
                }
                let d = t.position().distance_sq(*world_pos);
                if d < gate_sq && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            match best {
                Some((i, _)) => {
                    self.claimed[i] = true;
                    let t = &mut self.tracks[i];
                    match det.sensor {
                        SensorKind::Radar => t.update_full(*world_pos, *world_vel, 0.8, 0.3),
                        SensorKind::Lidar => t.update_position(*world_pos, 0.2),
                        _ => t.update_position(*world_pos, 0.7),
                    }
                    t.extent = det.extent;
                    t.truth_id = det.truth_id;
                }
                None => {
                    let id = TrackId(self.next_id);
                    self.next_id += 1;
                    self.tracks.push(Track::new(
                        id,
                        *world_pos,
                        *world_vel,
                        det.extent,
                        det.truth_id,
                    ));
                    self.claimed.push(true);
                }
            }
        }

        // Miss accounting and pruning.
        for (i, t) in self.tracks.iter_mut().enumerate() {
            if !self.claimed.get(i).copied().unwrap_or(true) {
                t.misses += 1;
            }
        }
        let max_misses = self.config.max_misses;
        self.tracks.retain(|t| t.misses <= max_misses);

        // Publish confirmed tracks.
        let confirm = self.config.confirm_hits;
        out.objects.clear();
        out.objects.extend(self.tracks.iter().filter(|t| t.hits >= confirm).map(|t| {
            TrackedObject {
                id: t.id,
                position: t.position(),
                velocity: t.velocity(),
                extent: t.extent,
                truth_id: t.truth_id,
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f64, y: f64, vx: f64, sensor: SensorKind) -> (Detection, Vec2, Vec2) {
        let d = Detection {
            sensor,
            position: Vec2::new(x, y),
            rel_velocity: Vec2::new(vx, 0.0),
            extent: Vec2::new(4.7, 1.9),
            truth_id: 1,
        };
        (d, Vec2::new(x, y), Vec2::new(vx, 0.0))
    }

    fn ego() -> VehicleState {
        VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0)
    }

    #[test]
    fn track_confirms_after_hits() {
        let mut tr = MultiObjectTracker::new();
        let m = tr.step(&ego(), &[det(50.0, 0.0, -5.0, SensorKind::Lidar)], 0.1);
        assert_eq!(m.objects.len(), 0, "tentative after one hit");
        let m = tr.step(&ego(), &[det(49.5, 0.0, -5.0, SensorKind::Lidar)], 0.1);
        assert_eq!(m.objects.len(), 1, "confirmed after two hits");
    }

    #[test]
    fn track_estimates_velocity_from_positions() {
        let mut tr = MultiObjectTracker::new();
        // Object moving +10 m/s in x, lidar position-only measurements.
        let mut x = 50.0;
        for _ in 0..30 {
            tr.step(&ego(), &[det(x, 0.0, 0.0, SensorKind::Lidar)], 0.1);
            x += 1.0;
        }
        let m = tr.world_model();
        assert_eq!(m.objects.len(), 1);
        let v = m.objects[0].velocity;
        assert!((v.x - 10.0).abs() < 1.5, "estimated vx = {}", v.x);
    }

    #[test]
    fn track_dies_after_misses() {
        let mut tr = MultiObjectTracker::new();
        for _ in 0..3 {
            tr.step(&ego(), &[det(50.0, 0.0, 0.0, SensorKind::Lidar)], 0.1);
        }
        assert_eq!(tr.world_model().objects.len(), 1);
        for _ in 0..10 {
            tr.step(&ego(), &[], 0.1);
        }
        assert_eq!(tr.world_model().objects.len(), 0);
    }

    #[test]
    fn separate_objects_get_separate_tracks() {
        let mut tr = MultiObjectTracker::new();
        for _ in 0..3 {
            tr.step(
                &ego(),
                &[det(50.0, 0.0, 0.0, SensorKind::Lidar), det(80.0, 3.7, 0.0, SensorKind::Lidar)],
                0.1,
            );
        }
        assert_eq!(tr.world_model().objects.len(), 2);
    }

    #[test]
    fn radar_velocity_speeds_up_convergence() {
        let mut with_radar = MultiObjectTracker::new();
        let mut without = MultiObjectTracker::new();
        // Both trackers get a wrong velocity prior (0) on the first frame.
        with_radar.step(&ego(), &[det(50.0, 0.0, 0.0, SensorKind::Radar)], 0.1);
        without.step(&ego(), &[det(50.0, 0.0, 0.0, SensorKind::Camera)], 0.1);
        let mut x = 51.0;
        for _ in 0..3 {
            // RADAR measures velocity directly; camera only positions.
            with_radar.step(&ego(), &[det(x, 0.0, 10.0, SensorKind::Radar)], 0.1);
            without.step(&ego(), &[det(x, 0.0, 10.0, SensorKind::Camera)], 0.1);
            x += 1.0;
        }
        let vr = with_radar.world_model().objects[0].velocity.x;
        let vc = without.world_model().objects[0].velocity.x;
        assert!((vr - 10.0).abs() < (vc - 10.0).abs(), "radar vx = {vr}, camera vx = {vc}");
    }

    #[test]
    fn transient_outlier_is_pulled_back_by_fusion() {
        // This is the paper's natural-resilience mechanism in miniature: a
        // one-frame corrupted measurement barely moves a well-established
        // track.
        let mut tr = MultiObjectTracker::new();
        for _ in 0..20 {
            tr.step(&ego(), &[det(50.0, 0.0, 0.0, SensorKind::Lidar)], 0.1);
        }
        let before = tr.world_model().objects[0].position.x;
        // Outlier beyond the gate spawns a tentative track instead of
        // corrupting the existing one.
        tr.step(&ego(), &[det(120.0, 0.0, 0.0, SensorKind::Lidar)], 0.1);
        for _ in 0..3 {
            tr.step(&ego(), &[det(50.0, 0.0, 0.0, SensorKind::Lidar)], 0.1);
        }
        let after = tr.world_model().objects[0].position.x;
        assert!((after - before).abs() < 1.0, "track jumped {before} -> {after}");
    }

    #[test]
    fn set_world_model_overrides_publication() {
        let mut tr = MultiObjectTracker::new();
        tr.set_world_model(WorldModel {
            objects: vec![TrackedObject {
                id: TrackId(99),
                position: Vec2::new(1.0, 1.0),
                velocity: Vec2::ZERO,
                extent: Vec2::new(1.0, 1.0),
                truth_id: 7,
            }],
        });
        assert_eq!(tr.world_model().objects[0].id, TrackId(99));
    }
}
