//! Ego pose estimation from GPS and IMU (complementary filter).

use drivefi_kinematics::{Vec2, VehicleState};
use drivefi_sensors::{GpsFix, ImuSample};

/// Fuses IMU dead-reckoning with GPS corrections into an ego pose
/// estimate. This is the localization module of the ADS; its output is
/// part of the internal state `S_t` that DriveFI can corrupt.
#[derive(Debug, Clone)]
pub struct PoseEstimator {
    estimate: VehicleState,
    /// Blend factor toward a fresh GPS fix per update (0..1).
    gps_gain: f64,
    initialized: bool,
}

impl Default for PoseEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl PoseEstimator {
    /// Creates an uninitialized estimator (first GPS fix snaps the pose).
    pub fn new() -> Self {
        PoseEstimator { estimate: VehicleState::default(), gps_gain: 0.2, initialized: false }
    }

    /// The current pose estimate.
    pub fn pose(&self) -> VehicleState {
        self.estimate
    }

    /// True once at least one GPS fix has been absorbed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Overwrites the pose estimate (used by the fault injector to
    /// corrupt localization state, and by tests).
    pub fn set_pose(&mut self, pose: VehicleState) {
        self.estimate = pose;
        self.initialized = true;
    }

    /// Dead-reckons the pose forward by `dt` using an IMU sample.
    pub fn predict(&mut self, imu: &ImuSample, dt: f64) {
        if !self.initialized {
            return;
        }
        let v = imu.speed.max(0.0);
        self.estimate.theta += imu.yaw_rate * dt;
        let dir = Vec2::from_heading(self.estimate.theta);
        self.estimate.x += dir.x * v * dt;
        self.estimate.y += dir.y * v * dt;
        self.estimate.v = v;
    }

    /// Corrects the pose with a GPS fix (complementary blend).
    pub fn correct(&mut self, gps: &GpsFix) {
        if !self.initialized {
            self.estimate.x = gps.position.x;
            self.estimate.y = gps.position.y;
            self.estimate.theta = gps.heading;
            self.initialized = true;
            return;
        }
        let k = self.gps_gain;
        self.estimate.x += k * (gps.position.x - self.estimate.x);
        self.estimate.y += k * (gps.position.y - self.estimate.y);
        // Wrap-aware heading blend.
        let mut dh = gps.heading - self.estimate.theta;
        while dh > std::f64::consts::PI {
            dh -= 2.0 * std::f64::consts::PI;
        }
        while dh < -std::f64::consts::PI {
            dh += 2.0 * std::f64::consts::PI;
        }
        self.estimate.theta += k * dh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(x: f64, y: f64, heading: f64) -> GpsFix {
        GpsFix { position: Vec2::new(x, y), heading }
    }

    #[test]
    fn first_fix_snaps_pose() {
        let mut p = PoseEstimator::new();
        assert!(!p.is_initialized());
        p.correct(&fix(10.0, 2.0, 0.1));
        assert!(p.is_initialized());
        assert_eq!(p.pose().x, 10.0);
        assert_eq!(p.pose().theta, 0.1);
    }

    #[test]
    fn dead_reckoning_advances_along_heading() {
        let mut p = PoseEstimator::new();
        p.correct(&fix(0.0, 0.0, 0.0));
        let imu = ImuSample { speed: 10.0, accel: 0.0, yaw_rate: 0.0 };
        for _ in 0..30 {
            p.predict(&imu, 1.0 / 30.0);
        }
        assert!((p.pose().x - 10.0).abs() < 1e-9);
        assert!(p.pose().y.abs() < 1e-12);
    }

    #[test]
    fn gps_corrections_converge_to_truth() {
        let mut p = PoseEstimator::new();
        p.correct(&fix(0.0, 0.0, 0.0));
        // Biased start, repeated truthful fixes at (5, 5).
        for _ in 0..50 {
            p.correct(&fix(5.0, 5.0, 0.0));
        }
        assert!((p.pose().x - 5.0).abs() < 0.01);
        assert!((p.pose().y - 5.0).abs() < 0.01);
    }

    #[test]
    fn heading_blend_handles_wraparound() {
        let mut p = PoseEstimator::new();
        p.correct(&fix(0.0, 0.0, 3.1));
        p.correct(&fix(0.0, 0.0, -3.1));
        // Should move toward -3.1 the short way (through pi), not via 0.
        assert!(p.pose().theta > 3.1 || p.pose().theta < -3.0);
    }

    #[test]
    fn predict_before_init_is_noop() {
        let mut p = PoseEstimator::new();
        let imu = ImuSample { speed: 10.0, accel: 0.0, yaw_rate: 0.0 };
        p.predict(&imu, 1.0);
        assert_eq!(p.pose().x, 0.0);
    }
}
