//! Perception: localization and multi-object tracking.
//!
//! This crate builds the ADS's **world model** `W_t` (paper Fig. 1): the
//! set of tracked static and dynamic objects, maintained by Kalman-filter
//! sensor fusion over camera/LiDAR/RADAR detections, plus an ego pose
//! estimate fused from GPS and IMU.
//!
//! The paper attributes much of an ADS's *natural fault resilience* to
//! exactly this machinery ("algorithms like extended Kalman filtering for
//! sensor fusion", §II-C): a transiently corrupted detection or state
//! variable is pulled back toward the truth by the next few measurement
//! updates. Reproducing that masking behavior faithfully is what lets the
//! random-FI experiments (E2) come out the way the paper reports.
//!
//! # Example
//!
//! ```
//! use drivefi_perception::MultiObjectTracker;
//!
//! let tracker = MultiObjectTracker::new();
//! assert_eq!(tracker.world_model().objects.len(), 0);
//! ```

pub mod linalg;
pub mod localization;
pub mod tracker;
pub mod world_model;

pub use localization::PoseEstimator;
pub use tracker::{MultiObjectTracker, TrackerConfig};
pub use world_model::{TrackId, TrackedObject, WorldModel};
