//! Property-based equivalence of the in-place tracker publish path.
//!
//! [`MultiObjectTracker::step_into`] writing into an arbitrarily dirty
//! output model must publish bit-identically to what
//! [`MultiObjectTracker::step`] returns on a twin tracker fed the same
//! detection stream — including when the [`set_world_model`] fault seam
//! corrupts the published model between steps, which must never leak
//! into the next step's output on either path.
//!
//! [`set_world_model`]: MultiObjectTracker::set_world_model

use drivefi_kinematics::{Vec2, VehicleState};
use drivefi_perception::{MultiObjectTracker, TrackId, TrackedObject, TrackerConfig, WorldModel};
use drivefi_sensors::{Detection, SensorKind};
use proptest::prelude::*;

fn sensor_kind(tag: u8) -> SensorKind {
    match tag % 3 {
        0 => SensorKind::Camera,
        1 => SensorKind::Lidar,
        _ => SensorKind::Radar,
    }
}

/// One fused detection as the ADS perception stage hands it to the
/// tracker: the raw ego-frame detection plus its world-frame position
/// and velocity.
fn fused(tag: u8, px: f64, py: f64, vx: f64, vy: f64) -> (Detection, Vec2, Vec2) {
    let det = Detection {
        sensor: sensor_kind(tag),
        position: Vec2::new(px, py), // unused by the tracker (world frame rules)
        rel_velocity: Vec2::new(vx, vy),
        extent: Vec2::new(4.0 + f64::from(tag % 4), 1.8),
        truth_id: u32::from(tag),
    };
    (det, Vec2::new(px, py), Vec2::new(vx, vy))
}

/// A garbage model the next publish must fully overwrite.
fn junk_model(n: usize) -> WorldModel {
    WorldModel {
        objects: (0..n)
            .map(|i| TrackedObject {
                id: TrackId(u32::MAX - i as u32),
                position: Vec2::new(f64::NAN, 1e12),
                velocity: Vec2::new(-1e9, f64::MAX),
                extent: Vec2::new(-5.0, -5.0),
                truth_id: u32::MAX,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn step_into_dirty_out_equals_step(
        steps in prop::collection::vec(
            prop::collection::vec(
                (any::<u8>(), 0.0..120.0f64, -8.0..8.0f64, -10.0..10.0f64, -3.0..3.0f64),
                0..5),
            1..25),
        gate in 1.0..10.0f64,
        junk in 0usize..7,
        corrupt_every in 1usize..6,
    ) {
        let config = TrackerConfig { gate, ..TrackerConfig::default() };
        let mut reference = MultiObjectTracker::with_config(config);
        let mut in_place = MultiObjectTracker::with_config(config);
        let ego = VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0);
        let dt = 1.0 / 30.0;

        let mut out = junk_model(junk);
        for (step_idx, batch) in steps.iter().enumerate() {
            let detections: Vec<(Detection, Vec2, Vec2)> = batch
                .iter()
                .map(|&(tag, px, py, vx, vy)| fused(tag, px, py, vx, vy))
                .collect();

            if step_idx % corrupt_every == 0 {
                // DriveFI's perception corruption seam: replace the
                // published model on BOTH trackers. Neither step path
                // may read it back into the next publish.
                reference.set_world_model(junk_model(junk));
                in_place.set_world_model(junk_model(junk));
                // And re-dirty the in-place output buffer itself.
                out = junk_model(junk + 1);
            }

            let want = reference.step(&ego, &detections, dt);
            in_place.step_into(&ego, &detections, dt, &mut out);
            prop_assert_eq!(&out, &want, "step {}", step_idx);
            // `step` also refreshes the tracker's published copy;
            // `step_into` deliberately does not (the caller owns W_t).
            prop_assert_eq!(reference.world_model(), &want);
        }
    }
}
