//! Batched campaign execution: lockstep lane stepping over the
//! struct-of-arrays world sweep, plus golden-prefix sharing.
//!
//! # Lockstep lanes
//!
//! [`BatchSimulation`] steps B independent jobs ("lanes") together. Each
//! base tick runs every lane's sensing → ADS → actuation half scalar
//! (those paths carry per-lane RNG streams and fault interceptors), then
//! advances **all** lane worlds in one [`SoaActors`] sweep. Because forks
//! and retirements happen only at scene boundaries and every scenario's
//! frame count is a multiple of [`BASE_TICKS_PER_SCENE`], lanes always
//! stay scene-aligned.
//!
//! Every lane reproduces the scalar path bit-for-bit: the world sweep is
//! op-identical (pinned in `drivefi-world`), and scene accounting goes
//! through the same `Simulation::eval_scene`. A lane *retires* exactly
//! where `Simulation::run_with` would have returned — end of scenario, or
//! the first collision under `stop_on_collision`. With early exit
//! disabled (test mode), finished lanes keep stepping to full length with
//! their report frozen at the scalar stop point, so early exit can only
//! ever change wall-clock, never results.
//!
//! # Golden-prefix sharing
//!
//! A faulted job is bitwise identical to the golden (fault-free) run of
//! its scenario until the injector first acts — and the injector is a
//! strict no-op before `start_frame − 1` (the Freeze/Hang capture
//! lookahead). `ChunkRunner` exploits this: per scenario it drives one
//! golden *pilot*, snapshots the simulation at the scene boundaries where
//! jobs diverge, and forks each job from its snapshot instead of
//! re-simulating the shared prefix. Golden jobs take the pilot's result
//! verbatim; if the pilot stops at a collision in scene c, any job whose
//! faults cannot act before frame 4c is provably identical and also takes
//! the result verbatim. The pilot is cached across a worker's chunks
//! (keyed by the scenario `Arc`), so scenario-major job streams pay the
//! golden prefix once.

use crate::outcome::RunReport;
use crate::simulation::{RunState, SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use crate::{CampaignJob, CampaignResult};
use drivefi_ads::profiler::{self, TickPhase};
use drivefi_ads::NullInterceptor;
use drivefi_fault::{Fault, Injector};
use drivefi_world::{ScenarioConfig, SoaActors};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Default lane count when the batch width is left on auto.
pub const DEFAULT_BATCH: usize = 32;

/// One in-flight job inside a [`BatchSimulation`].
struct Lane {
    sim: Simulation,
    injector: Injector,
    /// Live accounting; taken when the lane reaches the scalar stop.
    state: Option<RunState>,
    /// The finished result, frozen at the scalar stop point.
    finished: Option<CampaignResult>,
    /// Push order, used to restore submission order on drain.
    key: usize,
    id: u64,
}

impl Lane {
    /// Freezes the lane's report exactly as the scalar loop would have
    /// returned it here.
    fn freeze(&mut self) {
        let state = self.state.take().expect("lane frozen once");
        let mut report = state.into_report(&self.sim);
        report.injections = self.injector.injection_count();
        self.finished = Some(CampaignResult { id: self.id, report });
    }
}

/// Steps a batch of jobs in lockstep over the struct-of-arrays world
/// sweep. See the module docs for the execution model.
pub struct BatchSimulation {
    early_exit: bool,
    soa: SoaActors,
    lanes: Vec<Lane>,
    /// Lanes retire out of `lanes`; results wait here until drained.
    done: Vec<(usize, CampaignResult)>,
    /// Set when batch composition changed and lanes must be re-gathered.
    dirty: bool,
    next_key: usize,
    ticks: u64,
}

impl BatchSimulation {
    /// An empty batch. `early_exit` retires a lane as soon as the scalar
    /// loop would stop; disabling it (test mode) steps every lane to full
    /// scenario length with results frozen at the scalar stop point.
    pub fn new(early_exit: bool) -> Self {
        BatchSimulation {
            early_exit,
            soa: SoaActors::new(),
            lanes: Vec::new(),
            done: Vec::new(),
            dirty: false,
            next_key: 0,
            ticks: 0,
        }
    }

    /// Adds a fresh job lane (fork at scenario start).
    pub fn push_job(
        &mut self,
        config: SimConfig,
        scenario: &ScenarioConfig,
        faults: Vec<Fault>,
        id: u64,
    ) {
        let sim = Simulation::new(config, scenario);
        let state = RunState::new(&sim);
        self.push_lane(sim, Injector::new(faults), state, id);
    }

    /// Adds a lane mid-scenario: a simulation forked from a golden-prefix
    /// snapshot together with the accounting accumulated so far.
    pub(crate) fn push_lane(
        &mut self,
        sim: Simulation,
        injector: Injector,
        state: RunState,
        id: u64,
    ) {
        let key = self.next_key;
        self.next_key += 1;
        if sim.done() {
            // Zero scenes left (degenerate scenario): finish immediately.
            let mut lane = Lane { sim, injector, state: Some(state), finished: None, key, id };
            lane.freeze();
            self.done.push((key, lane.finished.take().expect("frozen")));
            return;
        }
        self.lanes.push(Lane { sim, injector, state: Some(state), finished: None, key, id });
        self.dirty = true;
    }

    /// True when no lanes are still stepping.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Total base ticks stepped across all lanes (the early-exit test's
    /// wall-clock proxy).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances every live lane by one scene (4 base ticks + scene
    /// evaluation), retiring lanes that reach their scalar stop point.
    pub fn step_scene(&mut self) {
        if self.lanes.is_empty() {
            return;
        }
        if self.dirty {
            self.soa.clear();
            for lane in &self.lanes {
                self.soa.attach(lane.sim.world());
            }
            self.dirty = false;
        }
        let dt = self.lanes[0].sim.dt();
        for _ in 0..BASE_TICKS_PER_SCENE {
            for lane in &mut self.lanes {
                lane.sim.pre_world_tick(&mut lane.injector);
            }
            {
                // Sweep every lane's world straight through the lane
                // structs — no per-tick `Vec<&mut World>` gather.
                let probe = profiler::start();
                self.soa.step_each(&mut self.lanes, |lane| &mut lane.sim.world, dt);
                profiler::record(TickPhase::World, probe);
            }
            for lane in &mut self.lanes {
                lane.sim.post_world_tick();
            }
            self.ticks += self.lanes.len() as u64;
        }
        let mut i = 0;
        while i < self.lanes.len() {
            let lane = &mut self.lanes[i];
            if lane.finished.is_none() {
                let stop = {
                    let state = lane.state.as_mut().expect("live lane has accounting");
                    lane.sim.eval_scene(state)
                };
                if stop || lane.sim.done() {
                    lane.freeze();
                }
            }
            let retire = lane.finished.is_some() && (self.early_exit || lane.sim.done());
            if retire {
                let mut lane = self.lanes.swap_remove(i);
                self.done.push((lane.key, lane.finished.take().expect("retired lane is frozen")));
                self.dirty = true;
            } else {
                i += 1;
            }
        }
    }

    /// Steps until every lane has retired and returns the results in push
    /// order.
    pub fn run_to_completion(&mut self) -> Vec<CampaignResult> {
        while !self.is_empty() {
            self.step_scene();
        }
        self.done.sort_by_key(|(key, _)| *key);
        self.next_key = 0;
        self.done.drain(..).map(|(_, result)| result).collect()
    }
}

/// Accounting snapshot taken alongside a pilot simulation snapshot.
struct SceneMark {
    scene: u64,
    sim: Simulation,
    state: RunState,
}

/// A worker's cached golden pilot for one scenario.
struct PilotCache {
    scenario: Arc<ScenarioConfig>,
    /// Live pilot head, extended on demand.
    sim: Simulation,
    state: RunState,
    /// Snapshots at requested fork-scene boundaries, ascending by scene.
    marks: Vec<SceneMark>,
    /// Set once the pilot hit its scalar stop point (collision under
    /// `stop_on_collision`).
    broke: bool,
}

impl PilotCache {
    fn new(config: SimConfig, scenario: &Arc<ScenarioConfig>) -> Self {
        let sim = Simulation::new(config, scenario);
        let state = RunState::new(&sim);
        PilotCache { scenario: Arc::clone(scenario), sim, state, marks: Vec::new(), broke: false }
    }

    /// The scene index the pilot has completed through.
    fn progress(&self) -> u64 {
        self.sim.scene()
    }

    /// True when the pilot cannot advance further (scenario exhausted or
    /// scalar stop reached).
    fn ended(&self) -> bool {
        self.broke || self.sim.done()
    }

    /// Drives the pilot forward until it has passed every scene in
    /// `needs` (snapshotting each as it is reached) and, if `full`, to
    /// the end of the scenario. Stops early at the scalar stop point.
    fn ensure(&mut self, needs: &BTreeSet<u64>, full: bool) {
        let target = needs.iter().next_back().copied();
        loop {
            let here = self.progress();
            if needs.contains(&here) && !self.marks.iter().any(|m| m.scene == here) {
                self.marks.push(SceneMark {
                    scene: here,
                    sim: self.sim.clone(),
                    state: self.state.clone(),
                });
            }
            if self.ended() {
                return;
            }
            let past_needs = target.is_none_or(|t| here >= t);
            if past_needs && !full {
                return;
            }
            for _ in 0..BASE_TICKS_PER_SCENE {
                self.sim.step_tick(&mut NullInterceptor);
            }
            if self.sim.eval_scene(&mut self.state) {
                self.broke = true;
            }
        }
    }

    /// The pilot's own result — what a scalar run of the golden job (or
    /// of any job whose faults cannot act before the pilot's stop point)
    /// returns.
    fn verbatim(&self) -> RunReport {
        self.state.clone().into_report(&self.sim)
    }

    /// Clones the fork snapshot at `scene`, if one was taken. A cached
    /// pilot reused across chunks may already be past a scene it never
    /// snapshotted — the caller falls back to a fresh lane then.
    fn fork(&self, scene: u64) -> Option<(Simulation, RunState)> {
        let mark = self.marks.iter().find(|m| m.scene == scene)?;
        Some((mark.sim.clone(), mark.state.clone()))
    }
}

/// The first frame at which a job's execution can diverge from the
/// golden run: the injector is a strict no-op before
/// `start_frame − 1` (Freeze/Hang snapshot their stage one frame ahead
/// of the window). `None` for golden jobs (never diverge).
fn first_divergent_frame(faults: &[Fault]) -> Option<u64> {
    faults.iter().map(|f| f.window.start_frame.saturating_sub(1)).min()
}

/// A worker's batched chunk executor: groups a chunk's jobs by scenario,
/// shares golden prefixes through a cached pilot, and runs the forked
/// lanes to completion in lockstep.
pub(crate) struct ChunkRunner {
    config: SimConfig,
    cache: Option<PilotCache>,
}

impl ChunkRunner {
    pub(crate) fn new(config: SimConfig) -> Self {
        ChunkRunner { config, cache: None }
    }

    /// Executes every job in `chunk`, returning results in chunk order.
    pub(crate) fn run_chunk(&mut self, chunk: Vec<CampaignJob>) -> Vec<CampaignResult> {
        // Group chunk positions by scenario identity (jobs over one
        // scenario share the `Arc`).
        let mut groups: Vec<(Arc<ScenarioConfig>, Vec<usize>)> = Vec::new();
        for (pos, job) in chunk.iter().enumerate() {
            match groups.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &job.scenario)) {
                Some((_, positions)) => positions.push(pos),
                None => groups.push((Arc::clone(&job.scenario), vec![pos])),
            }
        }

        let mut results: Vec<Option<CampaignResult>> = (0..chunk.len()).map(|_| None).collect();
        for (scenario, positions) in groups {
            let total_frames = scenario.scene_count() as u64 * BASE_TICKS_PER_SCENE;

            // Reuse the cached pilot when the scenario is the same
            // allocation (same dynamics by construction: the sensor seed
            // derives from config ⊕ scenario).
            let reusable = matches!(&self.cache, Some(c) if Arc::ptr_eq(&c.scenario, &scenario));
            if !reusable {
                self.cache = Some(PilotCache::new(self.config, &scenario));
            }
            let cache = self.cache.as_mut().expect("pilot cache just populated");

            // Fork scenes needed by this group's faulted jobs, and
            // whether any job needs the pilot run to full length.
            let mut needs = BTreeSet::new();
            let mut full = false;
            for &pos in &positions {
                match first_divergent_frame(&chunk[pos].faults) {
                    Some(f0) if f0 < total_frames => {
                        needs.insert(f0 / BASE_TICKS_PER_SCENE);
                    }
                    // Golden, or faults that can never act in-window:
                    // the job takes the pilot's full result verbatim.
                    _ => full = true,
                }
            }
            cache.ensure(&needs, full);

            let mut batch = BatchSimulation::new(true);
            let mut batch_positions = Vec::new();
            for &pos in &positions {
                let job = &chunk[pos];
                let fork_scene = first_divergent_frame(&job.faults)
                    .filter(|f0| *f0 < total_frames)
                    .map(|f0| f0 / BASE_TICKS_PER_SCENE);
                match fork_scene {
                    // The job cannot diverge before the pilot's end:
                    // its scalar run is the pilot's run, bit for bit.
                    // (`verbatim` reports zero injections, which is right:
                    // the scalar run stops before any fault window opens.)
                    None => {
                        results[pos] =
                            Some(CampaignResult { id: job.id, report: cache.verbatim() });
                    }
                    Some(scene) if cache.ended() && scene >= cache.progress() => {
                        // Pilot stopped at a collision in an earlier
                        // scene, so this job's faults never get to act.
                        results[pos] =
                            Some(CampaignResult { id: job.id, report: cache.verbatim() });
                    }
                    Some(scene) => match cache.fork(scene) {
                        Some((sim, state)) => {
                            batch.push_lane(sim, Injector::new(job.faults.clone()), state, job.id);
                            batch_positions.push(pos);
                        }
                        // The cached pilot passed this scene in an earlier
                        // chunk without snapshotting it: run the whole job
                        // as a fresh lane (prefix sharing is only an
                        // optimization).
                        None => {
                            let sim = Simulation::new(self.config, &job.scenario);
                            let state = RunState::new(&sim);
                            batch.push_lane(sim, Injector::new(job.faults.clone()), state, job.id);
                            batch_positions.push(pos);
                        }
                    },
                }
            }
            for (pos, result) in batch_positions.into_iter().zip(batch.run_to_completion()) {
                results[pos] = Some(result);
            }
        }
        results.into_iter().map(|r| r.expect("every chunk job produced a result")).collect()
    }
}

/// Chunks a job stream into `Vec`s of at most `size` jobs, preserving
/// order (all chunks are full except possibly the last).
pub(crate) struct Chunks<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Chunks<I> {
    pub(crate) fn new(inner: I, size: usize) -> Self {
        Chunks { inner, size: size.max(1) }
    }
}

impl<I: Iterator> Iterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut chunk = Vec::with_capacity(self.size);
        for item in self.inner.by_ref() {
            chunk.push(item);
            if chunk.len() == self.size {
                break;
            }
        }
        (!chunk.is_empty()).then_some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::Signal;
    use drivefi_fault::{FaultKind, FaultWindow, ScalarFaultModel};

    fn throttle_fault(scene: u64) -> Fault {
        Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::scene(scene),
        }
    }

    fn scalar_reference(config: SimConfig, job: &CampaignJob) -> CampaignResult {
        let mut sim = Simulation::new(config, &job.scenario);
        let mut injector = Injector::new(job.faults.clone());
        let mut report = sim.run_with(&mut injector);
        report.injections = injector.injection_count();
        CampaignResult { id: job.id, report }
    }

    fn assert_results_identical(a: &CampaignResult, b: &CampaignResult) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.report.outcome, b.report.outcome);
        assert_eq!(a.report.min_delta_lon.to_bits(), b.report.min_delta_lon.to_bits());
        assert_eq!(a.report.min_delta_lat.to_bits(), b.report.min_delta_lat.to_bits());
        assert_eq!(a.report.scenes, b.report.scenes);
        assert_eq!(a.report.injections, b.report.injections);
        assert_eq!(a.report.trace, b.report.trace);
    }

    #[test]
    fn chunk_runner_matches_scalar_path() {
        let config = SimConfig::default();
        let scenario = Arc::new(ScenarioConfig::lead_vehicle_cruise(7));
        let other = Arc::new(ScenarioConfig::cut_in(3));
        let mut chunk = Vec::new();
        // Golden, early / mid / late transients, permanent, and a second
        // scenario group in one chunk.
        chunk.push(CampaignJob { id: 0, scenario: Arc::clone(&scenario), faults: vec![] });
        for (i, scene) in [0, 1, 7, 20, 28].into_iter().enumerate() {
            chunk.push(CampaignJob {
                id: 1 + i as u64,
                scenario: Arc::clone(&scenario),
                faults: vec![throttle_fault(scene)],
            });
        }
        chunk.push(CampaignJob {
            id: 10,
            scenario: Arc::clone(&other),
            faults: vec![Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::permanent(40),
            }],
        });
        chunk.push(CampaignJob { id: 11, scenario: Arc::clone(&other), faults: vec![] });

        let mut runner = ChunkRunner::new(config);
        let batched = runner.run_chunk(chunk.clone());
        assert_eq!(batched.len(), chunk.len());
        for (job, result) in chunk.iter().zip(&batched) {
            assert_results_identical(&scalar_reference(config, job), result);
        }
    }

    #[test]
    fn pilot_cache_survives_chunks_and_window_edges() {
        // Fault windows beyond the scenario end, at frame 0, and straddling
        // the end; the second chunk reuses the first chunk's pilot.
        let config = SimConfig::default();
        let scenario = Arc::new(ScenarioConfig::lead_brake(5));
        let frames = scenario.scene_count() as u64 * BASE_TICKS_PER_SCENE;
        let windows = [
            FaultWindow { start_frame: 0, frames: 2 },
            FaultWindow { start_frame: frames - 1, frames: 10 },
            FaultWindow { start_frame: frames, frames: 4 },
            FaultWindow { start_frame: frames + 100, frames: u64::MAX },
        ];
        let jobs: Vec<_> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| CampaignJob {
                id: i as u64,
                scenario: Arc::clone(&scenario),
                faults: vec![Fault {
                    kind: FaultKind::Scalar {
                        signal: Signal::RawThrottle,
                        model: ScalarFaultModel::StuckMax,
                    },
                    window: *w,
                }],
            })
            .collect();
        let mut runner = ChunkRunner::new(config);
        for chunk in jobs.chunks(2) {
            for (job, result) in chunk.iter().zip(runner.run_chunk(chunk.to_vec())) {
                assert_results_identical(&scalar_reference(config, job), &result);
            }
        }
    }

    #[test]
    fn batch_of_fresh_jobs_matches_scalar() {
        let config = SimConfig::default();
        let scenarios: Vec<_> =
            (0..5u64).map(|i| Arc::new(ScenarioConfig::lead_vehicle_cruise(i))).collect();
        let mut batch = BatchSimulation::new(true);
        for (i, s) in scenarios.iter().enumerate() {
            let faults = if i % 2 == 0 { vec![] } else { vec![throttle_fault(5 * i as u64)] };
            batch.push_job(config, s, faults, i as u64);
        }
        let results = batch.run_to_completion();
        for (i, s) in scenarios.iter().enumerate() {
            let faults = if i % 2 == 0 { vec![] } else { vec![throttle_fault(5 * i as u64)] };
            let job = CampaignJob { id: i as u64, scenario: Arc::clone(s), faults };
            assert_results_identical(&scalar_reference(config, &job), &results[i]);
        }
    }

    #[test]
    fn early_exit_changes_only_wall_clock() {
        // Faults that rear-end a braking lead: with early exit a colliding
        // lane retires at the scalar stop point; without it the lane keeps
        // stepping to full scenario length with its report frozen. The
        // results must be identical either way — only `ticks()` moves.
        let config = SimConfig::default();
        let scenario = ScenarioConfig::lead_brake(3);
        let runaway = vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::permanent(8),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::permanent(8),
            },
        ];

        let run = |early_exit: bool| {
            let mut batch = BatchSimulation::new(early_exit);
            batch.push_job(config, &scenario, runaway.clone(), 0);
            batch.push_job(config, &scenario, vec![], 1);
            (batch.run_to_completion(), batch.ticks())
        };
        let (eager, ticks_eager) = run(true);
        let (full, ticks_full) = run(false);

        assert!(
            eager[0].report.outcome.is_collision(),
            "runaway throttle into a braking lead must collide: {:?}",
            eager[0].report.outcome
        );
        for (a, b) in eager.iter().zip(&full) {
            assert_results_identical(a, b);
        }
        // The colliding lane stopped early only in eager mode.
        assert!(
            ticks_eager < ticks_full,
            "early exit saved no ticks ({ticks_eager} vs {ticks_full})"
        );
        // Both must also match the scalar path.
        let jobs = [
            CampaignJob { id: 0, scenario: Arc::new(scenario.clone()), faults: runaway.clone() },
            CampaignJob { id: 1, scenario: Arc::new(scenario.clone()), faults: vec![] },
        ];
        for (job, result) in jobs.iter().zip(&eager) {
            assert_results_identical(&scalar_reference(config, job), result);
        }
    }

    #[test]
    fn chunks_preserve_order_and_fill() {
        let chunks: Vec<_> = Chunks::new(0..7, 3).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
        assert_eq!(Chunks::new(0..0, 3).count(), 0);
    }
}
