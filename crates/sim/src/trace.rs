//! Per-scene trace records — the training data for the Bayesian network.

use drivefi_kinematics::{Actuation, SafetyPotential, VehicleState};

/// One record per **scene** (7.5 Hz frame): the ADS-visible variables
/// (`W_t`, `M_t`, `U_A,t`, `A_t`) plus ground truth for evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Scene index within the scenario.
    pub scene: u64,
    /// Simulation time \[s\].
    pub time: f64,
    /// Ground-truth ego state.
    pub ego: VehicleState,
    /// ADS pose estimate (part of `S_t`).
    pub pose: VehicleState,
    /// Measured speed `M_t` \[m/s\].
    pub imu_speed: f64,
    /// Measured acceleration `M_t` \[m/s²\].
    pub imu_accel: f64,
    /// Perceived lead-object distance (`W_t`), if a lead exists \[m\].
    pub lead_distance: Option<f64>,
    /// Perceived lead-object speed (`W_t`), if a lead exists \[m/s\].
    pub lead_speed: Option<f64>,
    /// Raw actuation `U_A,t`.
    pub raw_cmd: Actuation,
    /// Final actuation `A_t`.
    pub final_cmd: Actuation,
    /// Perceived safety potential (planner view).
    pub delta_perceived: SafetyPotential,
    /// Ground-truth safety potential (hazard-monitor view).
    pub delta_true: SafetyPotential,
}

/// The scene-rate trace of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Scenario id this trace belongs to.
    pub scenario_id: u32,
    /// Scene records in order.
    pub frames: Vec<FrameRecord>,
}

impl Trace {
    /// Scenes with positive ground-truth δ — the candidate injection
    /// points for the mining engine (Eq. 1 requires the pre-fault state
    /// to be safe).
    pub fn safe_scenes(&self) -> impl Iterator<Item = &FrameRecord> {
        self.frames.iter().filter(|f| f.delta_true.is_safe())
    }

    /// Writes the trace as CSV (for the δ-timeline figures).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scene,time,ego_x,ego_v,pose_v,lead_distance,lead_speed,raw_throttle,raw_brake,\
             raw_steering,throttle,brake,steering,delta_lon_true,delta_lat_true,\
             delta_lon_perceived\n",
        );
        for f in &self.frames {
            out.push_str(&format!(
                "{},{:.3},{:.2},{:.3},{:.3},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3},{:.3},{:.3}\n",
                f.scene,
                f.time,
                f.ego.x,
                f.ego.v,
                f.pose.v,
                f.lead_distance.map_or(String::from(""), |v| format!("{v:.2}")),
                f.lead_speed.map_or(String::from(""), |v| format!("{v:.2}")),
                f.raw_cmd.throttle,
                f.raw_cmd.brake,
                f.raw_cmd.steering,
                f.final_cmd.throttle,
                f.final_cmd.brake,
                f.final_cmd.steering,
                f.delta_true.longitudinal,
                f.delta_true.lateral,
                f.delta_perceived.longitudinal,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scene: u64, delta_lon: f64) -> FrameRecord {
        FrameRecord {
            scene,
            time: scene as f64 / 7.5,
            ego: VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0),
            pose: VehicleState::new(0.0, 0.0, 30.0, 0.0, 0.0),
            imu_speed: 30.0,
            imu_accel: 0.0,
            lead_distance: Some(50.0),
            lead_speed: Some(28.0),
            raw_cmd: Actuation::default(),
            final_cmd: Actuation::default(),
            delta_perceived: SafetyPotential { longitudinal: delta_lon, lateral: 0.5 },
            delta_true: SafetyPotential { longitudinal: delta_lon, lateral: 0.5 },
        }
    }

    #[test]
    fn safe_scenes_filters_by_delta() {
        let trace = Trace {
            scenario_id: 0,
            frames: vec![record(0, 10.0), record(1, -1.0), record(2, 5.0)],
        };
        let safe: Vec<u64> = trace.safe_scenes().map(|f| f.scene).collect();
        assert_eq!(safe, vec![0, 2]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let trace = Trace { scenario_id: 0, frames: vec![record(0, 10.0)] };
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("scene,time"));
        assert!(csv.contains("50.00"));
    }
}
