//! The workspace's one thread fan-out primitive.
//!
//! Every parallel campaign, mining shard, and validation sweep in the
//! workspace funnels through [`stream_map`]: a fixed pool of scoped
//! worker threads pulling tasks from a shared iterator and streaming
//! results back over a bounded channel. Centralizing the fan-out here
//! keeps worker-count policy ([`default_workers`]), backpressure, and
//! panic propagation in one place — no other crate spawns campaign
//! threads.

use std::sync::mpsc;
use std::sync::Mutex;

/// The workspace-wide default worker count: one per available hardware
/// thread, falling back to 8 when parallelism cannot be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(8, |n| n.get())
}

/// Runs every task from `tasks` on a pool of `workers` scoped threads
/// and streams results to `each` **on the caller's thread**, in
/// completion order, tagged with the task's submission index.
///
/// * `tasks` is consumed lazily: a worker pulls the next task only when
///   it goes idle, so an exhaustive cross-product source never has to be
///   materialized up front.
/// * `init` builds one context per worker (an arena reused across that
///   worker's tasks).
/// * The result channel is bounded, so a slow consumer back-pressures
///   the workers instead of buffering unboundedly.
///
/// # Panics
///
/// Propagates worker panics to the caller (via scoped-thread join).
pub fn stream_map<I, T, R, C, IF, F, E>(tasks: I, workers: usize, init: IF, run: F, mut each: E)
where
    I: IntoIterator<Item = T>,
    I::IntoIter: Send,
    T: Send,
    R: Send,
    IF: Fn() -> C + Sync,
    F: Fn(&mut C, T) -> R + Sync,
    E: FnMut(u64, R),
{
    let workers = workers.max(1);
    // Fused: Iterator::next after None is otherwise unspecified, and the
    // pool polls the shared source once per worker after exhaustion.
    let source = Mutex::new(tasks.into_iter().fuse().enumerate());
    let (tx, rx) = mpsc::sync_channel::<(u64, R)>(2 * workers);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let source = &source;
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                let mut ctx = init();
                loop {
                    let next = source.lock().expect("task source poisoned").next();
                    let Some((index, task)) = next else { break };
                    let result = run(&mut ctx, task);
                    // The receiver only disconnects when the consumer
                    // side is done (it drains until all senders drop), so
                    // a send error just means there is nothing left to do.
                    if tx.send((index as u64, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            each(index, result);
        }
    });
}

/// Submission-indexed result buffer: the shared order-restoring core of
/// [`parallel_map`] and the collecting campaign sinks.
#[derive(Debug)]
pub(crate) struct IndexedSlots<T> {
    slots: Vec<Option<T>>,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for IndexedSlots<T> {
    fn default() -> Self {
        IndexedSlots::new()
    }
}

impl<T> IndexedSlots<T> {
    pub(crate) fn new() -> Self {
        IndexedSlots { slots: Vec::new() }
    }

    /// Stores `value` (possibly absent) at submission index `index`.
    pub(crate) fn set(&mut self, index: u64, value: Option<T>) {
        let index = index as usize;
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, || None);
        }
        self.slots[index] = value;
    }

    /// Stores `value` at submission index `index`.
    pub(crate) fn put(&mut self, index: u64, value: T) {
        self.set(index, Some(value));
    }

    /// The values in submission order, panicking with `missing` on gaps.
    pub(crate) fn into_vec(self, missing: &str) -> Vec<T> {
        self.slots.into_iter().map(|slot| slot.expect(missing)).collect()
    }
}

/// [`stream_map`] with results restored to submission order — the
/// drop-in parallel version of `tasks.map(f).collect()`.
pub fn parallel_map<I, T, R, F>(tasks: I, workers: usize, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    I::IntoIter: Send,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut slots = IndexedSlots::new();
    stream_map(tasks, workers, || (), |(), task| f(task), |index, result| slots.put(index, result));
    slots.into_vec("every task produces a result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn parallel_map_restores_submission_order() {
        for workers in [1, 2, 8] {
            let out = parallel_map(0..100u64, workers, |x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stream_map_sees_every_index_once() {
        let mut seen = vec![0usize; 50];
        stream_map(
            0..50usize,
            4,
            || (),
            |(), x| x,
            |i, x| {
                assert_eq!(i as usize, x);
                seen[x] += 1;
            },
        );
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn worker_contexts_are_reused_within_a_worker() {
        // With one worker, a single context must serve every task.
        let mut counts = Vec::new();
        stream_map(
            0..10,
            1,
            || 0u64,
            |ctx, _task| {
                *ctx += 1;
                *ctx
            },
            |_i, c| counts.push(c),
        );
        counts.sort_unstable();
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn lazy_sources_are_not_materialized() {
        // An effectively unbounded source works as long as the consumer
        // stops the world by bounding the job count upstream.
        let taken = (0..u64::MAX).take(100);
        let out = parallel_map(taken, 4, |x| x);
        assert_eq!(out.len(), 100);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        stream_map(
            0..4,
            2,
            || (),
            |(), x: i32| {
                assert!(x < 2, "boom");
                x
            },
            |_, _| {},
        );
    }
}
