//! Traffic-rule safety monitoring — the paper's "extended notions of
//! safety".
//!
//! §II-B of the paper defines safety purely by collision avoidance
//! (`δ > 0`) and explicitly defers "extended notions of safety, e.g.,
//! using traffic rules" to future work because they are jurisdiction-
//! dependent. This module implements that extension for a representative
//! U.S.-freeway rule set, so fault campaigns can report *rule violations*
//! alongside δ-hazards: a fault that makes the ego speed, tailgate, drift
//! out of lane, or brake-check its followers is operationally unsafe even
//! when no collision course develops.
//!
//! Violations are counted as **episodes**: a rule opens an episode on the
//! first offending scene and closes it when the condition clears, so a
//! 10-scene speeding excursion counts once (with its duration and peak
//! recorded) instead of ten times.

use drivefi_kinematics::{VehicleParams, VehicleState};
use drivefi_world::Road;

/// The monitored rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Ego speed above the posted limit.
    SpeedLimit,
    /// Time headway to the lead vehicle below the minimum.
    Headway,
    /// Ego body crossing its lane boundary.
    LaneKeeping,
    /// Longitudinal deceleration beyond the comfort/harshness bound.
    HarshBraking,
    /// Lateral acceleration beyond the harshness bound.
    HarshSteering,
}

impl RuleKind {
    /// All rules, in reporting order.
    pub const ALL: [RuleKind; 5] = [
        RuleKind::SpeedLimit,
        RuleKind::Headway,
        RuleKind::LaneKeeping,
        RuleKind::HarshBraking,
        RuleKind::HarshSteering,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::SpeedLimit => "speed_limit",
            RuleKind::Headway => "headway",
            RuleKind::LaneKeeping => "lane_keeping",
            RuleKind::HarshBraking => "harsh_braking",
            RuleKind::HarshSteering => "harsh_steering",
        }
    }

    fn index(self) -> usize {
        match self {
            RuleKind::SpeedLimit => 0,
            RuleKind::Headway => 1,
            RuleKind::LaneKeeping => 2,
            RuleKind::HarshBraking => 3,
            RuleKind::HarshSteering => 4,
        }
    }
}

/// One closed violation episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleViolation {
    /// The violated rule.
    pub rule: RuleKind,
    /// Scene index at which the episode opened.
    pub start_scene: u64,
    /// Number of consecutive offending scenes.
    pub scenes: u64,
    /// Worst measured value during the episode (speed, headway, …).
    pub peak: f64,
    /// The configured limit the measurement is judged against.
    pub limit: f64,
}

/// Rule thresholds. Defaults model a U.S. freeway: 65 mph ≈ 29 m/s
/// posted limit with the usual ~75 mph flow tolerance, a 1-second
/// minimum headway (half the recommended two-second rule — below one
/// second is citable following-too-closely almost everywhere), and
/// harshness bounds from naturalistic-driving studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleConfig {
    /// Maximum lawful speed \[m/s\].
    pub speed_limit: f64,
    /// Tolerance above the limit before an episode opens \[m/s\].
    pub speed_tolerance: f64,
    /// Minimum time headway \[s\].
    pub min_headway: f64,
    /// Headway is only judged above this speed \[m/s\] (crawling queues
    /// legitimately run sub-second headways).
    pub headway_min_speed: f64,
    /// Harsh-braking bound \[m/s²\] (deceleration, positive).
    pub max_decel: f64,
    /// Harsh-steering lateral-acceleration bound \[m/s²\].
    pub max_lat_accel: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            speed_limit: 33.5,
            speed_tolerance: 0.5,
            min_headway: 1.0,
            headway_min_speed: 5.0,
            max_decel: 4.0,
            max_lat_accel: 3.5,
        }
    }
}

/// Per-rule episode counts plus scene totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleSummary {
    /// Episode count per rule, indexed like [`RuleKind::ALL`].
    pub episodes: [u64; 5],
    /// Total offending scenes per rule.
    pub scenes: [u64; 5],
    /// Scenes observed.
    pub observed_scenes: u64,
}

impl RuleSummary {
    /// Episode count for one rule.
    pub fn count(&self, rule: RuleKind) -> u64 {
        self.episodes[rule.index()]
    }

    /// Total episodes across all rules.
    pub fn total(&self) -> u64 {
        self.episodes.iter().sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenEpisode {
    start_scene: u64,
    scenes: u64,
    peak: f64,
}

/// The per-scene rule monitor. Feed it ground truth once per scene via
/// [`RuleMonitor::observe_scene`]; closed episodes accumulate in
/// [`RuleMonitor::violations`].
///
/// # Example
///
/// ```
/// use drivefi_sim::rules::{RuleConfig, RuleMonitor};
/// use drivefi_kinematics::{VehicleParams, VehicleState};
/// use drivefi_world::Road;
///
/// let mut monitor = RuleMonitor::new(RuleConfig::default(), VehicleParams::default());
/// let road = Road::default_highway();
/// let speeding = VehicleState::new(0.0, 0.0, 40.0, 0.0, 0.0);
/// for scene in 0..5 {
///     monitor.observe_scene(scene, &speeding, None, &road, 4.0 / 30.0);
/// }
/// let summary = monitor.finish();
/// assert_eq!(summary.count(drivefi_sim::rules::RuleKind::SpeedLimit), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RuleMonitor {
    config: RuleConfig,
    vehicle: VehicleParams,
    open: [Option<OpenEpisode>; 5],
    violations: Vec<RuleViolation>,
    summary: RuleSummary,
    prev_speed: Option<f64>,
}

impl RuleMonitor {
    /// Creates a monitor.
    pub fn new(config: RuleConfig, vehicle: VehicleParams) -> Self {
        RuleMonitor {
            config,
            vehicle,
            open: [None; 5],
            violations: Vec::new(),
            summary: RuleSummary::default(),
            prev_speed: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RuleConfig {
        &self.config
    }

    /// Closed episodes so far.
    pub fn violations(&self) -> &[RuleViolation] {
        &self.violations
    }

    fn update(&mut self, rule: RuleKind, scene: u64, offending: bool, measure: f64, limit: f64) {
        let slot = &mut self.open[rule.index()];
        match (offending, slot.as_mut()) {
            (true, None) => {
                *slot = Some(OpenEpisode { start_scene: scene, scenes: 1, peak: measure });
                self.summary.scenes[rule.index()] += 1;
            }
            (true, Some(ep)) => {
                ep.scenes += 1;
                // "Worse" depends on direction; callers pass measures
                // oriented so larger = worse.
                if measure > ep.peak {
                    ep.peak = measure;
                }
                self.summary.scenes[rule.index()] += 1;
            }
            (false, Some(_)) => {
                let ep = slot.take().expect("checked Some");
                self.summary.episodes[rule.index()] += 1;
                self.violations.push(RuleViolation {
                    rule,
                    start_scene: ep.start_scene,
                    scenes: ep.scenes,
                    peak: ep.peak,
                    limit,
                });
            }
            (false, None) => {}
        }
    }

    /// Observes one scene of ground truth.
    ///
    /// `lead` is the ground-truth `(bumper gap, lead speed)` from
    /// [`drivefi_world::World::ego_lead`]; `dt` is the scene period.
    pub fn observe_scene(
        &mut self,
        scene: u64,
        ego: &VehicleState,
        lead: Option<(f64, f64)>,
        road: &Road,
        dt: f64,
    ) {
        self.summary.observed_scenes += 1;
        let cfg = self.config;

        // Speeding (larger = worse).
        let speeding = ego.v > cfg.speed_limit + cfg.speed_tolerance;
        self.update(RuleKind::SpeedLimit, scene, speeding, ego.v, cfg.speed_limit);

        // Headway: judged as a shortfall so larger = worse.
        let headway =
            lead.filter(|_| ego.v > cfg.headway_min_speed).map(|(gap, _)| gap.max(0.0) / ego.v);
        let (hw_offending, hw_measure) = match headway {
            Some(h) if h < cfg.min_headway => (true, cfg.min_headway - h),
            _ => (false, 0.0),
        };
        self.update(RuleKind::Headway, scene, hw_offending, hw_measure, cfg.min_headway);

        // Lane keeping: body excursion past the lane boundary (larger =
        // worse).
        let half_width = self.vehicle.width / 2.0;
        let lane = road.lane_at(ego.y);
        let excursion = (ego.y + half_width - lane.left_boundary())
            .max(lane.right_boundary() - (ego.y - half_width));
        self.update(RuleKind::LaneKeeping, scene, excursion > 0.0, excursion, 0.0);

        // Harsh braking from the speed delta between scenes.
        if let Some(prev) = self.prev_speed {
            let decel = (prev - ego.v) / dt;
            self.update(RuleKind::HarshBraking, scene, decel > cfg.max_decel, decel, cfg.max_decel);
        }
        self.prev_speed = Some(ego.v);

        // Harsh steering: kinematic lateral acceleration v²·tan(φ)/L.
        let lat_accel = ego.v * ego.v * ego.phi.tan().abs() / self.vehicle.wheelbase;
        self.update(
            RuleKind::HarshSteering,
            scene,
            lat_accel > cfg.max_lat_accel,
            lat_accel,
            cfg.max_lat_accel,
        );
    }

    /// Closes any open episodes and returns the summary. Call once at the
    /// end of the run.
    pub fn finish(&mut self) -> RuleSummary {
        for rule in RuleKind::ALL {
            // Closing with a non-offending observation at a synthetic
            // scene; measure/limit are taken from the open episode.
            if let Some(ep) = self.open[rule.index()].take() {
                self.summary.episodes[rule.index()] += 1;
                self.violations.push(RuleViolation {
                    rule,
                    start_scene: ep.start_scene,
                    scenes: ep.scenes,
                    peak: ep.peak,
                    limit: match rule {
                        RuleKind::SpeedLimit => self.config.speed_limit,
                        RuleKind::Headway => self.config.min_headway,
                        RuleKind::LaneKeeping => 0.0,
                        RuleKind::HarshBraking => self.config.max_decel,
                        RuleKind::HarshSteering => self.config.max_lat_accel,
                    },
                });
            }
        }
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 4.0 / 30.0;

    fn monitor() -> RuleMonitor {
        RuleMonitor::new(RuleConfig::default(), VehicleParams::default())
    }

    fn centered(v: f64) -> VehicleState {
        VehicleState::new(0.0, 0.0, v, 0.0, 0.0)
    }

    #[test]
    fn clean_driving_has_no_violations() {
        let mut m = monitor();
        let road = Road::default_highway();
        for scene in 0..50 {
            m.observe_scene(scene, &centered(30.0), Some((60.0, 30.0)), &road, DT);
        }
        let s = m.finish();
        assert_eq!(s.total(), 0);
        assert_eq!(s.observed_scenes, 50);
    }

    #[test]
    fn sustained_speeding_is_one_episode() {
        let mut m = monitor();
        let road = Road::default_highway();
        for scene in 0..10 {
            m.observe_scene(scene, &centered(40.0), None, &road, DT);
        }
        for scene in 10..20 {
            m.observe_scene(scene, &centered(30.0), None, &road, DT);
        }
        let s = m.finish();
        assert_eq!(s.count(RuleKind::SpeedLimit), 1);
        let v = m.violations()[0];
        assert_eq!(v.start_scene, 0);
        assert_eq!(v.scenes, 10);
        assert!((v.peak - 40.0).abs() < 1e-9);
    }

    #[test]
    fn two_excursions_are_two_episodes() {
        let mut m = monitor();
        let road = Road::default_highway();
        for scene in 0..20u64 {
            let v = if (5..8).contains(&scene) || (12..15).contains(&scene) { 36.0 } else { 30.0 };
            m.observe_scene(scene, &centered(v), None, &road, DT);
        }
        assert_eq!(m.finish().count(RuleKind::SpeedLimit), 2);
    }

    #[test]
    fn tailgating_is_flagged_above_min_speed_only() {
        let mut m = monitor();
        let road = Road::default_highway();
        // 20 m at 30 m/s → 0.67 s headway: violation.
        m.observe_scene(0, &centered(30.0), Some((20.0, 30.0)), &road, DT);
        // Same gap while crawling: not judged.
        m.observe_scene(1, &centered(2.0), Some((20.0, 2.0)), &road, DT);
        let s = m.finish();
        assert_eq!(s.count(RuleKind::Headway), 1);
        assert_eq!(s.scenes[RuleKind::Headway.index()], 1);
    }

    #[test]
    fn lane_departure_is_flagged() {
        let mut m = monitor();
        let road = Road::default_highway();
        // Default lane width 3.7 m, car width ~1.9 m → |y| beyond ~0.9 m
        // crosses the boundary.
        let mut drifted = centered(30.0);
        drifted.y = 1.5;
        m.observe_scene(0, &drifted, None, &road, DT);
        m.observe_scene(1, &centered(30.0), None, &road, DT);
        assert_eq!(m.finish().count(RuleKind::LaneKeeping), 1);
    }

    #[test]
    fn emergency_stop_triggers_harsh_braking() {
        let mut m = monitor();
        let road = Road::default_highway();
        let mut v = 30.0;
        for scene in 0..10 {
            m.observe_scene(scene, &centered(v), None, &road, DT);
            v = (v - 8.0 * DT).max(0.0); // 8 m/s² panic stop
        }
        let s = m.finish();
        assert_eq!(s.count(RuleKind::HarshBraking), 1);
    }

    #[test]
    fn hard_steer_at_speed_is_harsh() {
        let mut m = monitor();
        let road = Road::default_highway();
        let mut state = centered(30.0);
        state.phi = 0.05; // ~1.6 m/s² at 30 m/s... scale up:
        state.phi = 0.15;
        m.observe_scene(0, &state, None, &road, DT);
        m.observe_scene(1, &centered(30.0), None, &road, DT);
        assert_eq!(m.finish().count(RuleKind::HarshSteering), 1);
    }

    #[test]
    fn finish_closes_open_episodes() {
        let mut m = monitor();
        let road = Road::default_highway();
        for scene in 0..5 {
            m.observe_scene(scene, &centered(40.0), None, &road, DT);
        }
        // Episode still open at finish.
        let s = m.finish();
        assert_eq!(s.count(RuleKind::SpeedLimit), 1);
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].scenes, 5);
    }

    #[test]
    fn rule_names_are_stable() {
        for rule in RuleKind::ALL {
            assert!(!rule.name().is_empty());
        }
        assert_eq!(RuleKind::SpeedLimit.name(), "speed_limit");
    }
}
