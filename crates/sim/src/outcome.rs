//! Run outcomes: the hazard taxonomy of the paper.

use crate::trace::Trace;

/// The safety outcome of one simulated run.
///
/// The paper classifies an injected fault as **hazardous** when it drives
/// the (ground-truth) safety potential to `δ ≤ 0`; an actual geometric
/// **collision** is the worst case (loss of property or life, §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// δ stayed positive in both directions for the whole run.
    Safe,
    /// δ ≤ 0 occurred (first at `scene`) but no collision followed.
    Hazard {
        /// Scene (7.5 Hz frame) index of the first violation.
        scene: u64,
    },
    /// The ego body overlapped another actor.
    Collision {
        /// Scene index of the impact.
        scene: u64,
        /// Ground-truth id of the struck actor.
        actor: u32,
    },
}

impl Outcome {
    /// True when no safety violation occurred.
    pub fn is_safe(&self) -> bool {
        matches!(self, Outcome::Safe)
    }

    /// True for hazard or collision.
    pub fn is_hazardous(&self) -> bool {
        !self.is_safe()
    }

    /// True for a collision.
    pub fn is_collision(&self) -> bool {
        matches!(self, Outcome::Collision { .. })
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Safe => write!(f, "safe"),
            Outcome::Hazard { scene } => write!(f, "hazard@scene{scene}"),
            Outcome::Collision { scene, actor } => {
                write!(f, "collision@scene{scene} with actor{actor}")
            }
        }
    }
}

/// Everything a simulated run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Safety classification.
    pub outcome: Outcome,
    /// Minimum ground-truth longitudinal δ over the run \[m\].
    pub min_delta_lon: f64,
    /// Minimum ground-truth lateral δ over the run \[m\].
    pub min_delta_lat: f64,
    /// Number of scenes simulated.
    pub scenes: u64,
    /// Number of individual corruptions the injector performed.
    pub injections: u64,
    /// Per-scene trace, when recording was enabled.
    pub trace: Option<Trace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Safe.is_safe());
        assert!(!Outcome::Safe.is_hazardous());
        let h = Outcome::Hazard { scene: 3 };
        assert!(h.is_hazardous() && !h.is_collision());
        let c = Outcome::Collision { scene: 5, actor: 1 };
        assert!(c.is_hazardous() && c.is_collision());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Safe.to_string(), "safe");
        assert_eq!(Outcome::Hazard { scene: 9 }.to_string(), "hazard@scene9");
        assert_eq!(
            Outcome::Collision { scene: 2, actor: 7 }.to_string(),
            "collision@scene2 with actor7"
        );
    }
}
