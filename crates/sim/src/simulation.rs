//! The closed loop: world ↔ sensors ↔ ADS ↔ vehicle dynamics.

use crate::outcome::{Outcome, RunReport};
use crate::trace::{FrameRecord, Trace};
use drivefi_ads::profiler::{self, TickPhase};
use drivefi_ads::{AdsConfig, AdsStack, BusInterceptor, NullInterceptor, Signal};
use drivefi_kinematics::{BicycleModel, SafetyPotential, VehicleState};
use drivefi_sensors::SensorSuite;
use drivefi_world::{scenario::ScenarioConfig, ActorKind, World};

/// Base ticks (30 Hz) per scene (7.5 Hz) — the paper's discretization.
/// Aliases the fault layer's constant so scene-based fault windows
/// ([`drivefi_fault::WindowSpec`]) and the simulator's scene clock can
/// never disagree.
pub const BASE_TICKS_PER_SCENE: u64 = drivefi_fault::space::TICKS_PER_SCENE;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// ADS configuration (including ablation switches).
    pub ads: AdsConfig,
    /// Seed for sensor noise (scenario seed is XOR-ed in).
    pub sensor_seed: u64,
    /// Record a per-scene trace.
    pub record_trace: bool,
    /// Stop the run at the first collision (campaigns) or keep going
    /// (trace collection).
    pub stop_on_collision: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ads: AdsConfig::default(),
            sensor_seed: 0x0D21_4EF1,
            record_trace: false,
            stop_on_collision: true,
        }
    }
}

/// A closed-loop simulation of one scenario.
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) config: SimConfig,
    pub(crate) world: World,
    sensors: SensorSuite,
    ads: AdsStack,
    vehicle: BicycleModel,
    ego: VehicleState,
    pub(crate) frame: u64,
    pub(crate) total_frames: u64,
    scenario_id: u32,
}

/// Per-run accounting (outcome, running min-δ, optional trace), factored
/// out of the scalar loop so the batched runner shares the *same*
/// evaluation code — scene accounting cannot diverge between the two
/// paths.
#[derive(Debug, Clone)]
pub(crate) struct RunState {
    pub(crate) outcome: Outcome,
    pub(crate) min_lon: f64,
    pub(crate) min_lat: f64,
    pub(crate) trace: Option<Trace>,
}

impl RunState {
    /// Fresh accounting for a run of `sim`.
    pub(crate) fn new(sim: &Simulation) -> Self {
        RunState {
            outcome: Outcome::Safe,
            min_lon: f64::INFINITY,
            min_lat: f64::INFINITY,
            trace: sim.config.record_trace.then(|| Trace {
                scenario_id: sim.scenario_id,
                frames: Vec::with_capacity((sim.total_frames / BASE_TICKS_PER_SCENE) as usize),
            }),
        }
    }

    /// Finalizes into a report (injections are filled in by the caller).
    pub(crate) fn into_report(self, sim: &Simulation) -> RunReport {
        RunReport {
            outcome: self.outcome,
            min_delta_lon: self.min_lon,
            min_delta_lat: self.min_lat,
            scenes: sim.scene(),
            injections: 0,
            trace: self.trace,
        }
    }
}

impl Simulation {
    /// Builds the closed loop for a scenario.
    pub fn new(config: SimConfig, scenario: &ScenarioConfig) -> Self {
        let mut world = World::from_scenario(scenario);
        world.set_ego(scenario.ego_start, ActorKind::Car.dims());
        let sensors = SensorSuite::with_seed(config.sensor_seed ^ scenario.seed);
        let ads = AdsStack::with_road(config.ads, scenario.ego_set_speed, scenario.road.clone());
        Simulation {
            config,
            world,
            sensors,
            ads,
            vehicle: BicycleModel::new(config.ads.vehicle),
            ego: scenario.ego_start,
            frame: 0,
            total_frames: scenario.scene_count() as u64 * BASE_TICKS_PER_SCENE,
            scenario_id: scenario.id,
        }
    }

    /// Resets the closed loop in place for a new scenario, reusing the
    /// existing allocations — world actor storage, the tracker's track
    /// vectors, the bus world model, the road's lane vector — instead of
    /// reconstructing any module. This is the campaign engine's
    /// per-worker arena path: a worker builds one `Simulation` and
    /// resets it between jobs. Behavior after a reset is identical to
    /// [`Simulation::new`] with the same config and scenario (the
    /// `arena_reset_traces_equal_fresh_build` test pins trace-level
    /// equality).
    pub fn reset(&mut self, scenario: &ScenarioConfig) {
        self.world.reset_from_scenario(scenario);
        self.world.set_ego(scenario.ego_start, ActorKind::Car.dims());
        // Park the bus frame's detection buffers back in the suite's
        // spare pool before the bus reset would drop them: sampling
        // stays allocation-free across job boundaries too.
        self.sensors.reclaim_frame(&mut self.ads.bus.sensors);
        self.sensors.reseed(self.config.sensor_seed ^ scenario.seed);
        self.ads.reset(scenario.ego_set_speed, &scenario.road);
        self.vehicle = BicycleModel::new(self.config.ads.vehicle);
        self.ego = scenario.ego_start;
        self.frame = 0;
        self.total_frames = scenario.scene_count() as u64 * BASE_TICKS_PER_SCENE;
        self.scenario_id = scenario.id;
    }

    /// Ground-truth ego state.
    pub fn ego(&self) -> &VehicleState {
        &self.ego
    }

    /// The world (for inspection).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The ADS stack (for inspection).
    pub fn ads(&self) -> &AdsStack {
        &self.ads
    }

    /// Current scene index.
    pub fn scene(&self) -> u64 {
        self.frame / BASE_TICKS_PER_SCENE
    }

    /// True once every frame of the scenario has been stepped.
    pub(crate) fn done(&self) -> bool {
        self.frame >= self.total_frames
    }

    /// Base tick duration \[s\].
    pub(crate) fn dt(&self) -> f64 {
        1.0 / self.config.ads.tick_hz
    }

    /// The sensing → ADS → actuation half of a base tick: everything up
    /// to (but excluding) the world step. The batched runner calls this
    /// per lane and then advances all lane worlds in one SoA sweep.
    pub(crate) fn pre_world_tick<I: BusInterceptor + ?Sized>(&mut self, interceptor: &mut I) {
        let dt = self.dt();
        // Sample straight into the bus frame: the same detection buffers
        // carry every tick of the run, so the sensing → ADS half of the
        // loop never touches the heap in the steady state.
        let probe = profiler::start();
        self.sensors.sample_into(&self.world, self.frame, &mut self.ads.bus.sensors);
        profiler::record(TickPhase::Sense, probe);
        let actuation = self.ads.tick_in_place(self.frame, interceptor);
        let probe = profiler::start();
        self.ego = self.vehicle.step(&self.ego, &actuation, dt);
        self.world.set_ego(self.ego, ActorKind::Car.dims());
        profiler::record(TickPhase::Vehicle, probe);
    }

    /// Closes a base tick after the world has been advanced.
    pub(crate) fn post_world_tick(&mut self) {
        self.frame += 1;
    }

    /// Advances one 30 Hz base tick with the given interceptor.
    pub(crate) fn step_tick<I: BusInterceptor + ?Sized>(&mut self, interceptor: &mut I) {
        self.pre_world_tick(interceptor);
        let probe = profiler::start();
        self.world.step(self.dt());
        profiler::record(TickPhase::World, probe);
        self.post_world_tick();
    }

    /// Scene-rate evaluation after [`BASE_TICKS_PER_SCENE`] base ticks:
    /// ground truth, running min-δ, outcome transitions, and the optional
    /// trace frame. Returns `true` when the run stops here (collision
    /// with `stop_on_collision` set) — the single definition of the
    /// scalar break point that the batched early-exit must reproduce.
    pub(crate) fn eval_scene(&mut self, state: &mut RunState) -> bool {
        let probe = profiler::start();
        let scene = self.scene() - 1;
        let gt = self.world.ground_truth();
        // Raw δ (Definition 3) — see `true_delta` for the margin
        // rationale.
        let envelope = gt.envelope.with_min_margin(0.0, 0.0);
        let delta = SafetyPotential::evaluate(&self.config.ads.vehicle, &self.ego, &envelope);
        state.min_lon = state.min_lon.min(delta.longitudinal);
        state.min_lat = state.min_lat.min(delta.lateral);

        if let Some(actor) = gt.collision {
            state.outcome = Outcome::Collision { scene, actor: actor.0 };
        } else if !delta.is_safe() && state.outcome == Outcome::Safe {
            state.outcome = Outcome::Hazard { scene };
        }

        if let Some(trace) = &mut state.trace {
            let bus = &self.ads.bus;
            trace.frames.push(FrameRecord {
                scene,
                time: self.world.time(),
                ego: self.ego,
                pose: bus.pose,
                imu_speed: bus.imu.speed,
                imu_accel: bus.imu.accel,
                lead_distance: Signal::LeadDistance.read(bus),
                lead_speed: Signal::LeadSpeed.read(bus),
                raw_cmd: bus.raw_cmd,
                final_cmd: bus.final_cmd,
                delta_perceived: bus.delta,
                delta_true: delta,
            });
        }

        profiler::record(TickPhase::Eval, probe);
        state.outcome.is_collision() && self.config.stop_on_collision
    }

    /// Evaluates the ground-truth safety potential right now.
    ///
    /// The hazard criterion is the paper's Definition 3: raw
    /// `δ = d_safe − d_stop`. The comfort margins (`d_safe,min`) belong
    /// to the *planner's* constraint, not to the safety judgment — a
    /// vehicle that eats into the comfort margin is uncomfortable, not
    /// yet unsafe.
    pub fn true_delta(&self) -> SafetyPotential {
        let gt = self.world.ground_truth();
        let envelope = gt.envelope.with_min_margin(0.0, 0.0);
        SafetyPotential::evaluate(&self.config.ads.vehicle, &self.ego, &envelope)
    }

    /// Runs the scenario to completion without faults.
    pub fn run(&mut self) -> RunReport {
        self.run_with(&mut NullInterceptor)
    }

    /// Runs the scenario to completion with `interceptor` attached to the
    /// bus and a [`crate::rules::RuleMonitor`] fed ground truth once per
    /// scene — the paper's "extended notions of safety" hook.
    pub fn run_monitored<I: BusInterceptor + ?Sized>(
        &mut self,
        interceptor: &mut I,
        monitor: &mut crate::rules::RuleMonitor,
    ) -> RunReport {
        let mut outcome = Outcome::Safe;
        let mut min_lon = f64::INFINITY;
        let mut min_lat = f64::INFINITY;
        let scene_dt = BASE_TICKS_PER_SCENE as f64 / self.config.ads.tick_hz;
        while self.frame < self.total_frames {
            for _ in 0..BASE_TICKS_PER_SCENE {
                self.step_tick(interceptor);
            }
            let scene = self.scene() - 1;
            let gt = self.world.ground_truth();
            let envelope = gt.envelope.with_min_margin(0.0, 0.0);
            let delta = SafetyPotential::evaluate(&self.config.ads.vehicle, &self.ego, &envelope);
            min_lon = min_lon.min(delta.longitudinal);
            min_lat = min_lat.min(delta.lateral);
            monitor.observe_scene(
                scene,
                &self.ego,
                self.world.ego_lead(),
                self.world.road(),
                scene_dt,
            );
            if let Some(actor) = gt.collision {
                outcome = Outcome::Collision { scene, actor: actor.0 };
            } else if !delta.is_safe() && outcome == Outcome::Safe {
                outcome = Outcome::Hazard { scene };
            }
            if outcome.is_collision() && self.config.stop_on_collision {
                break;
            }
        }
        RunReport {
            outcome,
            min_delta_lon: min_lon,
            min_delta_lat: min_lat,
            scenes: self.scene(),
            injections: 0,
            trace: None,
        }
    }

    /// Runs the scenario to completion with `interceptor` (typically a
    /// [`drivefi_fault::Injector`]) attached to the bus.
    ///
    /// The hazard monitor evaluates ground truth at scene rate, matching
    /// the paper's per-scene accounting.
    pub fn run_with<I: BusInterceptor + ?Sized>(&mut self, interceptor: &mut I) -> RunReport {
        let mut state = RunState::new(self);
        while self.frame < self.total_frames {
            for _ in 0..BASE_TICKS_PER_SCENE {
                self.step_tick(interceptor);
            }
            if self.eval_scene(&mut state) {
                break;
            }
        }
        state.into_report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};

    #[test]
    fn golden_lead_cruise_is_safe() {
        let scenario = ScenarioConfig::lead_vehicle_cruise(3);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let report = sim.run();
        assert!(report.outcome.is_safe(), "golden run: {:?}", report.outcome);
        assert!(report.min_delta_lon > 0.0);
    }

    #[test]
    fn golden_cut_in_is_safe_but_tight() {
        let scenario = ScenarioConfig::cut_in(0);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let report = sim.run();
        assert!(report.outcome.is_safe(), "golden cut-in: {:?}", report.outcome);
        // The cut-in squeezes δ but the ADS recovers.
        assert!(report.min_delta_lon < 25.0, "min δ_lon = {}", report.min_delta_lon);
    }

    #[test]
    fn trace_records_scene_rate() {
        let scenario = ScenarioConfig::free_drive(1);
        let config = SimConfig { record_trace: true, ..SimConfig::default() };
        let mut sim = Simulation::new(config, &scenario);
        let report = sim.run();
        let trace = report.trace.unwrap();
        assert_eq!(trace.frames.len(), scenario.scene_count());
        assert_eq!(trace.frames[0].scene, 0);
        // Speed should approach the set speed over the run.
        let last = trace.frames.last().unwrap();
        assert!((last.ego.v - scenario.ego_set_speed).abs() < 2.0);
    }

    #[test]
    fn permanent_full_throttle_fault_causes_hazard() {
        // The crude end-to-end check: pin A_t to full throttle forever in
        // a car-following scenario → the ego must eventually violate δ.
        let scenario = ScenarioConfig::lead_vehicle_cruise(5);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let faults = vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::permanent(60),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::permanent(60),
            },
        ];
        let mut injector = Injector::new(faults);
        let report = sim.run_with(&mut injector);
        assert!(
            report.outcome.is_hazardous(),
            "full-throttle runaway stayed safe: {:?}",
            report.outcome
        );
    }

    #[test]
    fn transient_throttle_fault_at_cruise_is_masked() {
        // One corrupted scene while cruising with a healthy margin — the
        // paper's natural-resilience result: recomputation + PID smooth
        // it away.
        let scenario = ScenarioConfig::lead_vehicle_cruise(3);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let fault = Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::scene(20),
        };
        let mut injector = Injector::new(vec![fault]);
        let report = sim.run_with(&mut injector);
        assert!(report.outcome.is_safe(), "transient was not masked: {:?}", report.outcome);
    }

    #[test]
    fn watchdog_recovers_planner_hang() {
        // A permanent planner hang while following a braking lead. With
        // the watchdog the fallback stop keeps the run collision-free
        // (the paper's "backup systems" claim); without it the stale
        // cruise command is hazardous.
        let scenario = ScenarioConfig::lead_brake(3);
        let hang = Fault {
            kind: FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
            window: FaultWindow::permanent(90),
        };

        let mut with_dog = Simulation::new(SimConfig::default(), &scenario);
        let report = with_dog.run_with(&mut Injector::new(vec![hang]));
        assert!(
            with_dog.ads().watchdog().is_fallback(),
            "watchdog never engaged on a permanent planner hang"
        );
        assert!(
            !report.outcome.is_collision(),
            "fallback stop still collided: {:?}",
            report.outcome
        );
        // The fallback brings the ego to (or near) a halt.
        assert!(with_dog.ego().v < 3.0, "ego still moving at {}", with_dog.ego().v);

        let mut no_dog_cfg = SimConfig::default();
        no_dog_cfg.ads.watchdog = false;
        let mut without_dog = Simulation::new(no_dog_cfg, &scenario);
        let unprotected = without_dog.run_with(&mut Injector::new(vec![hang]));
        assert!(
            unprotected.outcome.is_hazardous(),
            "planner hang without watchdog stayed safe: {:?}",
            unprotected.outcome
        );
    }

    #[test]
    fn watchdog_stays_silent_on_golden_runs() {
        let scenario = ScenarioConfig::cut_in(5);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let report = sim.run();
        assert!(report.outcome.is_safe());
        assert!(!sim.ads().watchdog().is_fallback());
    }

    #[test]
    fn rule_monitor_flags_faulted_run_not_golden() {
        use crate::rules::{RuleConfig, RuleKind, RuleMonitor};
        let scenario = ScenarioConfig::lead_vehicle_cruise(3);

        let mut golden_monitor =
            RuleMonitor::new(RuleConfig::default(), SimConfig::default().ads.vehicle);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        sim.run_monitored(&mut drivefi_ads::NullInterceptor, &mut golden_monitor);
        let golden = golden_monitor.finish();

        let mut fault_monitor =
            RuleMonitor::new(RuleConfig::default(), SimConfig::default().ads.vehicle);
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let faults = vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::permanent(60),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::permanent(60),
            },
        ];
        let mut injector = Injector::new(faults);
        sim.run_monitored(&mut injector, &mut fault_monitor);
        let faulted = fault_monitor.finish();

        // The runaway-throttle fault must trip speeding and/or headway
        // rules that the golden run never does.
        assert_eq!(golden.count(RuleKind::SpeedLimit), 0, "golden run speeding");
        assert!(
            faulted.count(RuleKind::SpeedLimit) + faulted.count(RuleKind::Headway) > 0,
            "runaway throttle tripped no rules: {faulted:?}"
        );
    }

    #[test]
    fn arena_reset_traces_equal_fresh_build() {
        // The deepened arena reuse: after a dirty run (faults armed, the
        // watchdog latched, tracker full of tracks, smoother wound up),
        // a reset-in-place arena must reproduce a freshly constructed
        // Simulation *trace-for-trace* — every recorded scene record of
        // every ADS variable bitwise identical.
        let config = SimConfig { record_trace: true, ..SimConfig::default() };
        let mut arena = Simulation::new(config, &ScenarioConfig::lead_brake(3));

        // Dirty the arena: a planner hang latches the watchdog, and a
        // steering corruption winds up the smoother and pose gate.
        let mut dirt = Injector::new(vec![
            Fault {
                kind: FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
                window: FaultWindow::permanent(90),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalSteering,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::burst(60, 40),
            },
        ]);
        let _ = arena.run_with(&mut dirt);
        assert!(arena.ads().watchdog().is_fallback(), "the dirtying run never latched");

        for scenario in [ScenarioConfig::cut_in(7), ScenarioConfig::platoon(2)] {
            arena.reset(&scenario);
            let reused = arena.run();
            let mut fresh_sim = Simulation::new(config, &scenario);
            let fresh = fresh_sim.run();
            assert_eq!(reused.outcome, fresh.outcome, "{}", scenario.name);
            assert_eq!(reused.trace, fresh.trace, "{} trace diverged", scenario.name);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let scenario = ScenarioConfig::platoon(9);
        let mut a = Simulation::new(SimConfig::default(), &scenario);
        let mut b = Simulation::new(SimConfig::default(), &scenario);
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra.outcome, rb.outcome);
        assert_eq!(ra.min_delta_lon, rb.min_delta_lon);
        assert_eq!(a.ego().x, b.ego().x);
    }
}
