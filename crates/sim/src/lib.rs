//! The closed-loop AV simulator and campaign runner.
//!
//! This crate stands in for the paper's DriveSim/LGSVL test bench: it
//! closes the loop between the [`drivefi_world::World`], the sensor
//! suite, the [`drivefi_ads::AdsStack`], and the ego vehicle dynamics,
//! while a **hazard monitor** (the paper's safety checker) evaluates the
//! *ground-truth* safety potential δ every frame and detects geometric
//! collisions.
//!
//! A [`Trace`] records one [`FrameRecord`] per **scene** (7.5 Hz camera
//! frame, the paper's unit of evaluation); traces of golden runs are the
//! training data for the Bayesian network in `drivefi-core`.
//!
//! The [`CampaignEngine`] executes many (scenario × fault) runs in
//! parallel with deterministic seeding: jobs stream lazily from a
//! [`JobSource`], each worker reuses one [`Simulation`] arena, and
//! results stream into a [`CampaignSink`] ([`Collector`],
//! [`RunningStats`], [`TraceSink`]). [`campaign::run_campaign`] is the
//! eager compatibility wrapper. This crate is also the only place in the
//! workspace that spawns worker threads ([`engine::stream_map`] /
//! [`engine::parallel_map`], with [`default_workers`] as the one
//! worker-count policy).
//!
//! # Example
//!
//! ```
//! use drivefi_sim::{Simulation, SimConfig};
//! use drivefi_world::scenario::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::lead_vehicle_cruise(7);
//! let mut sim = Simulation::new(SimConfig::default(), &scenario);
//! let report = sim.run();
//! assert!(report.outcome.is_safe());
//! ```

pub mod batch;
pub mod campaign;
pub mod engine;
pub mod outcome;
pub mod rules;
pub mod simulation;
pub mod trace;

pub use batch::{BatchSimulation, DEFAULT_BATCH};
pub use campaign::{
    run_campaign, CampaignEngine, CampaignJob, CampaignResult, CampaignSink, Collector, JobSource,
    RunningStats, Tee, TraceSink,
};
pub use engine::{default_workers, parallel_map, stream_map};
pub use outcome::{Outcome, RunReport};
pub use rules::{RuleConfig, RuleKind, RuleMonitor, RuleSummary, RuleViolation};
pub use simulation::{SimConfig, Simulation, BASE_TICKS_PER_SCENE};
pub use trace::{FrameRecord, Trace};
