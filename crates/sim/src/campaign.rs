//! Parallel fault-injection campaigns.

use crate::outcome::RunReport;
use crate::simulation::{SimConfig, Simulation};
use drivefi_fault::{Fault, Injector};
use drivefi_world::ScenarioConfig;

/// One campaign job: a scenario plus the faults to arm.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// Caller-chosen identifier carried through to the result.
    pub id: u64,
    /// The scenario to drive.
    pub scenario: ScenarioConfig,
    /// The faults to arm (empty = golden run).
    pub faults: Vec<Fault>,
}

/// The result of one campaign job.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The job identifier.
    pub id: u64,
    /// The run report.
    pub report: RunReport,
}

/// Runs all jobs, fanning out over `workers` OS threads with crossbeam
/// scoped threads. Results are returned in job order. Every job is fully
/// deterministic (scenario seed + sensor seed), so campaign results are
/// reproducible regardless of scheduling.
pub fn run_campaign(config: SimConfig, jobs: &[CampaignJob], workers: usize) -> Vec<CampaignResult> {
    let workers = workers.max(1);
    let mut results: Vec<Option<CampaignResult>> = vec![None; jobs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<_> = results.iter_mut().map(std::sync::Mutex::new).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let mut sim = Simulation::new(config, &job.scenario);
                let mut injector = Injector::new(job.faults.clone());
                let mut report = sim.run_with(&mut injector);
                report.injections = injector.injection_count();
                **slots[i].lock().expect("result slot poisoned") =
                    Some(CampaignResult { id: job.id, report });
            });
        }
    })
    .expect("campaign worker panicked");

    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every job produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::Signal;
    use drivefi_fault::{FaultKind, FaultWindow, ScalarFaultModel};

    fn golden_job(id: u64, seed: u64) -> CampaignJob {
        CampaignJob { id, scenario: ScenarioConfig::lead_vehicle_cruise(seed), faults: vec![] }
    }

    #[test]
    fn campaign_preserves_job_order_and_ids() {
        let jobs: Vec<_> = (0..6).map(|i| golden_job(100 + i, i)).collect();
        let results = run_campaign(SimConfig::default(), &jobs, 3);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, 100 + i as u64);
            assert!(r.report.outcome.is_safe());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let jobs: Vec<_> = (0..4).map(|i| golden_job(i, i * 7)).collect();
        let serial = run_campaign(SimConfig::default(), &jobs, 1);
        let parallel = run_campaign(SimConfig::default(), &jobs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.report.outcome, p.report.outcome);
            assert_eq!(s.report.min_delta_lon, p.report.min_delta_lon);
        }
    }

    #[test]
    fn faulted_jobs_report_injections() {
        let scenario = ScenarioConfig::lead_vehicle_cruise(2);
        let fault = Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawBrake,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::scene(10),
        };
        let jobs = vec![CampaignJob { id: 0, scenario, faults: vec![fault] }];
        let results = run_campaign(SimConfig::default(), &jobs, 2);
        assert!(results[0].report.injections > 0);
    }
}
