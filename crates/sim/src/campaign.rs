//! Streaming parallel fault-injection campaigns.
//!
//! A campaign is a stream of (scenario × fault) jobs executed on a
//! worker pool. The [`CampaignEngine`] pulls jobs lazily from a
//! [`JobSource`] (so exhaustive sweeps never materialize their full
//! cross-product) in chunks of [`CampaignEngine::batch`] jobs, executes
//! each chunk on the batched struct-of-arrays core
//! ([`crate::batch::BatchSimulation`], with golden-prefix sharing across
//! jobs of one scenario), and streams [`CampaignResult`]s into a
//! [`CampaignSink`] as chunks complete. Every job is fully deterministic
//! (scenario seed + sensor seed) and the batched path is bit-identical to
//! a scalar `Simulation::run_with`, so campaign results are
//! reproducible regardless of scheduling, worker count, or batch width.

use crate::batch::{ChunkRunner, Chunks, DEFAULT_BATCH};
use crate::engine::{default_workers, stream_map, IndexedSlots};
use crate::outcome::RunReport;
use crate::simulation::SimConfig;
use crate::trace::Trace;
use drivefi_fault::Fault;
use drivefi_world::ScenarioConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One campaign job: a scenario plus the faults to arm.
///
/// The scenario rides behind an [`Arc`]: a scenario × fault cross-product
/// shares **one** allocation per scenario across all its jobs (an
/// exhaustive sweep over a 40 s scenario spawns hundreds of jobs; deep-
/// cloning road + actor storage per job dominated dispatch cost).
/// Cloning a job is therefore cheap — a pointer bump plus the fault list.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// Caller-chosen identifier carried through to the result.
    pub id: u64,
    /// The scenario to drive, shared across jobs.
    pub scenario: Arc<ScenarioConfig>,
    /// The faults to arm (empty = golden run).
    pub faults: Vec<Fault>,
}

impl CampaignJob {
    /// A job over an owned scenario (wraps it in a fresh [`Arc`]). For
    /// many jobs over one scenario, build the `Arc` once and share it.
    pub fn new(id: u64, scenario: ScenarioConfig, faults: Vec<Fault>) -> Self {
        CampaignJob { id, scenario: Arc::new(scenario), faults }
    }
}

/// The result of one campaign job.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The job identifier.
    pub id: u64,
    /// The run report.
    pub report: RunReport,
}

/// A source of campaign jobs. Iterator-backed: anything that can be
/// turned into a `Send` iterator of [`CampaignJob`]s qualifies, and the
/// engine pulls from it lazily — one job at a time, as workers go idle.
pub trait JobSource {
    /// The job iterator type.
    type Iter: Iterator<Item = CampaignJob> + Send;
    /// Converts the source into its job stream.
    fn into_jobs(self) -> Self::Iter;
}

impl<I> JobSource for I
where
    I: IntoIterator<Item = CampaignJob>,
    I::IntoIter: Send,
{
    type Iter = I::IntoIter;
    fn into_jobs(self) -> Self::Iter {
        self.into_iter()
    }
}

/// A consumer of streamed campaign results. `index` is the job's
/// submission order (0-based), which sinks use to restore determinism
/// when completion order varies with scheduling.
pub trait CampaignSink {
    /// Accepts the result of the `index`-th submitted job.
    fn accept(&mut self, index: u64, result: CampaignResult);
}

impl<F: FnMut(u64, CampaignResult)> CampaignSink for F {
    fn accept(&mut self, index: u64, result: CampaignResult) {
        self(index, result)
    }
}

/// Fans one result stream into two sinks — e.g. a persistent store plus
/// in-memory running statistics in a single engine pass. Nest `Tee`s for
/// more than two consumers.
#[derive(Debug)]
pub struct Tee<'a, A: ?Sized, B: ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A, B> CampaignSink for Tee<'_, A, B>
where
    A: CampaignSink + ?Sized,
    B: CampaignSink + ?Sized,
{
    fn accept(&mut self, index: u64, result: CampaignResult) {
        self.0.accept(index, result.clone());
        self.1.accept(index, result);
    }
}

/// Order-restoring collector: buffers streamed results and yields them
/// in submission order.
#[derive(Debug, Default)]
pub struct Collector {
    slots: IndexedSlots<CampaignResult>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// The collected results, in job-submission order.
    ///
    /// # Panics
    ///
    /// Panics if an index gap is found (a job produced no result), which
    /// cannot happen for results streamed by [`CampaignEngine::run`].
    pub fn into_results(self) -> Vec<CampaignResult> {
        self.slots.into_vec("every job produces a result")
    }
}

impl CampaignSink for Collector {
    fn accept(&mut self, index: u64, result: CampaignResult) {
        self.slots.put(index, result);
    }
}

/// Running-statistics sink for hazard-rate campaigns: constant-memory
/// outcome counters plus the (submission-ordered) set of hazardous jobs.
#[derive(Debug, Default, Clone)]
pub struct RunningStats {
    /// Jobs seen.
    pub runs: usize,
    /// Jobs ending safe.
    pub safe: usize,
    /// Jobs with δ ≤ 0 but no collision.
    pub hazards: usize,
    /// Jobs with a collision.
    pub collisions: usize,
    /// Jobs in which the injector corrupted at least one live value.
    pub effective_injections: usize,
    /// Submission indices of hazardous jobs (BTreeSet: deterministic
    /// iteration order regardless of completion order).
    pub hazardous_indices: BTreeSet<u64>,
}

impl RunningStats {
    /// An empty sink.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Fraction of runs that violated safety.
    pub fn hazard_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            (self.hazards + self.collisions) as f64 / self.runs as f64
        }
    }
}

impl CampaignSink for RunningStats {
    fn accept(&mut self, index: u64, result: CampaignResult) {
        self.runs += 1;
        if result.report.injections > 0 {
            self.effective_injections += 1;
        }
        if result.report.outcome.is_hazardous() {
            self.hazardous_indices.insert(index);
            if result.report.outcome.is_collision() {
                self.collisions += 1;
            } else {
                self.hazards += 1;
            }
        } else {
            self.safe += 1;
        }
    }
}

/// Trace sink for golden-run collection: keeps only each job's recorded
/// [`Trace`], in submission order.
#[derive(Debug, Default)]
pub struct TraceSink {
    slots: IndexedSlots<Trace>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// The collected traces, in job-submission order.
    ///
    /// # Panics
    ///
    /// Panics if a job did not record a trace (run the campaign with
    /// [`SimConfig::record_trace`] set).
    pub fn into_traces(self) -> Vec<Trace> {
        self.slots.into_vec("campaign job recorded a trace")
    }
}

impl CampaignSink for TraceSink {
    fn accept(&mut self, index: u64, result: CampaignResult) {
        self.slots.set(index, result.report.trace);
    }
}

/// The campaign runner: a [`SimConfig`] plus worker-count and
/// batch-width policies.
///
/// ```
/// use drivefi_sim::{CampaignEngine, CampaignJob, SimConfig};
/// use drivefi_world::ScenarioConfig;
/// use std::sync::Arc;
///
/// let engine = CampaignEngine::new(SimConfig::default()).with_workers(2);
/// // One allocation, shared by every job over the scenario.
/// let scenario = Arc::new(ScenarioConfig::lead_vehicle_cruise(7));
/// let jobs = (0..3).map(|i| CampaignJob {
///     id: i,
///     scenario: Arc::clone(&scenario),
///     faults: vec![],
/// });
/// let results = engine.collect(jobs);
/// assert_eq!(results.len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CampaignEngine {
    config: SimConfig,
    workers: usize,
    batch: Option<usize>,
}

impl CampaignEngine {
    /// An engine with [`default_workers`] worker threads and the default
    /// batch width.
    pub fn new(config: SimConfig) -> Self {
        CampaignEngine { config, workers: default_workers(), batch: None }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the batch width — how many jobs a worker pulls and steps
    /// in lockstep per dispatch (clamped to at least 1). The width is a
    /// scheduling knob only: results are bit-identical at any value.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch.max(1));
        self
    }

    /// The simulator configuration campaigns run under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The effective batch width ([`DEFAULT_BATCH`] unless overridden).
    pub fn batch(&self) -> usize {
        self.batch.unwrap_or(DEFAULT_BATCH)
    }

    /// Runs every job from `jobs`, streaming each result into `sink` on
    /// the calling thread as chunks complete. Jobs are pulled from the
    /// source lazily, one chunk of [`CampaignEngine::batch`] jobs per
    /// idle worker, and each chunk runs on the batched
    /// struct-of-arrays core. Submission indices are per job (chunks are
    /// full except possibly the last, so job `i` keeps index `i`).
    ///
    /// # Panics
    ///
    /// Propagates worker panics.
    pub fn run<S, K>(&self, jobs: S, sink: &mut K)
    where
        S: JobSource,
        K: CampaignSink + ?Sized,
    {
        let config = self.config;
        let batch = self.batch();
        stream_map(
            Chunks::new(jobs.into_jobs(), batch),
            self.workers,
            || ChunkRunner::new(config),
            ChunkRunner::run_chunk,
            |chunk_index, results| {
                let base = chunk_index * batch as u64;
                for (pos, result) in results.into_iter().enumerate() {
                    sink.accept(base + pos as u64, result);
                }
            },
        );
    }

    /// The resume hook: runs only the jobs for which `done(job.id)` is
    /// false, skipping the rest without scheduling them. A persistent
    /// store resumes an interrupted campaign by passing its set of
    /// already-persisted job ids; submission indices renumber over the
    /// pending jobs, so sinks that need a stable identity should key on
    /// `CampaignResult::id` (the skipped ids never reappear).
    pub fn run_skipping<S, K, P>(&self, jobs: S, done: P, sink: &mut K)
    where
        S: JobSource,
        K: CampaignSink + ?Sized,
        P: Fn(u64) -> bool + Send,
    {
        self.run(jobs.into_jobs().filter(move |job| !done(job.id)), sink);
    }

    /// [`CampaignEngine::run_skipping`] with a job budget: at most
    /// `budget` pending jobs are executed (already-done jobs don't
    /// count), then the stream stops cleanly — the "interrupt via budget
    /// cap" a resumable store-backed campaign uses. `None` means
    /// unbounded. Returns the number of jobs actually executed.
    pub fn run_skipping_budget<S, K, P>(
        &self,
        jobs: S,
        done: P,
        budget: Option<u64>,
        sink: &mut K,
    ) -> u64
    where
        S: JobSource,
        K: CampaignSink + ?Sized,
        P: Fn(u64) -> bool + Send,
    {
        let mut ran = 0u64;
        let pending = jobs.into_jobs().filter(move |job| !done(job.id));
        let cap = budget.map_or(usize::MAX, |n| n as usize);
        self.run(pending.take(cap), &mut |index: u64, result| {
            ran = ran.max(index + 1);
            sink.accept(index, result);
        });
        ran
    }

    /// Convenience: runs the jobs and returns the results in submission
    /// order.
    pub fn collect<S: JobSource>(&self, jobs: S) -> Vec<CampaignResult> {
        let mut collector = Collector::new();
        self.run(jobs, &mut collector);
        collector.into_results()
    }
}

/// Compatibility wrapper over [`CampaignEngine`]: runs all jobs, fanning
/// out over `workers` threads, and returns results in job order.
pub fn run_campaign(
    config: SimConfig,
    jobs: &[CampaignJob],
    workers: usize,
) -> Vec<CampaignResult> {
    CampaignEngine::new(config).with_workers(workers).collect(jobs.iter().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::Simulation;
    use drivefi_ads::Signal;
    use drivefi_fault::{FaultKind, FaultWindow, Injector, ScalarFaultModel};

    fn golden_job(id: u64, seed: u64) -> CampaignJob {
        CampaignJob::new(id, ScenarioConfig::lead_vehicle_cruise(seed), vec![])
    }

    fn faulted_job(id: u64, seed: u64, scene: u64) -> CampaignJob {
        let fault = Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::scene(scene),
        };
        CampaignJob::new(id, ScenarioConfig::lead_vehicle_cruise(seed), vec![fault])
    }

    #[test]
    fn campaign_preserves_job_order_and_ids() {
        let jobs: Vec<_> = (0..6).map(|i| golden_job(100 + i, i)).collect();
        let results = run_campaign(SimConfig::default(), &jobs, 3);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, 100 + i as u64);
            assert!(r.report.outcome.is_safe());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        // Golden jobs and jobs with armed faults must produce bitwise
        // identical reports across worker counts 1/2/8: worker arenas are
        // reset between jobs, so scheduling cannot leak state.
        let mut jobs: Vec<_> = (0..4).map(|i| golden_job(i, i * 7)).collect();
        jobs.extend((0..4).map(|i| faulted_job(100 + i, i * 3 + 1, 20 + 5 * i)));
        let serial = run_campaign(SimConfig::default(), &jobs, 1);
        for workers in [2, 8] {
            let parallel = run_campaign(SimConfig::default(), &jobs, workers);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.id, p.id);
                assert_eq!(s.report.outcome, p.report.outcome);
                assert_eq!(s.report.min_delta_lon, p.report.min_delta_lon);
                assert_eq!(s.report.min_delta_lat, p.report.min_delta_lat);
                assert_eq!(s.report.injections, p.report.injections);
            }
        }
    }

    #[test]
    fn arena_reuse_matches_fresh_construction() {
        // One worker, many jobs: every job after the first runs in a
        // reset arena and must match a freshly constructed Simulation.
        let jobs: Vec<_> = (0..3)
            .map(|i| faulted_job(i, 5, 30))
            .chain((0..2).map(|i| golden_job(10 + i, 2)))
            .collect();
        let reused = run_campaign(SimConfig::default(), &jobs, 1);
        for (job, result) in jobs.iter().zip(&reused) {
            let mut sim = Simulation::new(SimConfig::default(), &job.scenario);
            let mut injector = Injector::new(job.faults.clone());
            let mut fresh = sim.run_with(&mut injector);
            fresh.injections = injector.injection_count();
            assert_eq!(fresh.outcome, result.report.outcome);
            assert_eq!(fresh.min_delta_lon, result.report.min_delta_lon);
            assert_eq!(fresh.injections, result.report.injections);
        }
    }

    #[test]
    fn faulted_jobs_report_injections() {
        let scenario = ScenarioConfig::lead_vehicle_cruise(2);
        let fault = Fault {
            kind: FaultKind::Scalar { signal: Signal::RawBrake, model: ScalarFaultModel::StuckMax },
            window: FaultWindow::scene(10),
        };
        let jobs = vec![CampaignJob::new(0, scenario, vec![fault])];
        let results = run_campaign(SimConfig::default(), &jobs, 2);
        assert!(results[0].report.injections > 0);
    }

    #[test]
    fn engine_streams_from_a_lazy_source() {
        // The job source is an iterator — nothing is materialized, and
        // the sink sees every submission index exactly once.
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(4);
        let mut seen = BTreeSet::new();
        let jobs = (0..6u64).map(|i| golden_job(i, i));
        engine.run(jobs, &mut |index: u64, result: CampaignResult| {
            assert_eq!(index, result.id);
            assert!(seen.insert(index));
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn jobs_share_one_scenario_allocation() {
        // The zero-clone contract: a cross-product of jobs over one
        // scenario holds one allocation, and cloning a job (the
        // `run_campaign` slice path) bumps a refcount instead of deep-
        // cloning road + actor storage.
        let scenario = Arc::new(ScenarioConfig::lead_vehicle_cruise(3));
        let jobs: Vec<_> = (0..8u64)
            .map(|id| CampaignJob { id, scenario: Arc::clone(&scenario), faults: vec![] })
            .collect();
        for job in &jobs {
            assert!(Arc::ptr_eq(&job.scenario, &scenario));
        }
        let cloned = jobs[0].clone();
        assert!(Arc::ptr_eq(&cloned.scenario, &scenario));
        let results = run_campaign(SimConfig::default(), &jobs, 4);
        assert_eq!(results.len(), 8);
    }

    #[test]
    fn running_stats_sink_counts_outcomes() {
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(4);
        let mut stats = RunningStats::new();
        let jobs = (0..4u64).map(|i| faulted_job(i, i, 20));
        engine.run(jobs, &mut stats);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.safe + stats.hazards + stats.collisions, 4);
        assert!(stats.effective_injections > 0);
        assert!(stats.hazard_rate() >= 0.0 && stats.hazard_rate() <= 1.0);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(2);
        let mut stats = RunningStats::new();
        let mut collector = Collector::new();
        let jobs: Vec<_> = (0..4u64).map(|i| golden_job(i, i)).collect();
        engine.run(jobs, &mut Tee(&mut stats, &mut collector));
        assert_eq!(stats.runs, 4);
        assert_eq!(collector.into_results().len(), 4);
    }

    #[test]
    fn run_skipping_only_executes_pending_jobs() {
        // Jobs 0, 2, 4 are "already persisted": the engine must execute
        // exactly the other three, renumbering submission indices over
        // the pending stream while job ids stay stable.
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(2);
        let jobs: Vec<_> = (0..6u64).map(|i| golden_job(i, i)).collect();
        let mut seen = Vec::new();
        engine.run_skipping(jobs, |id| id % 2 == 0, &mut |index: u64, result: CampaignResult| {
            seen.push((index, result.id))
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1), (1, 3), (2, 5)]);
    }

    #[test]
    fn run_skipping_budget_caps_pending_jobs_only() {
        // Jobs 0 and 3 are done; a budget of 2 must execute exactly two
        // of the remaining four and report how many ran.
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(2);
        let jobs: Vec<_> = (0..6u64).map(|i| golden_job(i, i)).collect();
        let mut seen = Vec::new();
        let ran = engine.run_skipping_budget(
            jobs.clone(),
            |id| id == 0 || id == 3,
            Some(2),
            &mut |_: u64, result: CampaignResult| seen.push(result.id),
        );
        assert_eq!(ran, 2);
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        // Budget zero runs nothing; no budget runs all pending.
        let ran = engine.run_skipping_budget(jobs.clone(), |_| false, Some(0), &mut |_, _| {
            panic!("budget 0 must execute nothing")
        });
        assert_eq!(ran, 0);
        let mut count = 0u64;
        let ran = engine.run_skipping_budget(
            jobs,
            |id| id == 0 || id == 3,
            None,
            &mut |_: u64, _: CampaignResult| count += 1,
        );
        assert_eq!((ran, count), (4, 4));
    }

    #[test]
    fn budget_slices_compose_to_the_full_run() {
        // The fair-share scheduling primitive: repeatedly granting the
        // engine small budget slices over a growing done-set must
        // execute every job exactly once and, per job, produce the same
        // report as one unbounded pass — regardless of slice size. This
        // is what lets a daemon interleave many campaigns' slices
        // without perturbing any campaign's results.
        let engine = CampaignEngine::new(SimConfig::default()).with_workers(2);
        let jobs: Vec<_> = (0..7u64)
            .map(|i| if i % 2 == 0 { golden_job(i, i) } else { faulted_job(i, i, 25) })
            .collect();
        let mut reference = Vec::new();
        engine.run_skipping_budget(jobs.clone(), |_| false, None, &mut |_, r: CampaignResult| {
            reference.push((r.id, r.report.outcome, r.report.min_delta_lon))
        });
        reference.sort_by_key(|&(id, ..)| id);

        for slice in [1u64, 2, 3, 5] {
            let mut done = BTreeSet::new();
            let mut sliced = Vec::new();
            loop {
                let mut executed = Vec::new();
                let ran = {
                    let done = &done;
                    engine.run_skipping_budget(
                        jobs.clone(),
                        |id| done.contains(&id),
                        Some(slice),
                        &mut |_, r: CampaignResult| {
                            executed.push((r.id, r.report.outcome, r.report.min_delta_lon))
                        },
                    )
                };
                assert_eq!(ran, executed.len() as u64);
                assert!(ran <= slice);
                for &(id, ..) in &executed {
                    assert!(done.insert(id), "slice {slice}: job {id} executed twice");
                }
                sliced.extend(executed);
                if ran == 0 {
                    break;
                }
            }
            sliced.sort_by_key(|&(id, ..)| id);
            assert_eq!(sliced, reference, "slice {slice} diverged from the unbounded pass");
        }
    }

    #[test]
    fn trace_sink_collects_in_order() {
        let config =
            SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
        let engine = CampaignEngine::new(config).with_workers(3);
        let mut sink = TraceSink::new();
        let scenarios: Vec<_> =
            (0..3u64).map(|i| Arc::new(ScenarioConfig::lead_vehicle_cruise(i))).collect();
        let jobs = scenarios.iter().map(|s| CampaignJob {
            id: u64::from(s.id),
            scenario: Arc::clone(s),
            faults: vec![],
        });
        engine.run(jobs, &mut sink);
        let traces = sink.into_traces();
        assert_eq!(traces.len(), 3);
        for (t, s) in traces.iter().zip(&scenarios) {
            assert_eq!(t.scenario_id, s.id);
            assert_eq!(t.frames.len(), s.scene_count());
        }
    }
}
