//! The allocation-free hot-path invariant, enforced.
//!
//! A counting `#[global_allocator]` wraps `System` and tallies every
//! `alloc`/`realloc`/`alloc_zeroed`. After a warm-up pass sizes every
//! pooled buffer (bus sensor frames, tracker scratch, world actor and
//! lead-order vectors, SoA lanes), the steady-state tick must perform
//! **zero** heap operations — on both the scalar `Simulation` arena
//! path and the batched SoA `step_scene` path.
//!
//! Everything lives in ONE `#[test]` so no sibling test thread can
//! pollute the global counter.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use drivefi_sim::{BatchSimulation, SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;

struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a plain
// relaxed atomic increment with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_ops() -> u64 {
    ALLOC_OPS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_tick_never_allocates() {
    // ---- Scalar arena path: warm build + run, then a reset + full
    // rerun must not touch the heap. This is exactly the campaign
    // worker's per-job loop.
    let config = SimConfig::default();
    let scenario = ScenarioConfig::lead_vehicle_cruise(3);
    let mut sim = Simulation::new(config, &scenario);
    let warm = sim.run();
    sim.reset(&scenario);
    let warm2 = sim.run(); // second pass: every pool is at its high-water mark

    // The counter is process-global, and the libtest harness's main
    // thread occasionally allocates (its completion plumbing) while a
    // measured run is in flight — so take the minimum over a few
    // rounds: harness noise is transient, while a real hot-path
    // allocation would show up in every single round.
    let mut scalar_ops = u64::MAX;
    for _ in 0..5 {
        sim.reset(&scenario);
        let before = alloc_ops();
        let report = sim.run();
        scalar_ops = scalar_ops.min(alloc_ops() - before);
        assert_eq!(report.outcome, warm.outcome);
        assert_eq!(report.outcome, warm2.outcome);
    }
    assert_eq!(scalar_ops, 0, "scalar reset+run performed {scalar_ops} heap operations");

    // ---- Batched SoA path: long-duration lanes, a few warm scenes to
    // size the lane pools and build the SoA mirror, then one measured
    // `step_scene` over all live lanes must not touch the heap.
    let mut batch = BatchSimulation::new(true);
    for i in 0..8u64 {
        let mut s = ScenarioConfig::lead_vehicle_cruise(i);
        s.duration = 60.0; // plenty of scenes left after warm-up
        batch.push_job(config, &s, vec![], i);
    }
    for _ in 0..10 {
        batch.step_scene();
    }
    assert!(!batch.is_empty(), "all lanes retired during warm-up");

    let mut batched_ops = u64::MAX;
    for _ in 0..5 {
        assert!(!batch.is_empty(), "all lanes retired mid-measurement");
        let before = alloc_ops();
        batch.step_scene();
        batched_ops = batched_ops.min(alloc_ops() - before);
    }
    assert_eq!(batched_ops, 0, "batched step_scene performed {batched_ops} heap operations");
}
