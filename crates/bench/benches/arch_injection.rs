//! E1 — architectural soft-error injection throughput: how many register
//! bit-flip experiments per second the VM sustains (the paper runs 5 000
//! per campaign).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_fault::{ArchProgram, ArchSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_arch(c: &mut Criterion) {
    let sim =
        ArchSimulator::new(ArchProgram::ads_control_kernel(50.0, 30.0, 25.0, 0.2, 0.01, 31.0));

    let mut group = c.benchmark_group("arch_injection");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("campaign_1000_injections", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(sim.campaign(1000, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_arch);
criterion_main!(benches);
