//! Trace-log append throughput: golden-trace frames/s through the full
//! `StoreWriter` path (variable-length encode → CRC frame → sharded
//! buffered append), plus the read-side trace reassembly. A golden run
//! emits a few hundred frames per job at a few jobs per second per
//! worker, so the ≥100k frames/s acceptance floor (asserted in the
//! store crate's `sustained_trace_append_beats_100k_frames_per_second`
//! test) keeps trace persistence far off the mining pipeline's critical
//! path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use drivefi_kinematics::{Actuation, SafetyPotential, VehicleState};
use drivefi_sim::{FrameRecord, Outcome};
use drivefi_store::{open_store_with_traces, read_traces, CampaignRecord, TraceRecord};
use std::path::PathBuf;

/// Golden jobs per measured batch, each persisting `SCENES` frames.
const JOBS: u64 = 400;
const SCENES: u64 = 250;
const SHARDS: u32 = 8;

fn frame(scene: u64) -> FrameRecord {
    FrameRecord {
        scene,
        time: scene as f64 / 7.5,
        ego: VehicleState::new(3.7 * scene as f64, -0.1, 27.8, 0.002, -0.001),
        pose: VehicleState::new(3.7 * scene as f64 + 0.2, -0.1, 27.9, 0.002, -0.001),
        imu_speed: 27.85,
        imu_accel: 0.12,
        // Lead fields present on most frames — the realistic (longer)
        // encoding dominates car-following golden traces.
        lead_distance: (!scene.is_multiple_of(10)).then_some(38.0 + (scene % 40) as f64),
        lead_speed: (!scene.is_multiple_of(10)).then_some(26.2),
        raw_cmd: Actuation::new(0.31, 0.0, 0.003),
        final_cmd: Actuation::new(0.30, 0.0, 0.003),
        delta_perceived: SafetyPotential { longitudinal: 11.2, lateral: 0.52 },
        delta_true: SafetyPotential { longitudinal: 10.8, lateral: 0.5 },
    }
}

fn append_golden_job(writer: &mut drivefi_store::StoreWriter, job: u64) {
    for scene in 0..SCENES {
        writer
            .append_trace(&TraceRecord {
                job,
                scenario_id: (job % 24) as u32,
                scenario_seed: job.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                frame: frame(scene),
            })
            .unwrap();
    }
    writer
        .append(&CampaignRecord {
            job,
            scenario_id: (job % 24) as u32,
            scenario_seed: job.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            fault: None,
            outcome: Outcome::Safe,
            injections: 0,
            scenes: SCENES,
            min_delta_lon: 4.5,
            min_delta_lat: 0.5,
        })
        .unwrap();
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drivefi-bench-trace-{tag}-{}", std::process::id()))
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS * SCENES));

    // The floor path: stream JOBS golden jobs (frames + outcome record
    // each) through a fresh trace-logging store, seal, tear down.
    group.bench_function("append_100k_frames_sharded", |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                let dir = bench_dir(&format!("append-{round}"));
                std::fs::remove_dir_all(&dir).ok();
                dir
            },
            |dir| {
                let (mut writer, _) = open_store_with_traces(&dir, 1, JOBS, SHARDS, 8192).unwrap();
                for job in 0..JOBS {
                    append_golden_job(&mut writer, job);
                }
                let meta = writer.finish().unwrap();
                assert!(meta.complete);
                std::fs::remove_dir_all(&dir).ok();
            },
            BatchSize::PerIteration,
        )
    });

    // Read side: reassemble every per-job trace out of the shards — what
    // a resumed miner fit pays before inference starts.
    let dir = bench_dir("read");
    std::fs::remove_dir_all(&dir).ok();
    let (mut writer, _) = open_store_with_traces(&dir, 1, JOBS, SHARDS, 1 << 20).unwrap();
    for job in 0..JOBS {
        append_golden_job(&mut writer, job);
    }
    writer.finish().unwrap();
    group.bench_function("read_traces_100k_frames", |b| {
        b.iter(|| {
            let (_, traces) = read_traces(&dir).unwrap();
            assert_eq!(traces.len(), JOBS as usize);
            traces.len()
        })
    });
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
