//! Fault-space enumeration throughput: candidates/s through the lazy
//! [`FaultSpace`] API — the dispatch-side cost every exhaustive sweep
//! and random campaign now pays per candidate. Tracks that compiling
//! `FaultSpec → Fault` and deriving `Copy` keys stays allocation-free
//! and far faster than the simulator consuming the candidates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_ads::Stage;
use drivefi_fault::{FaultKind, FaultSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The paper-scale scene axis: a 40 s scenario at 7.5 Hz.
const SCENES: u64 = 300;

fn space_with_modules() -> FaultSpace {
    FaultSpace {
        modules: vec![
            FaultKind::ClearWorldModel,
            FaultKind::FreezeWorldModel,
            FaultKind::ModuleHang { stage: Stage::Planning },
        ],
        ..FaultSpace::default()
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_space_enumeration");

    let space = FaultSpace::default();
    let candidates = space.len(SCENES);
    group.throughput(Throughput::Elements(candidates));
    group.bench_function("exhaustive_iter_compile_key", |b| {
        b.iter(|| {
            let mut keys = 0u64;
            for spec in space.iter(SCENES) {
                let fault = spec.compile();
                black_box(fault);
                black_box(spec.key());
                keys += 1;
            }
            assert_eq!(keys, candidates);
            keys
        })
    });

    let with_modules = space_with_modules();
    group.throughput(Throughput::Elements(with_modules.len(SCENES)));
    group.bench_function("exhaustive_iter_with_modules", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for spec in with_modules.iter(SCENES) {
                black_box(spec.compile());
                n += 1;
            }
            n
        })
    });

    const DRAWS: u64 = 10_000;
    group.throughput(Throughput::Elements(DRAWS));
    group.bench_function("seeded_sampling", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0xFA57);
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                let spec = space.sample(SCENES, &mut rng);
                acc = acc.wrapping_add(spec.window.scene);
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
