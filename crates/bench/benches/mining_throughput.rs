//! E3/E4 — mining throughput: candidate evaluations per second of the
//! Bayesian fault-selection engine (with memoization), which determines
//! how far ahead of exhaustive simulation the miner lands.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_core::{collect_golden_traces, BayesianMiner, MinerConfig};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let suite = ScenarioSuite::generate(8, 42);
    let traces = collect_golden_traces(&SimConfig::default(), &suite, 8);
    // Stride 16 keeps one full mining pass sub-second; throughput is
    // normalized per candidate, and the memo cache behaves identically.
    let config = MinerConfig { scene_stride: 16, ..MinerConfig::default() };
    let miner = BayesianMiner::fit(&traces, config).unwrap();
    let candidates = miner.candidate_count(&traces);

    let mut group = c.benchmark_group("mining_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(candidates as u64));
    group.bench_function("mine_8_scenarios_stride16", |b| {
        b.iter(|| black_box(miner.mine(black_box(&traces))))
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
