//! Acquisition-loop scoring: the per-round, non-simulation overhead of
//! `kind = "adaptive"` campaigns — fitting the per-group Beta
//! posteriors over a full candidate space, and re-ranking that space
//! after a round of observed outcomes. Both are normalized per
//! candidate; the loop pays each once per round, so they must stay
//! negligible next to the simulation jobs they steer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_core::{
    collect_golden_traces, AcquisitionConfig, BayesianMiner, CandidateScorer, MinerConfig,
};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;
use std::hint::black_box;

fn bench_scoring(c: &mut Criterion) {
    let suite = ScenarioSuite::generate(8, 42);
    let traces = collect_golden_traces(&SimConfig::default(), &suite, 8);
    // Stride 16 matches the mining_throughput bench's candidate space.
    let config = MinerConfig { scene_stride: 16, ..MinerConfig::default() };
    let miner = BayesianMiner::fit(&traces, config).unwrap();
    let predictions = miner.predict_deltas(&traces);
    let candidates = predictions.len();

    let mut group = c.benchmark_group("candidate_scoring");
    group.throughput(Throughput::Elements(candidates as u64));
    group.bench_function("fit_posteriors", |b| {
        b.iter(|| {
            black_box(CandidateScorer::new(black_box(&predictions), AcquisitionConfig::default()))
        })
    });
    group.bench_function("select_after_round", |b| {
        let mut scorer = CandidateScorer::new(&predictions, AcquisitionConfig::default());
        let mut explored = vec![false; candidates];
        // One round's worth of folded-in evidence, so scores are not the
        // flat prior and ties are rare — the realistic mid-loop shape.
        for (index, seen) in explored.iter_mut().enumerate().take(candidates.min(64)) {
            scorer.observe(index, index % 3 == 0);
            *seen = true;
        }
        b.iter(|| black_box(scorer.select(black_box(&explored), 64)))
    });
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
