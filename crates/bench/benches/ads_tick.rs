//! ADS tick microbenchmark with a per-stage breakdown.
//!
//! Measures the full closed-loop base tick (sense → localize → perceive
//! → plan → control → dynamics → world) in ticks per second on the
//! scalar path, then prints and emits where the tick time goes using
//! the `drivefi_ads::profiler` stage accumulators. The breakdown rows
//! land on the `DRIVEFI_BENCH_JSON` channel under group
//! `ads_tick_profile` alongside the bench's own `ads_tick` rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_ads::profiler;
use drivefi_sim::{SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;
use std::hint::black_box;

const JOBS: u64 = 8;

fn scenarios() -> Vec<ScenarioConfig> {
    (0..JOBS)
        .map(|i| {
            let mut s = ScenarioConfig::lead_vehicle_cruise(i);
            s.duration = 4.0;
            s
        })
        .collect()
}

fn bench_ads_tick(c: &mut Criterion) {
    // Force the stage profiler on before the first probe resolves the
    // env flag: this bench exists to attribute tick time.
    profiler::enable();

    let mut group = c.benchmark_group("ads_tick");
    group.sample_size(10);

    let config = SimConfig::default();
    let scenarios = scenarios();
    let ticks =
        JOBS * scenarios[0].scene_count() as u64 * drivefi_sim::simulation::BASE_TICKS_PER_SCENE;
    group.throughput(Throughput::Elements(ticks));

    group.bench_function("full_tick", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for scenario in &scenarios {
                let mut sim = Simulation::new(config, black_box(scenario));
                acc ^= sim.run().scenes;
            }
            black_box(acc)
        })
    });

    group.finish();

    // Per-stage attribution across everything the measurement loop ran.
    let report = profiler::report();
    let total: u64 = report.iter().map(|r| r.total_ns).sum();
    if total > 0 {
        println!("\nads_tick stage breakdown (share of profiled time):");
        for row in report.iter().filter(|r| r.samples > 0) {
            println!(
                "  {:>12}  {:>6.1}%  {:>7} ns/probe",
                row.phase.name(),
                100.0 * row.total_ns as f64 / total as f64,
                row.mean_ns(),
            );
        }
    }
    profiler::emit_json("ads_tick_profile");
}

criterion_group!(benches, bench_ads_tick);
criterion_main!(benches);
