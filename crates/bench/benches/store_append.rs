//! Persistent-store append throughput: records/s through the full
//! `StoreWriter` path (encode → CRC frame → sharded buffered append),
//! plus the read-side merge. The store must never be the bottleneck of
//! a campaign — the simulator produces a few jobs per second per
//! worker, so the ≥100k records/s acceptance floor leaves four orders
//! of magnitude of headroom.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use drivefi_ads::Signal;
use drivefi_fault::{FaultKind, FaultSpec, ScalarFaultModel, WindowSpec};
use drivefi_sim::Outcome;
use drivefi_store::{open_store, read_store, CampaignRecord};
use std::path::PathBuf;

/// Records appended per measured batch.
const RECORDS: u64 = 100_000;
const SHARDS: u32 = 8;

fn record(job: u64) -> CampaignRecord {
    CampaignRecord {
        job,
        scenario_id: (job % 24) as u32,
        scenario_seed: job.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        fault: Some(FaultSpec {
            kind: FaultKind::Scalar {
                signal: Signal::ALL[(job % Signal::ALL.len() as u64) as usize],
                model: if job.is_multiple_of(2) {
                    ScalarFaultModel::StuckMax
                } else {
                    ScalarFaultModel::StuckMin
                },
            },
            window: WindowSpec::scene(1 + job % 298),
        }),
        outcome: match job % 50 {
            0 => Outcome::Collision { scene: job % 300, actor: 1 },
            1 => Outcome::Hazard { scene: job % 300 },
            _ => Outcome::Safe,
        },
        injections: 4,
        scenes: 300,
        min_delta_lon: (job % 70) as f64 - 2.0,
        min_delta_lat: 1.5,
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drivefi-bench-store-{tag}-{}", std::process::id()))
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS));

    // The acceptance-floor path: open a fresh store, stream RECORDS
    // records through the sharded writer (checkpoint every 8192), seal.
    group.bench_function("append_100k_sharded", |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                let dir = bench_dir(&format!("append-{round}"));
                std::fs::remove_dir_all(&dir).ok();
                dir
            },
            |dir| {
                let (mut writer, _) = open_store(&dir, 1, RECORDS, SHARDS, 8192).unwrap();
                for job in 0..RECORDS {
                    writer.append(&record(job)).unwrap();
                }
                let meta = writer.finish().unwrap();
                assert!(meta.complete);
                std::fs::remove_dir_all(&dir).ok();
            },
            BatchSize::PerIteration,
        )
    });

    // Read-side: merge RECORDS records back out of the shards.
    let dir = bench_dir("read");
    std::fs::remove_dir_all(&dir).ok();
    let (mut writer, _) = open_store(&dir, 1, RECORDS, SHARDS, 1 << 20).unwrap();
    for job in 0..RECORDS {
        writer.append(&record(job)).unwrap();
    }
    writer.finish().unwrap();
    group.bench_function("read_merge_100k", |b| {
        b.iter(|| {
            let (_, records) = read_store(&dir).unwrap();
            assert_eq!(records.len(), RECORDS as usize);
            records.len()
        })
    });
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
