//! Stepping-core microbenchmark: the scalar `Simulation` loop against
//! the batched struct-of-arrays core at lane counts B ∈ {1, 8, 32}.
//!
//! All arms execute the same 32 golden jobs over short lead-cruise
//! scenarios and report throughput in scene-steps per second (jobs ×
//! scenes per iteration), so the numbers are directly comparable: any
//! gap between `scalar` and `batched_b*` is the SoA sweep + lockstep
//! dispatch, not different work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_sim::{BatchSimulation, SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;
use std::hint::black_box;

const JOBS: u64 = 32;

fn short_scenarios() -> Vec<ScenarioConfig> {
    (0..JOBS)
        .map(|i| {
            let mut s = ScenarioConfig::lead_vehicle_cruise(i);
            s.duration = 4.0; // 30 scenes keeps one iteration snappy
            s
        })
        .collect()
}

fn bench_sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    group.sample_size(10);

    let config = SimConfig::default();
    let scenarios = short_scenarios();
    let scene_steps = JOBS * scenarios[0].scene_count() as u64;
    group.throughput(Throughput::Elements(scene_steps));

    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for scenario in &scenarios {
                let mut sim = Simulation::new(config, black_box(scenario));
                acc ^= sim.run().scenes;
            }
            black_box(acc)
        })
    });

    for lanes in [1usize, 8, 32] {
        group.bench_function(&format!("batched_b{lanes}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for chunk in scenarios.chunks(lanes) {
                    let mut batch = BatchSimulation::new(true);
                    for (i, scenario) in chunk.iter().enumerate() {
                        batch.push_job(config, black_box(scenario), vec![], i as u64);
                    }
                    for result in batch.run_to_completion() {
                        acc ^= result.report.scenes;
                    }
                }
                black_box(acc)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sim_step);
criterion_main!(benches);
