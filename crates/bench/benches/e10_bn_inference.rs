//! E10 — Bayesian-network inference micro-costs.
//!
//! The paper's feasibility argument rests on "BNs enable rapid
//! probabilistic inference": one counterfactual query must be orders of
//! magnitude cheaper than one simulated injection run. This bench
//! measures (a) a sprinkler-size posterior, (b) a full 3-TBN
//! counterfactual δ̂ query, and (c) the memoized mining step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drivefi_bayes::{BayesNet, Cpt, Evidence};
use drivefi_core::{collect_golden_traces, BayesianMiner, MinerConfig};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;
use std::hint::black_box;

fn sprinkler() -> (BayesNet, drivefi_bayes::VarId, drivefi_bayes::VarId) {
    let mut net = BayesNet::new();
    let c = net.add_variable("cloudy", 2);
    let s = net.add_variable("sprinkler", 2);
    let r = net.add_variable("rain", 2);
    let w = net.add_variable("wet", 2);
    net.set_cpt(Cpt::new(c, vec![], vec![0.5, 0.5])).unwrap();
    net.set_cpt(Cpt::new(s, vec![c], vec![0.5, 0.5, 0.9, 0.1])).unwrap();
    net.set_cpt(Cpt::new(r, vec![c], vec![0.8, 0.2, 0.2, 0.8])).unwrap();
    net.set_cpt(Cpt::new(w, vec![s, r], vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99])).unwrap();
    (net, r, w)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_bn_inference");

    let (net, rain, wet) = sprinkler();
    group.bench_function("sprinkler_posterior", |b| {
        b.iter(|| {
            let e = Evidence::from([(wet, 1)]);
            black_box(net.posterior(black_box(rain), &e).unwrap())
        })
    });

    // Exact vs approximate inference on the same query: quantifies the
    // trade the paper's "rapid probabilistic inference" claim rests on
    // (VE is exact and fast on tree-like nets; sampling wins only on
    // dense topologies VE cannot handle).
    use drivefi_bayes::{gibbs_posterior, likelihood_weighting, SampleOpts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    group.bench_function("sprinkler_likelihood_weighting_2k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SampleOpts::new(2_000);
        b.iter(|| {
            let e = Evidence::from([(wet, 1)]);
            black_box(
                likelihood_weighting(&net, rain, &e, &Evidence::new(), &opts, &mut rng).unwrap(),
            )
        })
    });
    group.bench_function("sprinkler_gibbs_2k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SampleOpts { samples: 2_000, burn_in: 200, thin: 1 };
        b.iter(|| {
            let e = Evidence::from([(wet, 1)]);
            black_box(gibbs_posterior(&net, rain, &e, &Evidence::new(), &opts, &mut rng).unwrap())
        })
    });

    // Fit a small real model once; bench the counterfactual query.
    let suite = ScenarioSuite::generate(4, 42);
    let traces = collect_golden_traces(&SimConfig::default(), &suite, 4);
    let miner = BayesianMiner::fit(&traces, MinerConfig::default()).unwrap();
    let t = &traces[1];
    let mid = t.frames.len() / 2;
    let frame = t.frames[mid];
    let obs0 = miner.model().observe(&t.frames[mid - 1]);
    let obs1 = miner.model().observe(&frame);

    group.sample_size(20);
    group.bench_function("tbn_counterfactual_delta_hat", |b| {
        b.iter(|| {
            black_box(
                miner
                    .delta_hat(
                        black_box(&frame),
                        black_box(&obs0),
                        black_box(&obs1),
                        drivefi_ads::Signal::FinalThrottle,
                        drivefi_fault::ScalarFaultModel::StuckMax,
                    )
                    .unwrap(),
            )
        })
    });

    // Mining throughput on a strided miner (every 20th scene) so one
    // iteration stays sub-second; the per-candidate cost is what matters
    // and the memo cache behaves identically.
    let strided =
        BayesianMiner::fit(&traces, MinerConfig { scene_stride: 20, ..MinerConfig::default() })
            .unwrap();
    group.sample_size(10);
    group.bench_function("mine_one_trace_memoized", |b| {
        b.iter_batched(
            || traces[1].clone(),
            |trace| black_box(strided.mine(std::slice::from_ref(&trace))),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
