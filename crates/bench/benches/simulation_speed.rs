//! Simulation throughput: the cost of one injection run — the
//! denominator of the paper's 3 690× acceleration claim (E4).

use criterion::{criterion_group, criterion_main, Criterion};
use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_speed");
    group.sample_size(20);

    let scenario = ScenarioConfig::lead_vehicle_cruise(7);
    group.bench_function("golden_40s_scenario", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default(), black_box(&scenario));
            black_box(sim.run())
        })
    });

    let fault = Fault {
        kind: FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax },
        window: FaultWindow::scene(60),
    };
    group.bench_function("faulted_40s_scenario", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default(), black_box(&scenario));
            let mut injector = Injector::new(vec![fault]);
            black_box(sim.run_with(&mut injector))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
