//! Simulation throughput: the cost of one injection run — the
//! denominator of the paper's 3 690× acceleration claim (E4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{CampaignEngine, CampaignJob, CampaignResult, SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;
use std::hint::black_box;
use std::sync::Arc;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_speed");
    group.sample_size(20);

    let scenario = ScenarioConfig::lead_vehicle_cruise(7);
    group.bench_function("golden_40s_scenario", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default(), black_box(&scenario));
            black_box(sim.run())
        })
    });

    let fault = Fault {
        kind: FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax },
        window: FaultWindow::scene(60),
    };
    group.bench_function("faulted_40s_scenario", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default(), black_box(&scenario));
            let mut injector = Injector::new(vec![fault]);
            black_box(sim.run_with(&mut injector))
        })
    });

    group.finish();
}

/// Campaign job-dispatch throughput on an exhaustive-style sweep: one
/// scenario × many single-scene faults. Every job shares the scenario's
/// single `Arc` allocation, so dispatch cost is the fault list plus a
/// refcount bump — the shape whose per-job deep clone this bench exists
/// to keep dead. Short scenarios keep the simulated work small relative
/// to dispatch.
fn bench_campaign_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_dispatch");
    group.sample_size(10);

    let mut scenario = ScenarioConfig::lead_vehicle_cruise(7);
    scenario.duration = 4.0; // 30 scenes: dispatch-heavy, sim-light
    let scenario = Arc::new(scenario);
    let scenes = scenario.scene_count() as u64;
    let sweep = |model| {
        let scenario = Arc::clone(&scenario);
        (1..scenes - 1).map(move |scene| CampaignJob {
            id: scene,
            scenario: Arc::clone(&scenario),
            faults: vec![Fault {
                kind: FaultKind::Scalar { signal: Signal::RawThrottle, model },
                window: FaultWindow::scene(scene),
            }],
        })
    };
    let jobs_per_sweep = 2 * (scenes - 2);

    let engine = CampaignEngine::new(SimConfig::default()).with_workers(4);
    group.throughput(Throughput::Elements(jobs_per_sweep));
    group.bench_function("exhaustive_sweep_zero_clone", |b| {
        b.iter(|| {
            let mut done = 0u64;
            let jobs = sweep(ScalarFaultModel::StuckMax).chain(sweep(ScalarFaultModel::StuckMin));
            engine.run(jobs, &mut |_: u64, result: CampaignResult| {
                done += u64::from(!result.report.outcome.is_safe());
            });
            black_box(done)
        })
    });

    // The mined-injection shape (the paper's point): faults concentrated
    // in the hazardous tail. Jobs fork off the shared golden prefix right
    // before their window, so most of each run is never re-simulated —
    // the shape the batched engine's prefix sharing is built for.
    let tail_scenes: Vec<u64> = (scenes - 8..scenes - 1).collect();
    let tail_sweep = |model| {
        let scenario = Arc::clone(&scenario);
        let tail = tail_scenes.clone();
        tail.into_iter().map(move |scene| CampaignJob {
            id: scene,
            scenario: Arc::clone(&scenario),
            faults: vec![Fault {
                kind: FaultKind::Scalar { signal: Signal::RawThrottle, model },
                window: FaultWindow::scene(scene),
            }],
        })
    };
    let tail_jobs = 2 * tail_scenes.len() as u64;
    group.throughput(Throughput::Elements(tail_jobs));
    group.bench_function("mined_tail_sweep", |b| {
        b.iter(|| {
            let mut done = 0u64;
            let jobs = tail_sweep(ScalarFaultModel::StuckMax)
                .chain(tail_sweep(ScalarFaultModel::StuckMin));
            engine.run(jobs, &mut |_: u64, result: CampaignResult| {
                done += u64::from(!result.report.outcome.is_safe());
            });
            black_box(done)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_simulation, bench_campaign_dispatch);
criterion_main!(benches);
