//! Shared helpers for the experiment binaries live in the binaries themselves; this crate exists for its benches and bins.
