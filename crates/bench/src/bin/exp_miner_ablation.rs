//! **Miner design-choice ablation** (DESIGN.md §4): how the mined-set
//! quality depends on (a) the kinematics-derived CPD augmentation and
//! (b) the discretization resolution.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_miner_ablation
//! ```

use drivefi_core::{collect_golden_traces, validate_candidates, BayesianMiner, MinerConfig};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;

fn main() {
    let workers = drivefi_sim::default_workers();
    let suite = ScenarioSuite::generate(12, 2026);
    let sim = SimConfig::default();
    let golden = collect_golden_traces(&sim, &suite, workers);

    let configs: [(&str, MinerConfig); 4] = [
        (
            "bins=6 + kinematic CPDs (default)",
            MinerConfig { scene_stride: 8, ..MinerConfig::default() },
        ),
        (
            "bins=6, data-only CPDs",
            MinerConfig {
                scene_stride: 8,
                kinematic_augmentation: false,
                ..MinerConfig::default()
            },
        ),
        (
            "bins=4 + kinematic CPDs",
            MinerConfig { scene_stride: 8, bins: 4, ..MinerConfig::default() },
        ),
        (
            "bins=8 + kinematic CPDs",
            MinerConfig { scene_stride: 8, bins: 8, ..MinerConfig::default() },
        ),
    ];

    println!(
        "miner ablation over {} scenarios ({} scenes), stride 8",
        suite.scenarios.len(),
        suite.scene_count()
    );
    println!();
    println!("| configuration                      | mined | manifested | precision | mine time |");
    println!("|------------------------------------|-------|------------|-----------|-----------|");
    for (name, config) in configs {
        let t0 = std::time::Instant::now();
        let miner = BayesianMiner::fit(&golden, config).expect("fit");
        let critical = miner.mine_parallel(&golden, workers);
        let mine_time = t0.elapsed();
        let stats = validate_candidates(&sim, &suite, &critical, workers);
        println!(
            "| {name:34} | {:5} | {:10} | {:8.1}% | {mine_time:9.1?} |",
            critical.len(),
            stats.manifested,
            100.0 * stats.precision(),
        );
    }
    println!();
    println!("expected shape: quality is flat across configurations — the miner");
    println!("forecasts the actuation response (whose CPDs are well-conditioned at");
    println!("any resolution) and reconstructs δ̂ through vehicle kinematics, so");
    println!("neither the kinematic CPD augmentation nor the bin count moves the");
    println!("mined set much. What the resolution does buy is cost: the VE factor");
    println!("tables grow steeply with bins (4 bins ≈ 10x faster than 6, 8 bins");
    println!("~5x slower), making coarse bins the right default for large corpora.");
}
