//! **E11 — Exhaustive ground truth (extension)**: the paper reports the
//! miner's *precision* (460 of 561 mined faults manifest, §I) but the
//! exhaustive campaign that would expose its *recall* was the 615-day
//! cost DriveFI exists to avoid. Our simulator is fast enough to run it
//! on a corpus subset: every candidate fault is injected for real, and
//! the manifested set is compared against the mined set. The whole
//! experiment is a [`CampaignPlan`] executed through [`run_plan`].
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e11 [scenarios] [stride]
//! ```

use drivefi_fault::FaultSpace;
use drivefi_plan::{
    run_plan, CampaignKind, CampaignPlan, PlanResult, ScenarioSelection, SimSection, SinkChoice,
};

fn main() {
    let scenarios: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let stride: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let plan = CampaignPlan {
        name: "exp-e11".into(),
        kind: CampaignKind::Exhaustive { scene_stride: stride },
        seed: 0,
        workers: None,
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: scenarios, seed: 2026 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: None,
    };

    println!("E11: exhaustive ground truth on {scenarios} scenarios (scene stride {stride})");
    let PlanResult::Exhaustive(report) = run_plan(&plan).unwrap() else {
        unreachable!("exhaustive plans produce exhaustive reports");
    };

    println!();
    println!("| metric                   | value      |");
    println!("|--------------------------|------------|");
    println!("| candidate faults         | {:10} |", report.candidates);
    println!("| ground-truth hazards     | {:10} |", report.true_hazards);
    println!("| mined |F_crit|           | {:10} |", report.mined);
    println!("| true positives           | {:10} |", report.true_positives);
    println!("| false positives          | {:10} |", report.false_positives);
    println!("| false negatives          | {:10} |", report.false_negatives);
    println!("| precision                | {:9.1}% |", 100.0 * report.precision());
    println!("| recall                   | {:9.1}% |", 100.0 * report.recall());
    println!("| F1                       | {:10.2} |", report.f1());
    println!("| exhaustive wall-clock    | {:9.1?} |", report.exhaustive_time);
    println!("| mining wall-clock        | {:9.1?} |", report.mining_time);
    println!();
    println!("| fault                      | hazards/candidates | mined (TP) |");
    println!("|----------------------------|--------------------|------------|");
    for ((signal, model), (hazards, cands, mined, tp)) in &report.by_fault {
        println!(
            "| {:26} | {hazards:8}/{cands:9} | {mined:5} ({tp:2}) |",
            format!("{signal}:{model}")
        );
    }
    println!();
    println!(
        "paper shape: precision ≈ 82% (460/561); recall unmeasured in the paper — \
         this extension closes that gap on a corpus subset."
    );
}
