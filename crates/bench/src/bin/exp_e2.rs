//! **E2 — Random ADS-output fault injection** (paper fault model *b*,
//! random selection; §I: "several weeks of 5000 random FI experiments
//! did not result in discovery of a single safety hazard").
//!
//! 5 000 runs, each with one uniformly random (scenario, scene, signal,
//! min|max) single-scene corruption, over the paper-scale 7 200-scene
//! suite — expressed as a [`CampaignPlan`] and executed through
//! [`run_plan`], exactly as a shipped `plans/*.toml` file would be.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e2 [runs]
//! ```

use drivefi_fault::FaultSpace;
use drivefi_plan::{
    run_plan, CampaignKind, CampaignPlan, PlanResult, ScenarioSelection, SimSection, SinkChoice,
};

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5000);
    let plan = CampaignPlan {
        name: "exp-e2".into(),
        kind: CampaignKind::Random { runs },
        seed: 0xE2,
        workers: None,
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 24, seed: 2026 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: None,
    };

    let t0 = std::time::Instant::now();
    let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
        unreachable!("random plans produce random stats");
    };
    let dt = t0.elapsed();

    println!("E2: random output-corruption campaign over the 7200-scene suite");
    println!();
    println!("| metric                  | ours            | paper          |");
    println!("|-------------------------|-----------------|----------------|");
    println!("| runs                    | {:15} | 5000           |", stats.runs);
    println!("| effective injections    | {:15} | n/a            |", stats.effective_injections);
    println!("| safety hazards          | {:15} | 0              |", stats.hazards);
    println!("| collisions              | {:15} | 0              |", stats.collisions);
    println!(
        "| hazard rate             | {:14.3}% | 0%             |",
        100.0 * stats.hazard_rate()
    );
    println!("| wall clock              | {dt:<15.1?} | several weeks  |");
    if !stats.hazard_details.is_empty() {
        println!();
        println!("hazardous picks (lucky randoms):");
        for (scenario, scene, target) in &stats.hazard_details {
            println!("  scenario {scenario} scene {scene} target {target}");
        }
    }
}
