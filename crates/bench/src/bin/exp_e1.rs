//! **E1 — Random architectural fault injection** (paper fault model *a*;
//! §I results paragraph).
//!
//! Paper: 5 000 random injections into non-ECC processor structures →
//! 0 safety hazards; 1.93 % SDC (all recovered by the ADS); 7.35 %
//! kernel panics + hangs; the rest masked.
//!
//! Here: 5 000 single-bit flips into the soft-error VM running the ADS
//! control kernel. SDC survivors are then replayed through the closed
//! loop as one-scene actuation corruptions with the corrupted kernel
//! outputs, counting any safety hazards.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e1
//! ```

use drivefi_ads::Signal;
use drivefi_fault::{
    ArchProgram, ArchSimulator, Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel,
};
use drivefi_sim::{SimConfig, Simulation};
use drivefi_world::scenario::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const N: usize = 5000;
    let sim =
        ArchSimulator::new(ArchProgram::ads_control_kernel(50.0, 30.0, 25.0, 0.2, 0.01, 31.0));
    let mut rng = StdRng::seed_from_u64(0xE1);
    let (masked, sdc, crash, hang, sdc_sites) = sim.campaign(N, &mut rng);

    let pct = |x: usize| 100.0 * x as f64 / N as f64;
    println!("E1: random architectural FI, {N} single-bit register flips");
    println!();
    println!("| outcome       | count | ours   | paper  |");
    println!("|---------------|-------|--------|--------|");
    println!("| masked/benign | {masked:5} | {:5.2}% | ~90.7% |", pct(masked));
    println!("| SDC           | {sdc:5} | {:5.2}% |  1.93% |", pct(sdc));
    println!("| crash (panic) | {crash:5} | {:5.2}% |  \\     |", pct(crash));
    println!("| hang          | {hang:5} | {:5.2}% |  7.35% (panic+hang) |", pct(hang));

    // Replay up to 200 SDC survivors through the closed loop: corrupt the
    // planner outputs for one scene with the corrupted kernel outputs.
    let scenario = ScenarioConfig::lead_vehicle_cruise(17);
    let mut hazards = 0usize;
    let mut replays = 0usize;
    for (site, _) in sdc_sites.iter().take(200) {
        // Re-derive the corrupted outputs deterministically.
        let outcome = sim.inject(*site);
        let drivefi_fault::ArchOutcome::Sdc { relative_error } = outcome else {
            continue;
        };
        let scene = 40 + (replays as u64 % 200);
        // Map the corrupted-accel magnitude onto a throttle or brake
        // stuck-at for one scene.
        let corrupted = (sim.golden_outputs()[0] * (1.0 + relative_error)).clamp(-8.0, 3.5);
        let fault = if corrupted >= 0.0 {
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawThrottle,
                    model: ScalarFaultModel::StuckAt((corrupted / 3.5).min(1.0)),
                },
                window: FaultWindow::scene(scene),
            }
        } else {
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawBrake,
                    model: ScalarFaultModel::StuckAt((-corrupted / 8.0).min(1.0)),
                },
                window: FaultWindow::scene(scene),
            }
        };
        let mut s = Simulation::new(SimConfig::default(), &scenario);
        let mut injector = Injector::new(vec![fault]);
        let report = s.run_with(&mut injector);
        if report.outcome.is_hazardous() {
            hazards += 1;
        }
        replays += 1;
    }
    println!();
    println!(
        "SDC survivors replayed through the closed loop: {replays}, safety hazards: {hazards} \
         (paper: ADS recovered from all SDC actuation errors — 0 hazards)"
    );
}
