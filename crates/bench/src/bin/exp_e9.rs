//! **E9 — Per-variable criticality** (paper Table-I-style analysis of
//! which instrumented ADS outputs dominate the critical set): share of
//! `F_crit` and of *validated* hazards per signal.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e9 [scene_stride]
//! ```

use drivefi_core::{
    collect_golden_traces, validate_candidates, BayesianMiner, MinerConfig, SituationLibrary,
};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;
use std::collections::BTreeMap;

fn main() {
    let stride: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let workers = drivefi_sim::default_workers();
    let suite = ScenarioSuite::paper_suite(2026);
    let sim = SimConfig::default();

    let golden = collect_golden_traces(&sim, &suite, workers);
    let config = MinerConfig { scene_stride: stride, ..MinerConfig::default() };
    let miner = BayesianMiner::fit(&golden, config).expect("fit");
    let critical = miner.mine_parallel(&golden, workers);
    let validation = validate_candidates(&sim, &suite, &critical, workers);

    let mut mined: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut manifested: BTreeMap<&'static str, usize> = BTreeMap::new();
    for m in &validation.mined {
        *mined.entry(m.candidate.signal.name()).or_default() += 1;
        if m.outcome.is_hazardous() {
            *manifested.entry(m.candidate.signal.name()).or_default() += 1;
        }
    }

    println!("E9: which ADS output variables dominate the critical set (stride {stride})");
    println!();
    println!("| signal               | mined | manifested | precision |");
    println!("|----------------------|-------|------------|-----------|");
    for (signal, n) in &mined {
        let h = manifested.get(signal).copied().unwrap_or(0);
        println!("| {signal:20} | {n:5} | {h:10} | {:8.1}% |", 100.0 * h as f64 / *n as f64);
    }
    println!();
    println!(
        "total mined {} / manifested {} — paper shape: actuation (throttle/brake) and \
         kinematic-state variables dominate; perception variables contribute the rest.",
        validation.mined.len(),
        validation.manifested
    );

    // The paper's proposed end product: the situation library distilled
    // into testing rules ("develop rules and conditions for AV testing
    // and safe driving", §I).
    let names: Vec<String> = suite.scenarios.iter().map(|s| s.name.clone()).collect();
    let library = SituationLibrary::build(&validation.mined, &golden, &names);
    println!();
    println!(
        "situation library: {} critical scenes → {} derived test rules:",
        library.len(),
        library.derive_rules().len()
    );
    for rule in library.derive_rules().iter().take(8) {
        println!("  {}", rule.condition());
    }
}
