//! **E5 — Case study: δ-dependence of the throttle fault** (paper
//! Example 1 / Fig. 4 top): the same corrupted-throttle burst is fatal
//! when injected while the cut-in squeezes δ, and masked when injected
//! with a wide margin.
//!
//! Emits the figure series: injection scene, min golden δ over the burst
//! window, outcome.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e5
//! ```

use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use drivefi_world::scenario::ScenarioConfig;

fn main() {
    println!("E5: outcome of a 1.2 s max-throttle/no-brake burst vs injection timing");
    println!();
    println!("| scenario seed | scene | min golden δ_lon in window [m] | outcome |");
    println!("|---------------|-------|--------------------------------|---------|");

    let mut hazard_deltas: Vec<f64> = Vec::new();
    let mut safe_deltas: Vec<f64> = Vec::new();
    for seed in [0u64, 1, 8] {
        let scenario = ScenarioConfig::cut_in(seed);
        let config =
            SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
        let mut sim = Simulation::new(config, &scenario);
        let golden = sim.run();
        assert!(golden.outcome.is_safe(), "golden must be safe");
        let trace = golden.trace.unwrap();

        for scene in (8..280u64).step_by(10) {
            let window_delta = trace.frames
                [scene as usize..(scene as usize + 16).min(trace.frames.len())]
                .iter()
                .map(|f| f.delta_true.longitudinal)
                .fold(f64::INFINITY, f64::min);
            let faults = vec![
                Fault {
                    kind: FaultKind::Scalar {
                        signal: Signal::RawThrottle,
                        model: ScalarFaultModel::StuckMax,
                    },
                    window: FaultWindow::burst(scene * BASE_TICKS_PER_SCENE, 36),
                },
                Fault {
                    kind: FaultKind::Scalar {
                        signal: Signal::RawBrake,
                        model: ScalarFaultModel::StuckMin,
                    },
                    window: FaultWindow::burst(scene * BASE_TICKS_PER_SCENE, 36),
                },
            ];
            let mut sim = Simulation::new(SimConfig::default(), &scenario);
            let mut injector = Injector::new(faults);
            let report = sim.run_with(&mut injector);
            println!("| {seed:13} | {scene:5} | {window_delta:30.1} | {} |", report.outcome);
            if report.outcome.is_hazardous() {
                hazard_deltas.push(window_delta);
            } else {
                safe_deltas.push(window_delta);
            }
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "hazardous injections: {} (mean window δ = {:.1} m); masked: {} (mean window δ = {:.1} m)",
        hazard_deltas.len(),
        mean(&hazard_deltas),
        safe_deltas.len(),
        mean(&safe_deltas)
    );
    println!("paper shape: hazards require small δ at injection time — confirmed when the");
    println!("hazardous mean is far below the masked mean.");
}
