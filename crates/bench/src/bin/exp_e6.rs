//! **E6 — Case study: delayed perception** (paper Example 2 / Fig. 4
//! bottom, the Tesla-crash analog): freezing the world model across the
//! lead-exit reveal turns a survivable scenario into a collision.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e6
//! ```

use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector};
use drivefi_sim::{SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use drivefi_world::scenario::ScenarioConfig;

fn main() {
    println!("E6: delayed-perception (frozen world model) across the lead-exit reveal");
    println!();
    println!("| seed | golden outcome (min δ_lon) | faulted outcome (min δ_lon) |");
    println!("|------|----------------------------|------------------------------|");

    let mut reproduced = 0;
    let mut total = 0;
    for seed in [11u64, 4, 20, 28] {
        let scenario = ScenarioConfig::lead_exit_reveal(seed);
        let config =
            SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
        let mut sim = Simulation::new(config, &scenario);
        let golden = sim.run();
        let trace = golden.trace.as_ref().unwrap();
        let reveal =
            trace.frames.windows(2).find_map(|w| match (w[0].lead_distance, w[1].lead_distance) {
                (Some(a), Some(b)) if b - a > 20.0 => Some(w[1].scene),
                _ => None,
            });
        let Some(reveal) = reveal else {
            println!("| {seed:4} | no reveal detected — skipped | |");
            continue;
        };
        let fault = Fault {
            kind: FaultKind::FreezeWorldModel,
            window: FaultWindow::burst(
                reveal.saturating_sub(5) * BASE_TICKS_PER_SCENE,
                60 * BASE_TICKS_PER_SCENE,
            ),
        };
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let mut injector = Injector::new(vec![fault]);
        let faulted = sim.run_with(&mut injector);
        println!(
            "| {seed:4} | {} ({:.1}) | {} ({:.1}) |",
            golden.outcome, golden.min_delta_lon, faulted.outcome, faulted.min_delta_lon
        );
        total += 1;
        if golden.outcome.is_safe() && faulted.outcome.is_hazardous() {
            reproduced += 1;
        }
    }
    println!();
    println!(
        "reproduced the crash mechanism in {reproduced}/{total} seeds \
         (paper: Bayesian FI recreated the Tesla scenario)"
    );
}
