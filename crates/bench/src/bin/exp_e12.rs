//! **E12 — Traffic-rule violations under faults (extension)**: §II-B of
//! the paper defines safety by collision avoidance only and defers
//! "extended notions of safety, e.g., using traffic rules" to future
//! work. This experiment implements that extension: the same fault
//! campaign is scored by the rule monitor (speeding, tailgating, lane
//! departures, harsh maneuvers) alongside the δ-hazard monitor, showing
//! that faults degrade *operational* safety well before they cause
//! collision courses.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e12 [scenarios]
//! ```

use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{RuleConfig, RuleKind, RuleMonitor, RuleSummary, SimConfig, Simulation};
use drivefi_world::ScenarioSuite;

fn run_suite(suite: &ScenarioSuite, sim: &SimConfig, fault: Option<Fault>) -> (RuleSummary, usize) {
    let mut total = RuleSummary::default();
    let mut hazards = 0usize;
    for scenario in &suite.scenarios {
        let mut monitor = RuleMonitor::new(RuleConfig::default(), sim.ads.vehicle);
        let mut s = Simulation::new(*sim, scenario);
        let report = match fault {
            Some(f) => s.run_monitored(&mut Injector::new(vec![f]), &mut monitor),
            None => s.run_monitored(&mut drivefi_ads::NullInterceptor, &mut monitor),
        };
        let summary = monitor.finish();
        for i in 0..5 {
            total.episodes[i] += summary.episodes[i];
            total.scenes[i] += summary.scenes[i];
        }
        total.observed_scenes += summary.observed_scenes;
        if report.outcome.is_hazardous() {
            hazards += 1;
        }
    }
    (total, hazards)
}

fn main() {
    let scenarios: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let suite = ScenarioSuite::generate(scenarios, 2026);
    let sim = SimConfig::default();

    // Representative sustained faults (half-second bursts at scene 40):
    let burst = FaultWindow::burst(160, 60);
    let campaigns: [(&str, Option<Fault>); 4] = [
        ("golden (no fault)", None),
        (
            "throttle stuck max",
            Some(Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: burst,
            }),
        ),
        (
            "brake stuck max",
            Some(Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::StuckMax,
                },
                window: burst,
            }),
        ),
        (
            "steering stuck max",
            Some(Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalSteering,
                    model: ScalarFaultModel::StuckMax,
                },
                window: burst,
            }),
        ),
    ];

    println!("E12: traffic-rule episodes over {scenarios} scenarios (2-s faults at scene 40)");
    println!();
    println!(
        "| campaign            | speed | headway | lane | brake | steer | total | δ-hazards |"
    );
    println!(
        "|---------------------|-------|---------|------|-------|-------|-------|-----------|"
    );
    let mut golden_total = 0u64;
    for (name, fault) in campaigns {
        let (summary, hazards) = run_suite(&suite, &sim, fault);
        println!(
            "| {name:19} | {:5} | {:7} | {:4} | {:5} | {:5} | {:5} | {:9} |",
            summary.count(RuleKind::SpeedLimit),
            summary.count(RuleKind::Headway),
            summary.count(RuleKind::LaneKeeping),
            summary.count(RuleKind::HarshBraking),
            summary.count(RuleKind::HarshSteering),
            summary.total(),
            hazards,
        );
        if name.starts_with("golden") {
            golden_total = summary.total();
        }
    }
    println!();
    println!(
        "shape: faulted campaigns must out-violate the golden baseline ({golden_total} episodes) \
         even where no δ-hazard develops — the paper's deferred 'extended notion of safety'."
    );
}
