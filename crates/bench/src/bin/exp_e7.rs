//! **E7 — Natural-resilience ablation** (paper §II-C): the paper credits
//! the ADS's masking of random transients to (a) high-frequency
//! recomputation, (b) Kalman-filter sensor fusion, and (c) PID output
//! smoothing. Ablating each mechanism should raise the hazard rate of
//! the *same* random transient campaign.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e7 [runs]
//! ```

use drivefi_ads::AdsConfig;
use drivefi_core::{random_output_campaign, RandomCampaignConfig};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let workers = drivefi_sim::default_workers();
    let suite = ScenarioSuite::paper_suite(2026);

    let configs: [(&str, AdsConfig); 4] = [
        ("full stack (paper baseline)", AdsConfig::default()),
        ("no Kalman fusion", AdsConfig { kalman_fusion: false, ..AdsConfig::default() }),
        ("no PID smoothing", AdsConfig { pid_smoothing: false, ..AdsConfig::default() }),
        ("planner at 1/8 rate", AdsConfig { planner_divisor: 8, ..AdsConfig::default() }),
    ];

    println!("E7: hazard rate of {runs} random single-scene corruptions per configuration");
    println!();
    println!("| configuration                | hazards | collisions | rate    |");
    println!("|------------------------------|---------|------------|---------|");
    let mut rates = Vec::new();
    for (name, ads) in configs {
        let sim = SimConfig { ads, ..SimConfig::default() };
        let cfg = RandomCampaignConfig { runs, seed: 0xE7, workers };
        let stats = random_output_campaign(&sim, &suite, &cfg);
        println!(
            "| {name:28} | {:7} | {:10} | {:6.2}% |",
            stats.hazards,
            stats.collisions,
            100.0 * stats.hazard_rate()
        );
        rates.push((name, stats.hazard_rate()));
    }
    println!();
    let baseline = rates[0].1;
    let raised = rates[1..].iter().filter(|(_, r)| *r >= baseline).count();
    println!(
        "ablations with hazard rate >= full stack: {raised}/3 \
         (paper shape: every masking mechanism removed should weaken resilience)"
    );
}
