//! **E8 — Safety-potential timeline** (paper Fig. 2/4 style): the
//! per-scene δ trace of a golden run against the same run with the
//! Example-1 throttle fault, written as CSV for plotting and sketched as
//! ASCII art.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e8 [out.csv]
//! ```

use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use drivefi_world::scenario::ScenarioConfig;

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "results/e8_delta_timeline.csv".to_owned());
    let scenario = ScenarioConfig::cut_in(0);
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };

    let mut sim = Simulation::new(config, &scenario);
    let golden = sim.run();
    let golden_trace = golden.trace.expect("trace");

    // Burst at the squeeze (as mined by E3-style timing).
    let knife = golden_trace
        .frames
        .iter()
        .min_by(|a, b| a.delta_true.longitudinal.partial_cmp(&b.delta_true.longitudinal).unwrap())
        .unwrap()
        .scene;
    let inject_scene = knife.saturating_sub(8);
    let faults = vec![
        Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::burst(inject_scene * BASE_TICKS_PER_SCENE, 36),
        },
        Fault {
            kind: FaultKind::Scalar { signal: Signal::RawBrake, model: ScalarFaultModel::StuckMin },
            window: FaultWindow::burst(inject_scene * BASE_TICKS_PER_SCENE, 36),
        },
    ];
    let mut sim = Simulation::new(config, &scenario);
    let mut injector = Injector::new(faults);
    let faulted = sim.run_with(&mut injector);
    let faulted_trace = faulted.trace.expect("trace");

    // CSV.
    let mut csv =
        String::from("scene,time,delta_golden,delta_faulted,ego_v_golden,ego_v_faulted\n");
    for (g, f) in golden_trace.frames.iter().zip(&faulted_trace.frames) {
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            g.scene, g.time, g.delta_true.longitudinal, f.delta_true.longitudinal, g.ego.v, f.ego.v
        ));
    }
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &csv).expect("write csv");

    println!(
        "E8: δ_lon timeline — golden vs Example-1 throttle fault (inject @ scene {inject_scene})"
    );
    println!("golden outcome: {}; faulted outcome: {}", golden.outcome, faulted.outcome);
    println!("csv written to {out_path}");
    println!();
    // ASCII sketch: 60 scenes around the injection.
    let lo = inject_scene.saturating_sub(10) as usize;
    let hi = (inject_scene as usize + 50).min(golden_trace.frames.len());
    println!("scene |  golden δ | faulted δ | sketch (g = golden, F = faulted, | = 0)");
    for i in (lo..hi).step_by(2) {
        let g = golden_trace.frames[i].delta_true.longitudinal;
        let f = faulted_trace.frames[i].delta_true.longitudinal;
        let pos = |d: f64| ((d.clamp(-20.0, 40.0) + 20.0) / 60.0 * 50.0) as usize;
        let mut line = vec![b' '; 52];
        line[pos(0.0)] = b'|';
        line[pos(g)] = b'g';
        line[pos(f)] = b'F';
        println!(
            "{:5} | {g:9.2} | {f:9.2} | {}",
            golden_trace.frames[i].scene,
            String::from_utf8_lossy(&line)
        );
    }
}
