//! **E3 + E4 — Bayesian fault mining and acceleration** (the paper's
//! headline result, §I):
//!
//! * candidate corpus ≈ 98 400 faults → exhaustive simulation ≈ 615 days,
//! * Bayesian FI found 561 critical faults in < 4 h (3 690×),
//! * 460 of 561 manifested as safety hazards when actually injected,
//! * the hazards concentrated in 68 of 7 200 scenes.
//!
//! This binary runs the full pipeline at paper scale (24 scenarios,
//! 7 200 scenes) and prints the same accounting.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e3 [scene_stride]
//! ```

use drivefi_core::{
    collect_golden_traces, validate_candidates, AccelerationReport, BayesianMiner, MinerConfig,
};
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;
use std::time::Instant;

fn main() {
    let stride: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let workers = drivefi_sim::default_workers();
    let suite = ScenarioSuite::paper_suite(2026);
    let sim = SimConfig::default();

    println!(
        "E3/E4: Bayesian FI over {} scenarios / {} scenes (stride {stride})",
        suite.scenarios.len(),
        suite.scene_count()
    );

    // --- Mining phase (golden runs + model fit + counterfactuals) ---
    let mine_t0 = Instant::now();
    let golden = collect_golden_traces(&sim, &suite, workers);
    let golden_time = mine_t0.elapsed();
    let config = MinerConfig { scene_stride: stride, ..MinerConfig::default() };
    let fit_t0 = Instant::now();
    let miner = BayesianMiner::fit(&golden, config).expect("model fit");
    let fit_time = fit_t0.elapsed();
    let mine_t1 = Instant::now();
    let critical = miner.mine_parallel(&golden, workers);
    let mine_time = mine_t1.elapsed();
    let total_mining = mine_t0.elapsed();
    let pool = miner.candidate_count(&golden);

    println!();
    println!(
        "mining: golden {golden_time:.1?} + fit {fit_time:.1?} + counterfactuals {mine_time:.1?}"
    );
    println!("candidate pool |F| = {pool} (paper: 98 400)");
    println!("critical set |F_crit| = {} (paper: 561)", critical.len());

    // --- Validation phase ---
    let validation = validate_candidates(&sim, &suite, &critical, workers);
    println!();
    println!("| metric                       | ours       | paper      |");
    println!("|------------------------------|------------|------------|");
    println!("| mined critical faults        | {:10} | 561        |", critical.len());
    println!("| manifested as hazards        | {:10} | 460        |", validation.manifested);
    println!("|   of which collisions        | {:10} | n/r        |", validation.collisions);
    println!(
        "| miner precision              | {:9.1}% | 82.0%      |",
        100.0 * validation.precision()
    );
    println!(
        "| safety-critical scenes       | {:10} | 68 of 7200 |",
        validation.critical_scenes.len()
    );

    // Per-signal breakdown of the validated set (E9 feeds on this too).
    let mut by_signal: std::collections::BTreeMap<String, (usize, usize)> =
        std::collections::BTreeMap::new();
    for m in &validation.mined {
        let slot = by_signal.entry(m.candidate.signal.name().to_owned()).or_default();
        slot.0 += 1;
        if m.outcome.is_hazardous() {
            slot.1 += 1;
        }
    }
    println!();
    println!("| signal               | mined | manifested |");
    println!("|----------------------|-------|------------|");
    for (signal, (mined, manifested)) in &by_signal {
        println!("| {signal:20} | {mined:5} | {manifested:10} |");
    }

    // --- Acceleration accounting ---
    let avg_sim = validation.wall_clock.div_f64(validation.mined.len().max(1) as f64);
    let report = AccelerationReport {
        candidate_pool: pool,
        avg_sim_time: avg_sim,
        mining_time: total_mining,
        validation_time: validation.wall_clock,
        mined_faults: critical.len(),
    };
    println!();
    println!("E4 acceleration accounting (paper: 615 days vs < 4 h = 3690x):");
    println!("  avg simulated injection run : {avg_sim:.1?}");
    println!("  exhaustive estimate         : {:.1?}", report.exhaustive_time());
    println!("  Bayesian (mine + validate)  : {:.1?}", report.bayesian_time());
    println!("  acceleration                : {:.0}x", report.acceleration());
    // Our simulator runs a 40 s scenario in milliseconds; the paper's
    // testbed ran DriveSim/LGSVL in real time (~540 s per injection run,
    // 98 400 runs = 615 days). The algorithmic speedup at the paper's
    // per-run cost — mining replaces `pool` runs with |F_crit|
    // validation runs plus the (simulator-independent) BN work:
    let paper_run = std::time::Duration::from_secs(540);
    let exhaustive_paper = paper_run.mul_f64(pool as f64);
    let bayesian_paper = total_mining + paper_run.mul_f64(critical.len() as f64);
    println!(
        "  at the paper's 540 s per run: exhaustive {:.1} days vs Bayesian {:.1} h = {:.0}x",
        exhaustive_paper.as_secs_f64() / 86_400.0,
        bayesian_paper.as_secs_f64() / 3_600.0,
        exhaustive_paper.as_secs_f64() / bayesian_paper.as_secs_f64().max(1e-9)
    );
}
