//! **E13 — BN topology ablation (extension)**: the paper *derives* the
//! 3-TBN topology from the ADS architecture (Fig. 1 → Fig. 6) and never
//! compares it against alternatives. This experiment scores the
//! architecture-derived structure against ablated ones (no temporal
//! edges, fully disconnected, reversed dataflow) by BIC on the golden
//! traces — quantifying how much of the data the architectural prior
//! actually explains.
//!
//! ```text
//! cargo run --release -p drivefi-bench --bin exp_e13 [scenarios] [bins]
//! ```

use drivefi_bayes::{fit_and_score, BayesNet, Discretizer, VarId};
use drivefi_core::collect_golden_traces;
use drivefi_sim::SimConfig;
use drivefi_world::ScenarioSuite;

/// Variables modeled per slice: a compact subset of the TBN's template
/// (speed, lead distance, raw throttle/brake, final throttle/brake).
const VARS: [&str; 6] = ["v", "w_dist", "u_thr", "u_brk", "a_thr", "a_brk"];
const V: usize = 0;
const WD: usize = 1;
const UT: usize = 2;
const UB: usize = 3;
const AT: usize = 4;
const AB: usize = 5;

/// Intra-slice edges per structure, as (parent, child) template pairs.
fn intra(structure: &str) -> Vec<(usize, usize)> {
    match structure {
        // Paper Fig. 6: W → U_A, M → U_A, U_A → A.
        "architecture (Fig. 6)" => vec![(WD, UT), (WD, UB), (V, UT), (V, UB), (UT, AT), (UB, AB)],
        "no temporal edges" => vec![(WD, UT), (WD, UB), (V, UT), (V, UB), (UT, AT), (UB, AB)],
        "fully disconnected" => vec![],
        // Causality reversed: actuation "causes" the world.
        "reversed dataflow" => vec![(AT, UT), (AB, UB), (UT, WD), (UT, V), (UB, WD), (UB, V)],
        other => panic!("unknown structure {other}"),
    }
}

/// Temporal edges per structure.
fn inter(structure: &str) -> Vec<(usize, usize)> {
    match structure {
        "architecture (Fig. 6)" | "reversed dataflow" => {
            vec![(V, V), (AT, V), (AB, V), (WD, WD)]
        }
        "no temporal edges" | "fully disconnected" => vec![],
        other => panic!("unknown structure {other}"),
    }
}

fn main() {
    let scenarios: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let bins: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let workers = drivefi_sim::default_workers();

    let suite = ScenarioSuite::generate(scenarios, 2026);
    let traces = collect_golden_traces(&SimConfig::default(), &suite, workers);

    // Continuous per-scene matrix → discretized two-slice rows.
    let frame_vals = |f: &drivefi_sim::FrameRecord| {
        [
            f.ego.v,
            f.lead_distance.unwrap_or(250.0),
            f.raw_cmd.throttle,
            f.raw_cmd.brake,
            f.final_cmd.throttle,
            f.final_cmd.brake,
        ]
    };
    let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); VARS.len()];
    for t in &traces {
        for f in &t.frames {
            for (i, v) in frame_vals(f).into_iter().enumerate() {
                pooled[i].push(v);
            }
        }
    }
    let discretizers: Vec<Discretizer> = pooled.iter().map(|d| Discretizer::fit(d, bins)).collect();
    let mut rows: Vec<Vec<usize>> = Vec::new();
    for t in &traces {
        for w in t.frames.windows(2) {
            let mut row = Vec::with_capacity(2 * VARS.len());
            for f in w {
                for (i, v) in frame_vals(f).into_iter().enumerate() {
                    row.push(discretizers[i].transform(v));
                }
            }
            rows.push(row);
        }
    }

    println!(
        "E13: BIC of candidate BN structures over {} golden two-slice rows ({bins} bins)",
        rows.len()
    );
    println!();
    println!("| structure               | dim  | log-likelihood | BIC            |");
    println!("|-------------------------|------|----------------|----------------|");

    let mut best: Option<(String, f64)> = None;
    for name in
        ["architecture (Fig. 6)", "no temporal edges", "fully disconnected", "reversed dataflow"]
    {
        // Unrolled 2-slice network: slice-0 vars then slice-1 vars.
        let mut net = BayesNet::new();
        let cards = |d: &Discretizer| d.bins();
        let mut ids = Vec::new();
        for s in 0..2 {
            for (i, v) in VARS.iter().enumerate() {
                ids.push(net.add_variable(&format!("{v}@{s}"), cards(&discretizers[i])));
            }
        }
        let n = VARS.len();
        let mut structure: Vec<(VarId, Vec<VarId>)> = Vec::new();
        for s in 0..2 {
            for i in 0..n {
                let mut parents: Vec<VarId> = intra(name)
                    .iter()
                    .filter(|(_, c)| *c == i)
                    .map(|(p, _)| ids[s * n + p])
                    .collect();
                if s == 1 {
                    parents
                        .extend(inter(name).iter().filter(|(_, c)| *c == i).map(|(p, _)| ids[*p]));
                }
                structure.push((ids[s * n + i], parents));
            }
        }
        let score = fit_and_score(&mut net, &structure, &rows, 1.0).expect("score");
        println!(
            "| {name:23} | {:4} | {:14.0} | {:14.0} |",
            score.dimension, score.log_likelihood, score.bic
        );
        if best.as_ref().is_none_or(|(_, b)| score.bic > *b) {
            best = Some((name.to_owned(), score.bic));
        }
    }
    println!();
    let (best_name, _) = best.unwrap();
    println!(
        "best structure by BIC: {best_name} \
         (shape: the architecture-derived topology should win — the paper's \
         domain-knowledge claim, quantified)"
    );
}
