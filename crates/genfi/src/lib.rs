//! Bayesian fault injection for *arbitrary* safety-critical systems.
//!
//! The paper closes §I with a generality claim: "The Bayesian FI
//! framework can be extended to other safety-critical systems (e.g.,
//! surgical robots). The framework requires specification of the safety
//! constraints and the system software architecture to model causal
//! relationship between the system sub-components." This crate is that
//! extension, factored out of the AV-specific `drivefi-core`:
//!
//! * [`SystemSpec`] — the *architecture* specification: the monitored
//!   variables with their physical ranges, the intra-step causal edges
//!   (module dataflow), and the step-to-step temporal edges (dynamics).
//! * [`SafetyModel`] — the *safety constraint* specification: a margin
//!   function `δ(state)` over the continuous state, positive when safe
//!   (the AV instantiation is `d_safe − d_stop`; a surgical robot uses
//!   distance-to-tissue minus stopping distance).
//! * [`GenericMiner`] — the Bayesian FI engine: fits a 3-slice temporal
//!   Bayesian network from golden traces, treats each candidate fault as
//!   a `do(·)` intervention on the middle slice, MAP-infers the next
//!   slice, reconstructs the continuous state, and keeps faults whose
//!   forecast margin collapses (Eq. 1 of the paper, with the kinematic
//!   reconstruction swapped for the caller's [`SafetyModel`]).
//!
//! The [`surgical`] module instantiates all three for a simulated
//! needle-insertion robot, making the paper's example concrete.
//!
//! # Example
//!
//! ```
//! use drivefi_genfi::surgical::{golden_traces, InsertionSafety, NeedleArm};
//! use drivefi_genfi::{GenericMiner, MinerOptions};
//!
//! let traces = golden_traces(8, 2026);
//! let miner = GenericMiner::fit(&NeedleArm::spec(), &traces, MinerOptions::default()).unwrap();
//! let critical = miner.mine(&traces, &InsertionSafety::default());
//! assert!(!critical.is_empty(), "no critical faults mined");
//! ```

pub mod surgical;

use drivefi_bayes::{fit_cpts, BayesError, BayesNet, DbnTemplate, Discretizer, Evidence, VarId};

/// One monitored variable of the system under test.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSpec {
    /// Human-readable name (also the BN template name).
    pub name: String,
    /// Physical minimum — the `StuckMin` injection value.
    pub min: f64,
    /// Physical maximum — the `StuckMax` injection value.
    pub max: f64,
    /// Whether the injector can land faults on this variable. Sensor and
    /// command variables usually are; plant-internal ground truth is not.
    pub injectable: bool,
}

/// The system-architecture specification the paper requires: variables,
/// intra-step dataflow edges, and step-to-step dynamics edges.
#[derive(Debug, Clone, Default)]
pub struct SystemSpec {
    vars: Vec<VarSpec>,
    intra: Vec<(usize, usize)>,
    inter: Vec<(usize, usize)>,
}

impl SystemSpec {
    /// An empty specification.
    pub fn new() -> Self {
        SystemSpec::default()
    }

    /// Adds a variable with physical range `[min, max]`; returns its
    /// index.
    ///
    /// # Panics
    ///
    /// Panics when `min >= max`.
    pub fn add_var(&mut self, name: &str, min: f64, max: f64, injectable: bool) -> usize {
        assert!(min < max, "degenerate range for {name}");
        self.vars.push(VarSpec { name: name.to_owned(), min, max, injectable });
        self.vars.len() - 1
    }

    /// Declares an intra-step causal edge `parent → child` (module
    /// dataflow within one control period).
    ///
    /// # Panics
    ///
    /// Panics on unknown indices or self-loops.
    pub fn add_dataflow(&mut self, parent: usize, child: usize) {
        assert!(parent < self.vars.len() && child < self.vars.len(), "unknown variable");
        assert_ne!(parent, child, "self-loop");
        self.intra.push((parent, child));
    }

    /// Declares a temporal edge `parent@{t-1} → child@{t}` (dynamics;
    /// self-edges model persistence).
    ///
    /// # Panics
    ///
    /// Panics on unknown indices.
    pub fn add_dynamics(&mut self, parent: usize, child: usize) {
        assert!(parent < self.vars.len() && child < self.vars.len(), "unknown variable");
        self.inter.push((parent, child));
    }

    /// The variables.
    pub fn vars(&self) -> &[VarSpec] {
        &self.vars
    }

    /// Intra-step descendants of `var` (transitive, excluding `var`):
    /// when `var` is intervened in a slice, these must not be clamped to
    /// golden evidence in that slice.
    pub fn descendants(&self, var: usize) -> Vec<usize> {
        let mut seen = vec![false; self.vars.len()];
        let mut stack = vec![var];
        while let Some(v) = stack.pop() {
            for &(p, c) in &self.intra {
                if p == v && !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        (0..self.vars.len()).filter(|&i| seen[i]).collect()
    }

    fn template(&self, bins: usize) -> DbnTemplate {
        let mut t = DbnTemplate::new();
        for v in &self.vars {
            t.add_variable(&v.name, bins);
        }
        for &(p, c) in &self.intra {
            t.add_intra_edge(p, c);
        }
        for &(p, c) in &self.inter {
            t.add_inter_edge(p, c);
        }
        t
    }
}

/// The safety-constraint specification: a margin function over the full
/// continuous state (indexed like [`SystemSpec::vars`]); positive means
/// safe. The paper's AV instantiation is `δ = d_safe − d_stop`.
///
/// [`SafetyModel::forecast_margin`] is the domain-knowledge
/// reconstruction step of the paper's pipeline (procedure `P` in §III-A):
/// the BN forecasts only the system's *response* to a fault (Eq. 2);
/// converting that response into a margin against the *observed* scene —
/// stopping distances, reaction windows, worst-case envelopes — is
/// domain kinematics the network does not (and cannot) learn, because
/// golden traces never leave the safe region.
pub trait SafetyModel {
    /// The ground-truth safety margin of an observed state.
    fn margin(&self, state: &[f64]) -> f64;

    /// The counterfactual margin `δ̂_do(f)`: the margin implied by the
    /// system's forecast response, evaluated against the `observed`
    /// scene. `faulted` is the within-period response — the injected
    /// value plus the MAP reaction of its downstream modules in the same
    /// step; `next` is the MAP state one period later. Defaults to the
    /// plain margin of `next`, which suffices only when hazards develop
    /// within one control period.
    fn forecast_margin(&self, observed: &[f64], faulted: &[f64], next: &[f64]) -> f64 {
        let _ = (observed, faulted);
        self.margin(next)
    }
}

impl<F: Fn(&[f64]) -> f64> SafetyModel for F {
    fn margin(&self, state: &[f64]) -> f64 {
        self(state)
    }
}

/// How a mined fault corrupts its variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Stuck at the variable's physical minimum.
    Min,
    /// Stuck at the variable's physical maximum.
    Max,
}

impl Corruption {
    /// The workspace-wide fault-model equivalent (the generic miner's
    /// fault axis is the `{min, max}` slice of
    /// [`drivefi_fault::ScalarFaultModel`]).
    pub fn model(self) -> drivefi_fault::ScalarFaultModel {
        match self {
            Corruption::Min => drivefi_fault::ScalarFaultModel::StuckMin,
            Corruption::Max => drivefi_fault::ScalarFaultModel::StuckMax,
        }
    }

    /// The inverse of [`Corruption::model`] for the mined slice of the
    /// model space.
    fn from_model(model: drivefi_fault::ScalarFaultModel) -> Corruption {
        match model {
            drivefi_fault::ScalarFaultModel::StuckMin => Corruption::Min,
            drivefi_fault::ScalarFaultModel::StuckMax => Corruption::Max,
            other => panic!("generic miner only mines min/max, got {other:?}"),
        }
    }
}

/// A `(step, variable, corruption)` candidate whose forecast margin
/// collapses — a member of the generic `F_crit`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalFault {
    /// Trace index the step belongs to.
    pub trace: usize,
    /// Step (slice-1 position) at which the fault is injected.
    pub step: usize,
    /// Corrupted variable index.
    pub var: usize,
    /// The corruption.
    pub corruption: Corruption,
    /// The injected continuous value.
    pub value: f64,
    /// Golden margin at the step (positive by Eq. 1's pre-condition).
    pub golden_margin: f64,
    /// Forecast margin under `do(f)`.
    pub predicted_margin: f64,
}

/// Miner options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerOptions {
    /// Quantile bins per variable.
    pub bins: usize,
    /// Laplace smoothing pseudo-count for CPD fitting.
    pub alpha: f64,
    /// A fault is critical when its forecast margin is ≤ this threshold.
    pub threshold: f64,
}

impl Default for MinerOptions {
    fn default() -> Self {
        MinerOptions { bins: 6, alpha: 1.0, threshold: 0.0 }
    }
}

/// The generic Bayesian fault miner: a 3-slice temporal BN fitted from
/// golden traces of any [`SystemSpec`]-described system.
#[derive(Debug, Clone)]
pub struct GenericMiner {
    spec: SystemSpec,
    net: BayesNet,
    ids: Vec<Vec<VarId>>,
    discretizers: Vec<Discretizer>,
    options: MinerOptions,
}

impl GenericMiner {
    /// Fits the 3-TBN from golden traces. Each trace is a sequence of
    /// complete continuous state vectors (indexed like
    /// [`SystemSpec::vars`]); consecutive triples become training rows.
    ///
    /// # Errors
    ///
    /// Propagates CPD-fitting failures.
    ///
    /// # Panics
    ///
    /// Panics when a trace row's length differs from the variable count,
    /// or when no trace has at least three steps.
    pub fn fit(
        spec: &SystemSpec,
        traces: &[Vec<Vec<f64>>],
        options: MinerOptions,
    ) -> Result<Self, BayesError> {
        let n = spec.vars.len();
        // Per-variable discretizers over the pooled data.
        let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); n];
        for trace in traces {
            for row in trace {
                assert_eq!(row.len(), n, "trace row length != variable count");
                for (i, &x) in row.iter().enumerate() {
                    pooled[i].push(x);
                }
            }
        }
        let discretizers: Vec<Discretizer> =
            pooled.iter().map(|d| Discretizer::fit(d, options.bins)).collect();

        let (mut net, ids, structure) = spec.template(options.bins).unroll(3);
        let mut rows = Vec::new();
        for trace in traces {
            for w in trace.windows(3) {
                let mut row = vec![0usize; 3 * n];
                for (s, step) in w.iter().enumerate() {
                    for (i, &x) in step.iter().enumerate() {
                        row[ids[s][i].0] = discretizers[i].transform(x);
                    }
                }
                rows.push(row);
            }
        }
        assert!(!rows.is_empty(), "need at least one trace with three steps");
        fit_cpts(&mut net, &structure, &rows, options.alpha)?;
        Ok(GenericMiner { spec: spec.clone(), net, ids, discretizers, options })
    }

    /// The fitted network (for inspection and structure scoring).
    pub fn net(&self) -> &BayesNet {
        &self.net
    }

    /// The fitted discretizer of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn discretizer(&self, var: usize) -> &Discretizer {
        &self.discretizers[var]
    }

    /// The options.
    pub fn options(&self) -> &MinerOptions {
        &self.options
    }

    /// The candidate fault axis: every injectable variable × {min, max},
    /// as a [`drivefi_fault::CorruptionGrid`] — the same enumeration
    /// core the AV drivers' [`drivefi_fault::FaultSpace`] is built on,
    /// instead of a re-invented inline double loop.
    pub fn injectable_grid(&self) -> drivefi_fault::CorruptionGrid<usize> {
        drivefi_fault::CorruptionGrid::new(
            (0..self.spec.vars.len()).filter(|&i| self.spec.vars[i].injectable).collect(),
            vec![
                drivefi_fault::ScalarFaultModel::StuckMin,
                drivefi_fault::ScalarFaultModel::StuckMax,
            ],
        )
    }

    /// Forecasts the system's response to `do(var@1 = category)`, with
    /// slices 0 and 1 clamped to the observed steps (except the
    /// intervened variable and its intra-step descendants, which the
    /// fault changes).
    ///
    /// Returns `(faulted, next)`: the within-period response — the
    /// intervened category plus the MAP reaction of its downstream
    /// modules in slice 1 — and the MAP state one period later
    /// (slice 2). Together they are the generic analog of the paper's
    /// `M̂_{t+1}` (Eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates inference failures.
    ///
    /// # Panics
    ///
    /// Panics when a step's length differs from the variable count —
    /// inference on partial evidence would return plausible-but-wrong
    /// forecasts.
    pub fn forecast(
        &self,
        step0: &[f64],
        step1: &[f64],
        var: usize,
        category: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), BayesError> {
        let n = self.spec.vars.len();
        assert_eq!(step0.len(), n, "step row length != variable count");
        assert_eq!(step1.len(), n, "step row length != variable count");
        let mut ev = Evidence::new();
        for (i, &x) in step0.iter().enumerate().take(n) {
            ev.insert(self.ids[0][i], self.discretizers[i].transform(x));
        }
        let blocked = self.spec.descendants(var);
        for (i, &x) in step1.iter().enumerate().take(n) {
            if i == var || blocked.contains(&i) {
                continue;
            }
            ev.insert(self.ids[1][i], self.discretizers[i].transform(x));
        }
        let interventions = Evidence::from([(self.ids[1][var], category)]);
        let map = self.net.map_assignment(&ev, &interventions)?;
        let faulted =
            (0..n).map(|i| self.discretizers[i].representative(map[&self.ids[1][i]])).collect();
        let next =
            (0..n).map(|i| self.discretizers[i].representative(map[&self.ids[2][i]])).collect();
        Ok((faulted, next))
    }

    /// Enumerates and evaluates every candidate fault over the traces,
    /// returning the critical set sorted by ascending forecast margin.
    /// Candidates are `(step, injectable var, {min,max})` at steps whose
    /// golden margin is positive (Eq. 1's pre-condition) with a
    /// successor step. Counterfactual queries are memoized on the
    /// discretized evidence.
    pub fn mine<S: SafetyModel>(&self, traces: &[Vec<Vec<f64>>], safety: &S) -> Vec<CriticalFault> {
        use std::collections::HashMap;
        type Forecast = (Vec<f64>, Vec<f64>);
        let mut cache: HashMap<(Vec<usize>, Vec<usize>, usize, usize), Forecast> = HashMap::new();
        let grid = self.injectable_grid();
        let mut out = Vec::new();
        for (trace_idx, trace) in traces.iter().enumerate() {
            for k in 1..trace.len().saturating_sub(1) {
                let golden_margin = safety.margin(&trace[k]);
                if golden_margin <= 0.0 {
                    continue;
                }
                for (var, model) in grid.iter() {
                    let corruption = Corruption::from_model(model);
                    let vs = &self.spec.vars[var];
                    let value = match corruption {
                        Corruption::Min => vs.min,
                        Corruption::Max => vs.max,
                    };
                    let category = self.discretizers[var].transform(value);
                    if self.discretizers[var].transform(trace[k][var]) == category {
                        continue; // no-op fault
                    }
                    let key0: Vec<usize> = trace[k - 1]
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| self.discretizers[i].transform(x))
                        .collect();
                    let key1: Vec<usize> = trace[k]
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| self.discretizers[i].transform(x))
                        .collect();
                    let (mut faulted, next) = cache
                        .entry((key0, key1, var, category))
                        .or_insert_with(|| {
                            self.forecast(&trace[k - 1], &trace[k], var, category)
                                .expect("inference on fitted model")
                        })
                        .clone();
                    // The intervened variable's continuous value is
                    // known exactly — it is the injection. The bin
                    // representative (a median of *golden* values)
                    // can sit far from the injected extreme.
                    faulted[var] = value;
                    let predicted = safety.forecast_margin(&trace[k], &faulted, &next);
                    if predicted <= self.options.threshold {
                        out.push(CriticalFault {
                            trace: trace_idx,
                            step: k,
                            var,
                            corruption,
                            value,
                            golden_margin,
                            predicted_margin: predicted,
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.predicted_margin.partial_cmp(&b.predicted_margin).expect("finite margins")
        });
        out
    }

    /// [`GenericMiner::mine`] fanned out over `workers` threads (one
    /// trace per worker task, each with its own memo cache) via the
    /// workspace's central fan-out primitive
    /// ([`drivefi_sim::parallel_map`]). Identical to the serial version
    /// up to ordering, and returned sorted the same way.
    pub fn mine_parallel<S: SafetyModel + Sync>(
        &self,
        traces: &[Vec<Vec<f64>>],
        safety: &S,
        workers: usize,
    ) -> Vec<CriticalFault> {
        let shards =
            drivefi_sim::parallel_map(traces.iter().enumerate(), workers, |(trace_idx, trace)| {
                let mut found = self.mine(std::slice::from_ref(trace), safety);
                for fault in &mut found {
                    fault.trace = trace_idx;
                }
                found
            });
        let mut out: Vec<CriticalFault> = shards.into_iter().flatten().collect();
        out.sort_by(|a, b| {
            a.predicted_margin.partial_cmp(&b.predicted_margin).expect("finite margins")
        });
        out
    }

    /// Number of candidate faults over the traces — the exhaustive
    /// campaign size the miner replaces.
    pub fn candidate_count(&self, traces: &[Vec<Vec<f64>>], safety: &impl SafetyModel) -> usize {
        let grid = self.injectable_grid();
        traces
            .iter()
            .map(|t| {
                (1..t.len().saturating_sub(1)).filter(|&k| safety.margin(&t[k]) > 0.0).count()
                    * grid.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy system: x follows u; u is a bang-bang
    /// controller keeping x in [2, 8]; margin = distance of x from the
    /// [0, 10] failure boundaries.
    fn toy_spec() -> SystemSpec {
        let mut spec = SystemSpec::new();
        let u = spec.add_var("u", -1.0, 1.0, true);
        let x = spec.add_var("x", 0.0, 10.0, false);
        spec.add_dynamics(x, x);
        spec.add_dynamics(u, x);
        spec.add_dataflow(x, u);
        assert_eq!((u, x), (0, 1));
        spec
    }

    fn toy_traces() -> Vec<Vec<Vec<f64>>> {
        // x' = x + u; bang-bang with hysteresis: climb to 8, descend to
        // 2, repeat — the golden sweep covers the whole safe band.
        let mut traces = Vec::new();
        for start in [3.0f64, 5.0, 7.0] {
            let mut x = start;
            let mut dir = 1.0;
            let mut rows = Vec::new();
            for _ in 0..60 {
                if x >= 8.0 {
                    dir = -1.0;
                } else if x <= 2.0 {
                    dir = 1.0;
                }
                rows.push(vec![dir, x]);
                x = (x + dir).clamp(0.0, 10.0);
            }
            traces.push(rows);
        }
        traces
    }

    /// Toy safety: x must stay 0.5 away from the [0, 10] boundaries; the
    /// counterfactual holds the forecast command for three periods (the
    /// toy's "reaction window") before recovery.
    struct ToySafety;

    impl SafetyModel for ToySafety {
        fn margin(&self, state: &[f64]) -> f64 {
            state[1].min(10.0 - state[1]) - 0.5
        }

        fn forecast_margin(&self, observed: &[f64], faulted: &[f64], _next: &[f64]) -> f64 {
            let x_hat = observed[1] + faulted[0] * 3.0;
            self.margin(&[faulted[0], x_hat])
        }
    }

    #[test]
    fn spec_descendants_are_transitive() {
        let mut spec = SystemSpec::new();
        let a = spec.add_var("a", 0.0, 1.0, true);
        let b = spec.add_var("b", 0.0, 1.0, true);
        let c = spec.add_var("c", 0.0, 1.0, true);
        spec.add_dataflow(a, b);
        spec.add_dataflow(b, c);
        assert_eq!(spec.descendants(a), vec![b, c]);
        assert_eq!(spec.descendants(c), Vec::<usize>::new());
    }

    #[test]
    fn miner_fits_and_mines_toy_system() {
        let spec = toy_spec();
        let traces = toy_traces();
        let miner = GenericMiner::fit(&spec, &traces, MinerOptions::default()).unwrap();
        let crit = miner.mine(&traces, &ToySafety);
        // A stuck command held while x is near a boundary forecasts x
        // drifting past it — the miner must find some.
        assert!(!crit.is_empty(), "no critical faults in the toy system");
        for c in &crit {
            assert!(c.golden_margin > 0.0);
            assert!(c.predicted_margin <= 0.0);
        }
        // Sorted ascending by forecast margin.
        for w in crit.windows(2) {
            assert!(w[0].predicted_margin <= w[1].predicted_margin);
        }
    }

    #[test]
    fn parallel_mining_matches_serial() {
        let spec = toy_spec();
        let traces = toy_traces();
        let miner = GenericMiner::fit(&spec, &traces, MinerOptions::default()).unwrap();
        let serial = miner.mine(&traces, &ToySafety);
        for workers in [1, 2, 8] {
            let parallel = miner.mine_parallel(&traces, &ToySafety, workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn only_injectable_vars_are_mined() {
        let spec = toy_spec();
        let traces = toy_traces();
        let miner = GenericMiner::fit(&spec, &traces, MinerOptions::default()).unwrap();
        let crit = miner.mine(&traces, &ToySafety);
        assert!(crit.iter().all(|c| c.var == 0), "plant-internal x was mined");
    }

    #[test]
    fn candidate_count_matches_enumeration() {
        let spec = toy_spec();
        let traces = toy_traces();
        let miner = GenericMiner::fit(&spec, &traces, MinerOptions::default()).unwrap();
        let n = miner.candidate_count(&traces, &ToySafety);
        // 3 traces × 58 eligible interior steps (margin always > 0 in
        // golden runs) × 1 injectable var × 2 corruption values.
        assert_eq!(n, 3 * 58 * 2);
    }

    #[test]
    fn closure_safety_model_works() {
        let threshold = 1.0;
        let f = move |s: &[f64]| s[0] - threshold;
        assert!(f.margin(&[2.0]) > 0.0);
        assert!(f.margin(&[0.5]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_rows_panic() {
        let spec = toy_spec();
        let traces = vec![vec![vec![0.0; 3]; 5]];
        let _ = GenericMiner::fit(&spec, &traces, MinerOptions::default());
    }
}
