//! The paper's generality example made concrete: Bayesian FI on a
//! simulated surgical needle-insertion robot.
//!
//! §I of the paper names surgical robots as the natural second domain
//! for Bayesian FI. This module builds the smallest faithful instance:
//! a velocity-controlled needle-insertion axis (the insertion joint of a
//! RAVEN-style arm) advancing toward — but never past — a tissue
//! boundary. The *safety constraint* is the direct analog of the AV's
//! `δ = d_safe − d_stop`: remaining distance to the boundary minus the
//! worst-case stopping travel at the current speed.
//!
//! The architecture (and hence the BN topology) is the classic
//! sense→plan→act chain:
//!
//! ```text
//! depth d ──(encoder)──▶ measured m ──(controller)──▶ command u
//!    ▲                                                   │
//!    └────────────── velocity v ◀──(servo lag)───────────┘
//! ```
//!
//! Faults land on the *measured depth* (a corrupted encoder reading) and
//! the *commanded speed* (a corrupted planner output) — the same
//! module-output fault model (b) the paper uses for the ADS.

use crate::{CriticalFault, SystemSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the measured-depth variable in [`NeedleArm::spec`].
pub const VAR_MEASURED: usize = 0;
/// Index of the commanded-speed variable.
pub const VAR_COMMAND: usize = 1;
/// Index of the actual-velocity variable.
pub const VAR_VELOCITY: usize = 2;
/// Index of the true-depth variable.
pub const VAR_DEPTH: usize = 3;

/// Control period \[s\].
pub const DT: f64 = 0.01;

/// A velocity-controlled needle-insertion axis.
///
/// State: true depth `d` \[mm\], actual insertion speed `v` \[mm/s\].
/// The encoder reports `m = d + noise`; the controller commands
/// `u = k_p · (target − m)` clamped to the servo envelope; the servo
/// tracks `u` with a first-order lag.
#[derive(Debug, Clone)]
pub struct NeedleArm {
    /// True depth \[mm\].
    pub depth: f64,
    /// Actual speed \[mm/s\].
    pub velocity: f64,
    /// Insertion target depth \[mm\].
    pub target: f64,
    rng: StdRng,
}

/// The tissue boundary the needle must never cross \[mm\].
pub const BOUNDARY: f64 = 40.0;
/// Maximum commanded/achievable speed \[mm/s\].
pub const MAX_SPEED: f64 = 10.0;
/// Emergency-stop deceleration \[mm/s²\].
pub const STOP_DECEL: f64 = 200.0;
/// Proportional gain of the insertion controller \[1/s\].
const KP: f64 = 2.0;
/// Servo first-order tracking constant per step.
const SERVO_ALPHA: f64 = 0.2;
/// Encoder noise amplitude \[mm\].
const NOISE: f64 = 0.05;

impl NeedleArm {
    /// A retracted arm targeting `target` mm of insertion.
    ///
    /// # Panics
    ///
    /// Panics when the target is at or past the tissue boundary.
    pub fn new(target: f64, seed: u64) -> Self {
        assert!(target < BOUNDARY, "target beyond the tissue boundary");
        NeedleArm { depth: 0.0, velocity: 0.0, target, rng: StdRng::seed_from_u64(seed) }
    }

    /// The architecture specification (variables + causal edges) handed
    /// to the generic miner.
    pub fn spec() -> SystemSpec {
        let mut spec = SystemSpec::new();
        let m = spec.add_var("measured", 0.0, BOUNDARY + 5.0, true);
        let u = spec.add_var("command", 0.0, MAX_SPEED, true);
        let v = spec.add_var("velocity", 0.0, MAX_SPEED, false);
        let d = spec.add_var("depth", 0.0, BOUNDARY + 5.0, false);
        assert_eq!((m, u, v, d), (VAR_MEASURED, VAR_COMMAND, VAR_VELOCITY, VAR_DEPTH));
        // Intra-step dataflow: encoder → controller → servo.
        spec.add_dataflow(m, u);
        spec.add_dataflow(u, v);
        // Dynamics: depth integrates velocity; velocity persists (servo
        // lag); the encoder tracks depth.
        spec.add_dynamics(d, d);
        spec.add_dynamics(v, d);
        spec.add_dynamics(v, v);
        spec.add_dynamics(d, m);
        spec
    }

    /// Advances one control period. `fault` optionally overrides one
    /// variable ([`VAR_MEASURED`] or [`VAR_COMMAND`]) with a stuck value
    /// — the injection point. Returns the state row
    /// `[measured, command, velocity, depth]`.
    pub fn step(&mut self, fault: Option<(usize, f64)>) -> Vec<f64> {
        let mut measured = self.depth + self.rng.random_range(-NOISE..NOISE);
        if let Some((VAR_MEASURED, v)) = fault {
            measured = v;
        }
        let mut command = (KP * (self.target - measured)).clamp(0.0, MAX_SPEED);
        if let Some((VAR_COMMAND, v)) = fault {
            command = v;
        }
        self.velocity += SERVO_ALPHA * (command - self.velocity);
        self.velocity = self.velocity.clamp(0.0, MAX_SPEED);
        self.depth += self.velocity * DT;
        vec![measured, command, self.velocity, self.depth]
    }

    /// Runs `steps` fault-free periods, returning the trace.
    pub fn run_golden(&mut self, steps: usize) -> Vec<Vec<f64>> {
        (0..steps).map(|_| self.step(None)).collect()
    }
}

/// The safety constraint: remaining distance to the tissue boundary
/// minus the worst-case stopping travel and a standoff margin — exactly
/// the shape of the paper's `δ = d_safe − d_stop`.
///
/// The counterfactual reconstruction
/// ([`crate::SafetyModel::forecast_margin`]) is the arm's procedure `P`:
/// the forecast post-fault *command* is assumed to drive the servo for a
/// supervision window `t_react` (the time until the control supervisor
/// can detect the fault and engage the e-stop) before braking at
/// [`STOP_DECEL`]. A stuck-max command near the boundary therefore
/// forecasts an overshoot even though the network only predicted the
/// one-period response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionSafety {
    /// Required standoff from the boundary \[mm\].
    pub margin: f64,
    /// Supervision window before a faulty command is cut \[s\].
    pub t_react: f64,
}

impl Default for InsertionSafety {
    fn default() -> Self {
        InsertionSafety { margin: 0.5, t_react: 0.3 }
    }
}

impl crate::SafetyModel for InsertionSafety {
    fn margin(&self, state: &[f64]) -> f64 {
        let v = state[VAR_VELOCITY];
        let stop = v * v / (2.0 * STOP_DECEL);
        (BOUNDARY - state[VAR_DEPTH]) - stop - self.margin
    }

    fn forecast_margin(&self, observed: &[f64], faulted: &[f64], next: &[f64]) -> f64 {
        // The corrupted command persists for the supervision window; the
        // servo speed heads toward it, so the worst-case travel uses the
        // larger of the within-period faulted command and the forecast
        // speed one period later.
        let v_worst = faulted[VAR_COMMAND].max(next[VAR_VELOCITY]).clamp(0.0, MAX_SPEED);
        let travel = v_worst * self.t_react + v_worst * v_worst / (2.0 * STOP_DECEL);
        (BOUNDARY - observed[VAR_DEPTH]) - travel - self.margin
    }
}

/// Insertion-target jitter range \[mm\]: procedures vary from shallow
/// biopsies to targets close to the boundary (the standoff at 39 mm is
/// the minimum lawful plan, still safe in golden runs).
pub const TARGET_MIN: f64 = 31.0;
/// Upper end of the insertion-target jitter \[mm\].
pub const TARGET_MAX: f64 = 39.0;

/// Collects golden traces from `count` runs with jittered insertion
/// targets — the training corpus for the generic miner.
pub fn golden_traces(count: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let target = rng.random_range(TARGET_MIN..TARGET_MAX);
            let mut arm = NeedleArm::new(target, seed.wrapping_add(i as u64 * 131));
            arm.run_golden(GOLDEN_STEPS)
        })
        .collect()
}

/// Steps per golden run (12 s — long enough for the asymptotic approach
/// to settle within ~0.1 mm of the insertion target).
pub const GOLDEN_STEPS: usize = 1200;

/// Re-runs a mined fault on the real arm: re-simulates the golden run up
/// to the fault step, injects the stuck value for `hold_steps` periods,
/// and returns the minimum true margin over the remainder — the
/// validation step of the paper's pipeline. Negative means the forecast
/// hazard is real.
pub fn validate(
    fault: &CriticalFault,
    traces_seed: u64,
    safety: &InsertionSafety,
    hold_steps: usize,
) -> f64 {
    use crate::SafetyModel;
    let mut rng = StdRng::seed_from_u64(traces_seed);
    // Reconstruct the same per-trace target/seed stream as golden_traces.
    let mut target = 0.0;
    for _ in 0..=fault.trace {
        target = rng.random_range(TARGET_MIN..TARGET_MAX);
    }
    let mut arm = NeedleArm::new(target, traces_seed.wrapping_add(fault.trace as u64 * 131));
    let mut min_margin = f64::INFINITY;
    let steps = GOLDEN_STEPS.max(fault.step + hold_steps + 200);
    for step in 0..steps {
        let inject = (step >= fault.step && step < fault.step + hold_steps)
            .then_some((fault.var, fault.value));
        let row = arm.step(inject);
        if step >= fault.step {
            min_margin = min_margin.min(safety.margin(&row));
        }
    }
    min_margin
}

/// [`validate`] fanned out over the workspace's central worker pool
/// ([`drivefi_sim::parallel_map`]): re-simulates every mined fault and
/// returns the minimum true margins, in `faults` order. This is the
/// surgical analog of the AV validation campaign, and — like every other
/// campaign in the workspace — it spawns no threads of its own.
pub fn validate_all(
    faults: &[CriticalFault],
    traces_seed: u64,
    safety: &InsertionSafety,
    hold_steps: usize,
    workers: usize,
) -> Vec<f64> {
    drivefi_sim::parallel_map(faults.iter(), workers, |fault| {
        validate(fault, traces_seed, safety, hold_steps)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corruption, GenericMiner, MinerOptions, SafetyModel};

    #[test]
    fn golden_insertion_is_safe_and_converges() {
        let safety = InsertionSafety::default();
        let mut arm = NeedleArm::new(35.0, 7);
        let trace = arm.run_golden(600);
        for row in &trace {
            assert!(safety.margin(row) > 0.0, "golden run unsafe at {row:?}");
        }
        let last = trace.last().unwrap();
        assert!((last[VAR_DEPTH] - 35.0).abs() < 0.5, "did not reach target: {last:?}");
    }

    #[test]
    fn shallow_encoder_fault_overshoots_boundary() {
        // The canonical hazard: the encoder reads shallow (stuck at 0),
        // so the controller keeps commanding insertion at full gain.
        let safety = InsertionSafety::default();
        let mut arm = NeedleArm::new(35.0, 7);
        let mut min_margin = f64::INFINITY;
        for step in 0..1600 {
            let fault = (step >= 300).then_some((VAR_MEASURED, 0.0));
            let row = arm.step(fault);
            min_margin = min_margin.min(safety.margin(&row));
        }
        assert!(min_margin < 0.0, "stuck-shallow encoder stayed safe: {min_margin}");
    }

    #[test]
    fn deep_insertions_enter_the_critical_band() {
        // The mined hazards all live where the needle is close to the
        // boundary; the golden corpus must actually visit that band.
        let traces = golden_traces(8, 2026);
        let deepest = traces.iter().map(|t| t.last().unwrap()[VAR_DEPTH]).fold(0.0f64, f64::max);
        assert!(deepest > 36.5, "corpus never approaches the boundary: {deepest:.2}");
    }

    #[test]
    fn miner_finds_critical_faults_in_the_arm() {
        let traces = golden_traces(8, 2026);
        let miner =
            GenericMiner::fit(&NeedleArm::spec(), &traces, MinerOptions::default()).unwrap();
        let crit = miner.mine(&traces, &InsertionSafety::default());
        assert!(!crit.is_empty(), "no critical faults mined for the arm");
        // The mined set must include encoder-shallow or command-max
        // faults (the two real hazard mechanisms).
        assert!(
            crit.iter().any(|c| (c.var == VAR_MEASURED && c.corruption == Corruption::Min)
                || (c.var == VAR_COMMAND && c.corruption == Corruption::Max)),
            "mined set misses the known hazard mechanisms"
        );
    }

    #[test]
    fn mined_faults_validate_on_the_real_arm() {
        let traces = golden_traces(8, 2026);
        let safety = InsertionSafety::default();
        let miner =
            GenericMiner::fit(&NeedleArm::spec(), &traces, MinerOptions::default()).unwrap();
        let crit = miner.mine(&traces, &safety);
        assert!(!crit.is_empty());
        // Validate the most critical few as sustained faults; a clear
        // majority must manifest (paper: 460/561 ≈ 82%).
        let n = crit.len().min(20);
        let margins = validate_all(&crit[..n], 2026, &safety, 1200, 4);
        let manifested = margins.iter().filter(|&&m| m < 0.0).count();
        assert!(
            manifested * 2 > n,
            "only {manifested}/{n} mined faults manifested on the real arm"
        );
        // The parallel sweep is the serial validator, fanned out.
        for (c, &m) in crit[..n].iter().zip(&margins) {
            assert_eq!(m, validate(c, 2026, &safety, 1200));
        }
    }

    #[test]
    fn retracting_faults_are_not_mined() {
        // Stuck-max encoder (reads too deep) makes the controller *stop*
        // — safe. The miner must not flag it.
        let traces = golden_traces(8, 2026);
        let miner =
            GenericMiner::fit(&NeedleArm::spec(), &traces, MinerOptions::default()).unwrap();
        let crit = miner.mine(&traces, &InsertionSafety::default());
        assert!(
            !crit.iter().any(|c| c.var == VAR_MEASURED && c.corruption == Corruption::Max),
            "stuck-deep encoder (which halts the arm) was called critical"
        );
    }

    #[test]
    fn safety_margin_shape() {
        let s = InsertionSafety::default();
        // Deep and fast is worse than shallow and slow.
        let shallow = s.margin(&[0.0, 0.0, 0.0, 5.0]);
        let deep = s.margin(&[0.0, 0.0, 8.0, 38.0]);
        assert!(shallow > 0.0);
        assert!(deep < shallow);
    }

    #[test]
    fn validation_reproduces_golden_when_fault_is_harmless() {
        // A zero-speed command fault only ever *stops* the arm.
        let traces = golden_traces(4, 9);
        let safety = InsertionSafety::default();
        let fake = CriticalFault {
            trace: 1,
            step: 50,
            var: VAR_COMMAND,
            corruption: Corruption::Min,
            value: 0.0,
            golden_margin: 1.0,
            predicted_margin: -1.0,
        };
        assert!(validate(&fake, 9, &safety, 1200) > 0.0);
        drop(traces);
    }
}
