//! # DriveFI-rs
//!
//! A Rust reproduction of **DriveFI** — *"ML-based Fault Injection for
//! Autonomous Vehicles: A Case for Bayesian Fault Injection"* (Jha et al.,
//! DSN 2019). This facade crate re-exports every workspace crate so
//! examples and downstream users can depend on a single package.
//!
//! ## Architecture
//!
//! * [`kinematics`] — bicycle model, emergency stop, safety potential δ.
//! * [`world`] — 2-D highway world, target-vehicle behaviors, scenarios.
//! * [`sensors`] — camera/LiDAR/RADAR/GPS/IMU models with noise and rates.
//! * [`perception`] — EKF multi-object tracking and sensor fusion.
//! * [`planner`] — safety envelope + ACC / lane-keeping planner.
//! * [`control`] — PID smoothing of raw actuation commands.
//! * [`ads`] — message bus, module scheduler, fault-injectable variables.
//! * [`bayes`] — discrete Bayesian networks, inference, do-calculus.
//! * [`fault`] — fault models, injector, architectural soft-error VM,
//!   SECDED memory.
//! * [`sim`] — closed-loop simulator, hazard monitor, traffic-rule
//!   monitor, parallel campaigns.
//! * [`core`] — the Bayesian fault-injection engine itself.
//! * [`plan`] — TOML campaign plans + scenario-spec files: run any
//!   campaign from a `.toml` file without recompiling.
//! * [`store`] — persistent campaign store: sharded CRC-framed result
//!   logs, checkpoint manifests, crash-tolerant resume, and the
//!   round-trip report artifacts behind the `drivefi` CLI.
//! * [`serve`] — the campaign daemon: a spool of submitted plans
//!   scheduled fair-share across a shared worker pool, with live
//!   `status.toml` progress and crash-equivalent restart.
//! * [`obs`] — campaign observability: the metrics registry and the
//!   append-only `events.jsonl` lifecycle log, fingerprint-neutral by
//!   construction.
//! * [`genfi`] — the engine generalized to arbitrary safety-critical
//!   systems (with a surgical-robot instantiation).
//!
//! ## Quickstart
//!
//! ```
//! use drivefi::sim::{Simulation, SimConfig};
//! use drivefi::world::scenario::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::lead_vehicle_cruise(7);
//! let mut sim = Simulation::new(SimConfig::default(), &scenario);
//! let report = sim.run();
//! assert!(report.outcome.is_safe());
//! ```

pub use drivefi_ads as ads;
pub use drivefi_bayes as bayes;
pub use drivefi_control as control;
pub use drivefi_core as core;
pub use drivefi_fault as fault;
pub use drivefi_genfi as genfi;
pub use drivefi_kinematics as kinematics;
pub use drivefi_obs as obs;
pub use drivefi_perception as perception;
pub use drivefi_plan as plan;
pub use drivefi_planner as planner;
pub use drivefi_sensors as sensors;
pub use drivefi_serve as serve;
pub use drivefi_sim as sim;
pub use drivefi_store as store;
pub use drivefi_world as world;
