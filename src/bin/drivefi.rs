//! The `drivefi` campaign CLI: run, resume, report on, and query
//! plan-file campaigns with a persistent store.
//!
//! ```text
//! drivefi run     <plan.toml> [--max-jobs N] [--output-dir DIR]
//! drivefi resume  <plan.toml> [--output-dir DIR]
//! drivefi report  <plan.toml> [--output-dir DIR]
//! drivefi query   <plan.toml|store-dir> [--outcome safe|hazard|collision]
//!                 [--scenario ID] [--fault SUBSTR] [--limit N] [--output-dir DIR]
//! ```
//!
//! * `run` executes the plan; with an `[output]` section results stream
//!   to the store and the run resumes automatically if the store
//!   already holds records. `--max-jobs` caps how many *pending* jobs
//!   this invocation executes (the budget-cap interrupt CI exercises).
//! * `resume` is `run` that insists a store already exists — a typo'd
//!   directory fails instead of silently starting over.
//! * `report` rebuilds `report.toml` + `jobs.csv` from the store
//!   without running any jobs.
//! * `query` prints matching per-job records as CSV on stdout.
//! * `--output-dir` overrides the plan's `[output] dir` (handy for
//!   running one plan into several stores); the campaign fingerprint
//!   deliberately excludes the output section, so overriding it never
//!   invalidates a resume.
//!
//! Relative `[output] dir` paths are resolved against the plan file's
//! directory, so `drivefi run plans/foo.toml` works from anywhere.

use drivefi::plan::{
    campaign_fingerprint, run_plan_budget, CampaignPlan, OutputSpec, PlanReport, PlanResult,
};
use drivefi::store::{read_store, MANIFEST_FILE};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: drivefi <run|resume|report|query> <plan.toml|store-dir> \
                     [--max-jobs N] [--output-dir DIR] [--outcome safe|hazard|collision] \
                     [--scenario ID] [--fault SUBSTR] [--limit N]";

struct Args {
    command: String,
    target: String,
    max_jobs: Option<u64>,
    output_dir: Option<String>,
    outcome: Option<String>,
    scenario: Option<u32>,
    fault: Option<String>,
    limit: Option<usize>,
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("drivefi: {message}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail(USAGE));
    let target = args.next().unwrap_or_else(|| fail(USAGE));
    let mut parsed = Args {
        command,
        target,
        max_jobs: None,
        output_dir: None,
        outcome: None,
        scenario: None,
        fault: None,
        limit: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| fail(format!("{flag} needs a value\n{USAGE}")))
        };
        match flag.as_str() {
            "--max-jobs" => {
                parsed.max_jobs = Some(
                    value("--max-jobs")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-jobs needs an integer")),
                )
            }
            "--output-dir" => parsed.output_dir = Some(value("--output-dir")),
            "--outcome" => parsed.outcome = Some(value("--outcome")),
            "--scenario" => {
                parsed.scenario = Some(
                    value("--scenario")
                        .parse()
                        .unwrap_or_else(|_| fail("--scenario needs an integer id")),
                )
            }
            "--fault" => parsed.fault = Some(value("--fault")),
            "--limit" => {
                parsed.limit = Some(
                    value("--limit").parse().unwrap_or_else(|_| fail("--limit needs an integer")),
                )
            }
            other => fail(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    parsed
}

/// Loads the plan and resolves its `[output] dir` (or the `--output-dir`
/// override) against the plan file's directory.
fn load_plan(path: &str, output_dir: Option<&str>) -> CampaignPlan {
    let path = Path::new(path);
    let mut plan = CampaignPlan::load(path).unwrap_or_else(|e| fail(e));
    // A plan-embedded dir resolves against the plan file's directory...
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    if let Some(output) = &mut plan.output {
        let dir = Path::new(&output.dir);
        if dir.is_relative() {
            output.dir = base.join(dir).to_string_lossy().into_owned();
        }
    }
    // ...while a --output-dir override resolves like any CLI path:
    // against the working directory, untouched.
    if let Some(dir) = output_dir {
        let spec = plan.output.take().unwrap_or_else(|| OutputSpec::new(dir));
        plan.output = Some(OutputSpec { dir: dir.into(), ..spec });
    }
    plan
}

fn store_dir(plan: &CampaignPlan) -> &str {
    match &plan.output {
        Some(output) => &output.dir,
        None => fail("this command needs the plan to have an [output] section (or --output-dir)"),
    }
}

fn print_summary(result: &PlanResult) {
    match result {
        PlanResult::Random(stats) => println!(
            "random: {} runs, {} hazards, {} collisions, hazard rate {:.4}",
            stats.runs,
            stats.hazards,
            stats.collisions,
            stats.hazard_rate()
        ),
        PlanResult::RandomOutcomes { running, outcomes } => println!(
            "random: {} runs ({} outcomes kept), {} hazards, {} collisions",
            running.runs,
            outcomes.len(),
            running.hazards,
            running.collisions
        ),
        PlanResult::Exhaustive(report) => println!(
            "exhaustive: {} candidates, {} true hazards, precision {:.3}, recall {:.3}",
            report.candidates,
            report.true_hazards,
            report.precision(),
            report.recall()
        ),
        PlanResult::Golden(traces) => {
            println!("golden: {} traces collected", traces.len())
        }
        PlanResult::Persisted(report) => println!(
            "{}: {}/{} jobs persisted{}, {} safe, {} hazards, {} collisions → report.toml + jobs.csv",
            report.kind,
            report.jobs.len(),
            report.total_jobs,
            if report.complete() { " (complete)" } else { "" },
            report.safe(),
            report.hazards(),
            report.collisions(),
        ),
    }
}

fn cmd_run(args: &Args, require_store: bool) {
    let plan = load_plan(&args.target, args.output_dir.as_deref());
    if require_store {
        let dir = store_dir(&plan);
        if !Path::new(dir).join(MANIFEST_FILE).is_file() {
            fail(format!("nothing to resume: no store manifest under {dir}"));
        }
    }
    let result = run_plan_budget(&plan, args.max_jobs).unwrap_or_else(|e| fail(e));
    print_summary(&result);
}

fn cmd_report(args: &Args) {
    let plan = load_plan(&args.target, args.output_dir.as_deref());
    let dir = store_dir(&plan);
    let (meta, records) = read_store(dir).unwrap_or_else(|e| fail(e));
    let expected = campaign_fingerprint(&plan);
    if meta.fingerprint != expected {
        fail(format!(
            "store under {dir} was created by a different plan \
             (fingerprint 0x{:016x}, plan is 0x{expected:016x})",
            meta.fingerprint
        ));
    }
    let report = PlanReport::new(
        plan.name.clone(),
        plan.kind.name(),
        meta.fingerprint,
        meta.total_jobs,
        records,
    );
    report.save(dir).unwrap_or_else(|e| fail(e));
    print_summary(&PlanResult::Persisted(report));
}

fn cmd_query(args: &Args) {
    // Accept either a plan file (query its [output] store) or a store
    // directory directly.
    let target = Path::new(&args.target);
    let dir: PathBuf = if target.join(MANIFEST_FILE).is_file() {
        target.to_path_buf()
    } else {
        PathBuf::from(store_dir(&load_plan(&args.target, args.output_dir.as_deref())))
    };
    let (_, records) = read_store(&dir).unwrap_or_else(|e| fail(e));

    let mut out = String::new();
    out.push_str(drivefi::plan::csv_header());
    out.push('\n');
    let mut matched = 0usize;
    for record in &records {
        if args.limit.is_some_and(|limit| matched >= limit) {
            break;
        }
        let outcome_name = match record.outcome {
            drivefi::sim::Outcome::Safe => "safe",
            drivefi::sim::Outcome::Hazard { .. } => "hazard",
            drivefi::sim::Outcome::Collision { .. } => "collision",
        };
        if args.outcome.as_deref().is_some_and(|want| want != outcome_name) {
            continue;
        }
        if args.scenario.is_some_and(|want| want != record.scenario_id) {
            continue;
        }
        if let Some(want) = &args.fault {
            let name = record.fault.map(|spec| spec.kind.name()).unwrap_or_default();
            if !name.contains(want.as_str()) {
                continue;
            }
        }
        drivefi::plan::csv_row(record, &mut out);
        matched += 1;
    }
    print!("{out}");
    eprintln!("{matched} of {} records matched", records.len());
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "run" => cmd_run(&args, false),
        "resume" => cmd_run(&args, true),
        "report" => cmd_report(&args),
        "query" => cmd_query(&args),
        other => fail(format!("unknown command `{other}`\n{USAGE}")),
    }
}
