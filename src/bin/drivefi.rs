//! The `drivefi` campaign CLI: run, resume, mine, report on, compact,
//! query, and *serve* plan-file campaigns with a persistent store.
//!
//! ```text
//! drivefi run     <plan.toml> [--max-jobs N] [--output-dir DIR] [--no-assert-control]
//! drivefi resume  <plan.toml> [--output-dir DIR] [--no-assert-control]
//! drivefi mine    <plan.toml> [--max-jobs N] [--output-dir DIR] [--no-assert-control]
//! drivefi report  <plan.toml> [--partial] [--output-dir DIR] [--format toml|md|html]
//! drivefi compact <plan.toml|store-dir> [--output-dir DIR]
//! drivefi query   <plan.toml|store-dir> [--outcome safe|hazard|collision]
//!                 [--scenario ID] [--fault SUBSTR] [--limit N] [--output-dir DIR]
//!                 [--format csv|jsonl]
//! drivefi diff    <baseline-store> <candidate-store> [--plan plan.toml]
//! drivefi serve   <root> [--slice N] [--poll-ms N] [--drain] [--max-rounds N]
//! drivefi submit  <root> <plan.toml>
//! drivefi status  <root>
//! ```
//!
//! * `run` executes the plan; with an `[output]` section results stream
//!   to the store and the run resumes automatically if the store
//!   already holds records. `--max-jobs` caps how many *pending* jobs
//!   this invocation executes (the budget-cap interrupt CI exercises).
//! * `resume` is `run` that insists a store already exists — a typo'd
//!   directory fails instead of silently starting over.
//! * `mine` is `run` that insists the plan is a Bayesian-pipeline kind
//!   (`kind = "mine"`: golden → fit → mine → validate, or
//!   `kind = "adaptive"`: the posterior-guided acquisition loop over
//!   per-round sub-stores `round-000/`, `round-001/`, …).
//! * `report` rebuilds `report.toml` + `jobs.csv` from the store
//!   without running any jobs. An interrupted store needs `--partial` —
//!   a partial report is otherwise indistinguishable from a finished
//!   run's at a glance; the refusal surveys the shards and says *which*
//!   of them (and whose leases) are incomplete. `--format md|html`
//!   additionally renders `report.md`/`report.html` with per-fault and
//!   per-family breakdowns plus whatever `DRIVEFI_OBS` lifecycle events
//!   and `DRIVEFI_PROFILE` tick timings the run left behind.
//! * `diff` compares two stores cell-by-cell (scenario × fault): exit 0
//!   when the candidate holds no new or worsened hazards, exit 3 when
//!   it regressed — the CI safety gate. `--plan` maps scenario ids to
//!   family names in the listing.
//! * `run`/`resume`/`mine` on random and mine plans first execute an
//!   unfaulted *control job* and assert it survivable (a hazardous
//!   baseline means faulted outcomes prove nothing); opt out with
//!   `--no-assert-control` or `[control] assert = false`.
//! * `compact` rewrites a store's shards in pure job order (torn tails
//!   and duplicate records dropped); `read_store` results are unchanged.
//! * `query` prints matching per-job records as CSV on stdout. Filter
//!   values are validated up front: a typo'd `--outcome hazrd` or
//!   `--fault throtle` is a usage error, not an empty result.
//! * `--output-dir` overrides the plan's `[output] dir` (handy for
//!   running one plan into several stores); the campaign fingerprint
//!   deliberately excludes the output section, so overriding it never
//!   invalidates a resume.
//! * `serve` runs the campaign daemon over a serve root: plans
//!   `submit`ted into `<root>/spool/` are claimed, scheduled
//!   fair-share (one `--slice`-sized job budget per `[submit] weight`
//!   unit per round), and report into `<root>/campaigns/<id>/`;
//!   `status` prints every campaign's live progress. `--drain` exits
//!   once everything submitted has finished.
//!
//! Relative `[output] dir` paths are resolved against the plan file's
//! directory, so `drivefi run plans/foo.toml` works from anywhere. For
//! pipeline kinds (`mine`, store-backed `exhaustive`) `report` and
//! `query` read the sweep-stage sub-store (`validate/` / `sweep/`).

use drivefi::plan::{
    ads_profile_rows, campaign_fingerprint, diff_stores, known_fault_filter, report_document,
    round_dirs, run_plan_budget, to_html, to_markdown, AdaptiveProgress, CampaignKind,
    CampaignPlan, ControlVerdict, OutputSpec, PlanReport, PlanResult, RenderContext, GOLDEN_SUBDIR,
    SWEEP_SUBDIR, VALIDATE_SUBDIR,
};
use drivefi::serve::{serve, submit_plan, CampaignStatus, ServeConfig, CAMPAIGNS_DIR, SPOOL_DIR};
use drivefi::store::{compact_store, read_store, shard_progress, LeaseState, MANIFEST_FILE};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: drivefi <run|resume|mine|report|compact|query> <plan.toml|store-dir> \
                     [--max-jobs N] [--output-dir DIR] [--partial] [--no-assert-control] \
                     [--outcome safe|hazard|collision] [--scenario ID] [--fault SUBSTR] \
                     [--limit N] [--format toml|md|html|csv|jsonl]\n       \
                     drivefi diff <baseline-store> <candidate-store> [--plan plan.toml]\n       \
                     drivefi serve <root> [--slice N] [--poll-ms N] [--drain] [--max-rounds N]\n       \
                     drivefi submit <root> <plan.toml>\n       \
                     drivefi status <root>";

struct Args {
    command: String,
    target: String,
    /// Second positional operand (`submit`'s plan path).
    extra: Option<String>,
    max_jobs: Option<u64>,
    output_dir: Option<String>,
    partial: bool,
    outcome: Option<String>,
    scenario: Option<u32>,
    fault: Option<String>,
    limit: Option<usize>,
    slice: Option<u64>,
    poll_ms: Option<u64>,
    drain: bool,
    max_rounds: Option<u64>,
    format: Option<String>,
    no_assert_control: bool,
    /// `diff --plan`: the plan whose suite names scenario families.
    plan: Option<String>,
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("drivefi: {message}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail(USAGE));
    let target = args.next().unwrap_or_else(|| fail(USAGE));
    let mut parsed = Args {
        command,
        target,
        extra: None,
        max_jobs: None,
        output_dir: None,
        partial: false,
        outcome: None,
        scenario: None,
        fault: None,
        limit: None,
        slice: None,
        poll_ms: None,
        drain: false,
        max_rounds: None,
        format: None,
        no_assert_control: false,
        plan: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| fail(format!("{flag} needs a value\n{USAGE}")))
        };
        match flag.as_str() {
            "--max-jobs" => {
                parsed.max_jobs = Some(
                    value("--max-jobs")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-jobs needs an integer")),
                )
            }
            "--output-dir" => parsed.output_dir = Some(value("--output-dir")),
            "--partial" => parsed.partial = true,
            "--outcome" => {
                let outcome = value("--outcome");
                if !matches!(outcome.as_str(), "safe" | "hazard" | "collision") {
                    fail(format!("--outcome must be safe, hazard, or collision (got `{outcome}`)"));
                }
                parsed.outcome = Some(outcome)
            }
            "--scenario" => {
                parsed.scenario = Some(
                    value("--scenario")
                        .parse()
                        .unwrap_or_else(|_| fail("--scenario needs an integer id")),
                )
            }
            "--fault" => {
                let fault = value("--fault");
                if !known_fault_filter(&fault) {
                    fail(format!(
                        "--fault `{fault}` matches no known fault-kind name (names look like \
                         `plan.throttle:max`, `world.lead_distance:min`, `world.clear`, \
                         `planning.hang`)"
                    ));
                }
                parsed.fault = Some(fault)
            }
            "--limit" => {
                parsed.limit = Some(
                    value("--limit").parse().unwrap_or_else(|_| fail("--limit needs an integer")),
                )
            }
            "--slice" => {
                let slice: u64 =
                    value("--slice").parse().unwrap_or_else(|_| fail("--slice needs an integer"));
                if slice == 0 {
                    fail("--slice must be at least 1");
                }
                parsed.slice = Some(slice)
            }
            "--poll-ms" => {
                parsed.poll_ms = Some(
                    value("--poll-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--poll-ms needs an integer")),
                )
            }
            "--drain" => parsed.drain = true,
            "--format" => {
                let format = value("--format");
                if !matches!(format.as_str(), "toml" | "md" | "html" | "csv" | "jsonl") {
                    fail(format!(
                        "--format must be toml, md, or html (report) or csv or jsonl (query), \
                         got `{format}`"
                    ));
                }
                parsed.format = Some(format)
            }
            "--no-assert-control" => parsed.no_assert_control = true,
            "--plan" => parsed.plan = Some(value("--plan")),
            "--max-rounds" => {
                parsed.max_rounds = Some(
                    value("--max-rounds")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-rounds needs an integer")),
                )
            }
            other if !other.starts_with('-') && parsed.extra.is_none() => {
                parsed.extra = Some(other.to_string())
            }
            other => fail(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    parsed
}

/// Loads the plan and resolves its `[output] dir` (or the `--output-dir`
/// override) against the plan file's directory.
fn load_plan(path: &str, output_dir: Option<&str>) -> CampaignPlan {
    let path = Path::new(path);
    let mut plan = CampaignPlan::load(path).unwrap_or_else(|e| fail(e));
    // A plan-embedded dir resolves against the plan file's directory...
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    if let Some(output) = &mut plan.output {
        let dir = Path::new(&output.dir);
        if dir.is_relative() {
            output.dir = base.join(dir).to_string_lossy().into_owned();
        }
    }
    // ...while a --output-dir override resolves like any CLI path:
    // against the working directory, untouched.
    if let Some(dir) = output_dir {
        let spec = plan.output.take().unwrap_or_else(|| OutputSpec::new(dir));
        plan.output = Some(OutputSpec { dir: dir.into(), ..spec });
    }
    plan
}

/// For a `<store-dir>` target with no manifest: a hint listing the
/// pipeline stage sub-stores available at or near the target, so a
/// mistyped stage name (`store/valdate`) or a bare pipeline root names
/// what the user probably meant instead of "no such store".
fn sub_store_hint(target: &Path) -> Option<String> {
    let list = |dir: &Path| -> Vec<String> {
        [GOLDEN_SUBDIR, VALIDATE_SUBDIR, SWEEP_SUBDIR]
            .iter()
            .map(|stage| dir.join(stage))
            .chain(round_dirs(dir))
            .filter(|stage| stage.join(MANIFEST_FILE).is_file())
            .map(|stage| format!("{}/", stage.display()))
            .collect()
    };
    let here = list(target);
    if !here.is_empty() {
        return Some(format!(
            "{} is a pipeline root, not a store — pick a stage sub-store: {}",
            target.display(),
            here.join(", ")
        ));
    }
    if !target.exists() {
        let near = list(target.parent()?);
        if !near.is_empty() {
            return Some(format!(
                "{} does not exist — available stage sub-stores: {}",
                target.display(),
                near.join(", ")
            ));
        }
    }
    None
}

fn store_dir(plan: &CampaignPlan) -> &str {
    match &plan.output {
        Some(output) => &output.dir,
        None => fail("this command needs the plan to have an [output] section (or --output-dir)"),
    }
}

/// The directory holding the plan's final per-job records: the store
/// itself for single-stage kinds, the sweep-stage sub-store
/// (`validate/` / `sweep/`) for two-stage pipeline kinds. Adaptive
/// campaigns have no single records dir — their report concatenates
/// every `round-*/` sub-store ([`adaptive_records`]).
fn records_dir(plan: &CampaignPlan) -> PathBuf {
    let root = Path::new(store_dir(plan));
    match plan.kind.store_subdir() {
        Some(subdir) => root.join(subdir),
        None => root.to_path_buf(),
    }
}

fn print_summary(result: &PlanResult) {
    match result {
        PlanResult::Random(stats) => println!(
            "random: {} runs, {} hazards, {} collisions, hazard rate {:.4}",
            stats.runs,
            stats.hazards,
            stats.collisions,
            stats.hazard_rate()
        ),
        PlanResult::RandomOutcomes { running, outcomes } => println!(
            "random: {} runs ({} outcomes kept), {} hazards, {} collisions",
            running.runs,
            outcomes.len(),
            running.hazards,
            running.collisions
        ),
        PlanResult::Exhaustive(report) => println!(
            "exhaustive: {} candidates, {} true hazards, precision {:.3}, recall {:.3}",
            report.candidates,
            report.true_hazards,
            report.precision(),
            report.recall()
        ),
        PlanResult::Golden(traces) => {
            println!("golden: {} traces collected", traces.len())
        }
        PlanResult::Persisted(report) => println!(
            "{}: {}/{} jobs persisted{}, {} safe, {} hazards, {} collisions → report.toml + jobs.csv",
            report.kind,
            report.jobs.len(),
            report.total_jobs,
            if report.complete() { " (complete)" } else { "" },
            report.safe(),
            report.hazards(),
            report.collisions(),
        ),
    }
}

fn cmd_run(args: &Args, require_store: bool, require_mine: bool) {
    let mut plan = load_plan(&args.target, args.output_dir.as_deref());
    if args.no_assert_control {
        plan.control.assert_survivable = false;
    }
    if require_mine
        && !matches!(plan.kind, CampaignKind::Mine { .. } | CampaignKind::Adaptive { .. })
    {
        fail(format!(
            "`drivefi mine` needs a `kind = \"mine\"` or `kind = \"adaptive\"` plan, got \
             `kind = \"{}\"` (use `drivefi run` for other kinds)",
            plan.kind.name()
        ));
    }
    if require_store {
        // Pipeline kinds create their golden sub-store first, so that is
        // what an interrupted run is guaranteed to have left behind.
        let dir = store_dir(&plan);
        let first_store = if plan.kind.is_staged() {
            Path::new(dir).join(GOLDEN_SUBDIR)
        } else {
            PathBuf::from(dir)
        };
        if !first_store.join(MANIFEST_FILE).is_file() {
            fail(format!("nothing to resume: no store manifest under {}", first_store.display()));
        }
    }
    let result = run_plan_budget(&plan, args.max_jobs).unwrap_or_else(|e| fail(e));
    print_summary(&result);
    // `run --format md|html` renders right here, in the process that
    // just simulated — the one place the `DRIVEFI_PROFILE` tick table
    // has samples to show.
    if let (Some("md" | "html"), PlanResult::Persisted(report), Some(output)) =
        (args.format.as_deref(), &result, &plan.output)
    {
        render_report(args, &plan, report, Path::new(&output.dir));
    }
}

fn cmd_report(args: &Args) {
    let plan = load_plan(&args.target, args.output_dir.as_deref());
    if matches!(plan.kind, CampaignKind::Adaptive { .. }) {
        return cmd_report_adaptive(args, &plan);
    }
    let mut dir = records_dir(&plan);
    // Pipeline reports live at the output root, next to the sub-stores.
    let mut report_dir = PathBuf::from(store_dir(&plan));
    if plan.kind.store_subdir().is_some() && !dir.join(MANIFEST_FILE).is_file() {
        // The pipeline was interrupted before its sweep stage existed —
        // the golden sub-store is all there is to report on.
        let golden = report_dir.join(GOLDEN_SUBDIR);
        if golden.join(MANIFEST_FILE).is_file() {
            eprintln!(
                "drivefi: note: pipeline interrupted before its sweep stage — reporting on \
                 the golden stage under {}",
                golden.display()
            );
            dir = golden.clone();
            report_dir = golden;
        }
    }
    if !dir.join(MANIFEST_FILE).is_file() {
        if let Some(hint) = sub_store_hint(&dir) {
            fail(hint);
        }
    }
    let (meta, records) = read_store(&dir).unwrap_or_else(|e| fail(e));
    let expected = campaign_fingerprint(&plan);
    check_fingerprint(&dir, meta.fingerprint, expected);
    let report = PlanReport::new(
        plan.name.clone(),
        plan.kind.name(),
        meta.fingerprint,
        meta.total_jobs,
        records,
    );
    if !report.complete() && !args.partial {
        fail(incomplete_store_message(&dir, &report));
    }
    report.save(&report_dir).unwrap_or_else(|e| fail(e));
    match args.format.as_deref() {
        None | Some("toml") => {}
        Some("md" | "html") => render_report(args, &plan, &report, &report_dir),
        Some(other) => fail(format!("report --format must be toml, md, or html, got `{other}`")),
    }
    print_summary(&PlanResult::Persisted(report));
}

/// Fails unless the store under `dir` was written by this plan.
fn check_fingerprint(dir: &Path, found: u64, expected: u64) {
    if found != expected {
        fail(format!(
            "store under {} was created by a different plan \
             (fingerprint 0x{found:016x}, plan is 0x{expected:016x})",
            dir.display()
        ));
    }
}

/// Reads and concatenates every `round-*/` sub-store under an adaptive
/// campaign's output root, renumbering each round's store-local job ids
/// by the planned jobs before it — the exact record stream the
/// acquisition loop itself reports. Returns the records, the campaign's
/// planned job total so far, and the first incomplete round, if any.
fn adaptive_records(
    root: &Path,
    expected: u64,
) -> (Vec<drivefi::store::CampaignRecord>, u64, Option<PathBuf>) {
    let mut base = 0u64;
    let mut partial = None;
    let mut all = Vec::new();
    for dir in round_dirs(root) {
        if !dir.join(MANIFEST_FILE).is_file() {
            continue; // swept but never started — nothing persisted yet
        }
        let (meta, records) = read_store(&dir).unwrap_or_else(|e| fail(e));
        check_fingerprint(&dir, meta.fingerprint, expected);
        if !meta.complete && partial.is_none() {
            partial = Some(dir.clone());
        }
        for mut record in records {
            record.job += base;
            all.push(record);
        }
        base += meta.total_jobs;
    }
    (all, base, partial)
}

/// `report` for an adaptive plan: the report concatenates every
/// `round-*/` sub-store at the output root (where the acquisition loop
/// saves its own), falling back to the golden stage when the campaign
/// was interrupted before its first round.
fn cmd_report_adaptive(args: &Args, plan: &CampaignPlan) {
    let root = PathBuf::from(store_dir(plan));
    let expected = campaign_fingerprint(plan);
    let (records, total, partial) = adaptive_records(&root, expected);
    if total == 0 {
        let golden = root.join(GOLDEN_SUBDIR);
        if !golden.join(MANIFEST_FILE).is_file() {
            fail(format!(
                "nothing to report: no round sub-store or golden stage under {}",
                root.display()
            ));
        }
        eprintln!(
            "drivefi: note: acquisition loop interrupted before its first round — reporting on \
             the golden stage under {}",
            golden.display()
        );
        let (meta, records) = read_store(&golden).unwrap_or_else(|e| fail(e));
        check_fingerprint(&golden, meta.fingerprint, expected);
        let report = PlanReport::new(
            plan.name.clone(),
            plan.kind.name(),
            expected,
            meta.total_jobs,
            records,
        );
        if !report.complete() && !args.partial {
            fail(incomplete_store_message(&golden, &report));
        }
        report.save(&golden).unwrap_or_else(|e| fail(e));
        if matches!(args.format.as_deref(), Some("md" | "html")) {
            render_report(args, plan, &report, &golden);
        }
        return print_summary(&PlanResult::Persisted(report));
    }
    let report = PlanReport::new(plan.name.clone(), plan.kind.name(), expected, total, records);
    if !report.complete() && !args.partial {
        let dir = partial.unwrap_or_else(|| root.clone());
        fail(format!(
            "adaptive round under {} is incomplete ({} of {} campaign job records persisted) — \
             resume it with `drivefi resume`, or pass --partial to report on it as-is",
            dir.display(),
            report.jobs.len(),
            report.total_jobs
        ));
    }
    report.save(&root).unwrap_or_else(|e| fail(e));
    match args.format.as_deref() {
        None | Some("toml") => {}
        Some("md" | "html") => render_report(args, plan, &report, &root),
        Some(other) => fail(format!("report --format must be toml, md, or html, got `{other}`")),
    }
    print_summary(&PlanResult::Persisted(report));
}

/// Renders `report.md` / `report.html` next to the store artifacts.
fn render_report(args: &Args, plan: &CampaignPlan, report: &PlanReport, report_dir: &Path) {
    let context = render_context(plan, report_dir);
    let document = report_document(report, &context);
    let (rendered, file) = match args.format.as_deref() {
        Some("md") => (to_markdown(&document), "report.md"),
        _ => (to_html(&document), "report.html"),
    };
    let path = report_dir.join(file);
    std::fs::write(&path, rendered).unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
    println!("rendered {}", path.display());
}

/// Everything the renderer can use beyond the report itself: the plan
/// suite's family names, the control verdict, and — when `DRIVEFI_OBS`
/// was on during the run — the campaign's lifecycle events. All
/// best-effort: a store with none of it still renders.
fn render_context(plan: &CampaignPlan, report_dir: &Path) -> RenderContext {
    let mut context = RenderContext {
        control: ControlVerdict::load(report_dir).unwrap_or(None),
        adaptive: AdaptiveProgress::load(report_dir).unwrap_or(None),
        profile: ads_profile_rows(),
        ..RenderContext::default()
    };
    for scenario in plan.scenarios.build_suite().scenarios {
        context.family_names.insert(scenario.id, scenario.name);
    }
    // Single-stage campaigns log everything into one root events.jsonl;
    // pipeline stages also log into their sub-stores. Merge in seq
    // order (the sequence counter is process-global).
    let mut events = drivefi::obs::read_events(report_dir).unwrap_or_default();
    for stage in [GOLDEN_SUBDIR, VALIDATE_SUBDIR, SWEEP_SUBDIR] {
        events.extend(drivefi::obs::read_events(&report_dir.join(stage)).unwrap_or_default());
    }
    for round in round_dirs(report_dir) {
        events.extend(drivefi::obs::read_events(&round).unwrap_or_default());
    }
    events.sort_by_key(|event| event.seq);
    events.dedup_by_key(|event| event.seq);
    context.events = events;
    context
}

/// The `report` refusal for an interrupted store: survey the shards so
/// the message says *which* of them are short and whether a writer
/// still holds (or abandoned) them — an actively-running campaign, a
/// crashed one, and a scoped serve writer that finished its range but
/// never sealed all read differently.
fn incomplete_store_message(dir: &Path, report: &PlanReport) -> String {
    use std::fmt::Write;
    let mut message = format!(
        "store under {} holds {} of {} job records — an interrupted campaign; resume it \
         with `drivefi resume`, or pass --partial to report on it as-is",
        dir.display(),
        report.jobs.len(),
        report.total_jobs
    );
    let Ok(progress) = shard_progress(dir) else { return message };
    let all_shards_full = progress.iter().all(|shard| shard.complete());
    message.push_str("\n  incomplete shards:");
    if all_shards_full {
        // Every shard has all its records but the manifest never went
        // complete: a scoped writer (serve slice / --max-jobs range)
        // finished its range without sealing the store.
        message.push_str(
            "\n    none — every shard is fully persisted, but no writer sealed the store \
             (a scoped writer finished its range); `drivefi resume` will seal it",
        );
        return message;
    }
    for shard in progress.iter().filter(|shard| !shard.complete()) {
        let lease = match &shard.lease {
            LeaseState::Unheld => "no writer holds it — interrupted".to_string(),
            LeaseState::Live { holder } => format!("held live by {holder} — still running"),
            LeaseState::Stale { holder } => format!("stale lease from {holder} — crashed"),
        };
        let _ = write!(
            message,
            "\n    shard {:03}: {} of {} records; {lease}",
            shard.shard, shard.records, shard.expected
        );
    }
    message
}

fn cmd_compact(args: &Args) {
    // Accept either a store directory directly or a plan file, whose
    // every stage store is compacted.
    let target = Path::new(&args.target);
    let dirs: Vec<PathBuf> = if target.join(MANIFEST_FILE).is_file() {
        vec![target.to_path_buf()]
    } else {
        if let Some(hint) = sub_store_hint(target) {
            fail(hint);
        }
        let plan = load_plan(&args.target, args.output_dir.as_deref());
        let root = PathBuf::from(store_dir(&plan));
        match plan.kind.store_subdir() {
            Some(subdir) => vec![root.join(GOLDEN_SUBDIR), root.join(subdir)],
            // Adaptive: golden plus every round that has run so far.
            None if plan.kind.is_staged() => {
                std::iter::once(root.join(GOLDEN_SUBDIR)).chain(round_dirs(&root)).collect()
            }
            None => vec![root],
        }
    };
    for dir in dirs {
        if !dir.join(MANIFEST_FILE).is_file() {
            eprintln!("drivefi: skipping {} (no store manifest yet)", dir.display());
            continue;
        }
        let meta = compact_store(&dir).unwrap_or_else(|e| fail(e));
        println!(
            "compacted {}: {} records across {} shard(s){} now in pure job order",
            dir.display(),
            meta.checkpoint_records,
            meta.shards,
            if meta.traces { " (+ trace shards)" } else { "" },
        );
    }
}

fn cmd_query(args: &Args) {
    // Accept either a plan file (query its [output] store) or a store
    // directory directly.
    let target = Path::new(&args.target);
    let records: Vec<drivefi::store::CampaignRecord> = if target.join(MANIFEST_FILE).is_file() {
        read_store(target).unwrap_or_else(|e| fail(e)).1
    } else {
        if let Some(hint) = sub_store_hint(target) {
            fail(hint);
        }
        let plan = load_plan(&args.target, args.output_dir.as_deref());
        if matches!(plan.kind, CampaignKind::Adaptive { .. }) {
            let root = PathBuf::from(store_dir(&plan));
            adaptive_records(&root, campaign_fingerprint(&plan)).0
        } else {
            read_store(records_dir(&plan)).unwrap_or_else(|e| fail(e)).1
        }
    };

    let jsonl = match args.format.as_deref() {
        None | Some("csv") => false,
        Some("jsonl") => true,
        Some(other) => fail(format!("query --format must be csv or jsonl, got `{other}`")),
    };
    let mut out = String::new();
    if !jsonl {
        out.push_str(drivefi::plan::csv_header());
        out.push('\n');
    }
    let mut matched = 0usize;
    for record in &records {
        if args.limit.is_some_and(|limit| matched >= limit) {
            break;
        }
        let outcome_name = match record.outcome {
            drivefi::sim::Outcome::Safe => "safe",
            drivefi::sim::Outcome::Hazard { .. } => "hazard",
            drivefi::sim::Outcome::Collision { .. } => "collision",
        };
        if args.outcome.as_deref().is_some_and(|want| want != outcome_name) {
            continue;
        }
        if args.scenario.is_some_and(|want| want != record.scenario_id) {
            continue;
        }
        if let Some(want) = &args.fault {
            let name = record.fault.map(|spec| spec.kind.name()).unwrap_or_default();
            if !name.contains(want.as_str()) {
                continue;
            }
        }
        if jsonl {
            jsonl_row(record, outcome_name, &mut out);
        } else {
            drivefi::plan::csv_row(record, &mut out);
        }
        matched += 1;
    }
    print!("{out}");
    eprintln!("{matched} of {} records matched", records.len());
}

/// One record as a flat JSON object line — the same fields as the CSV,
/// with nulls where the CSV leaves cells empty. Fault names and outcome
/// names come from closed vocabularies (no quoting needed beyond `"`).
fn jsonl_row(record: &drivefi::store::CampaignRecord, outcome_name: &str, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"job\":{},\"scenario_id\":{},\"scenario_seed\":{},",
        record.job, record.scenario_id, record.scenario_seed
    );
    match record.fault {
        Some(spec) => {
            let _ = write!(
                out,
                "\"fault\":\"{}\",\"fault_scene\":{},\"fault_scenes\":{},",
                spec.kind.name(),
                spec.window.scene,
                spec.window.scenes
            );
        }
        None => out.push_str("\"fault\":null,\"fault_scene\":null,\"fault_scenes\":null,"),
    }
    let _ = write!(out, "\"outcome\":\"{outcome_name}\",");
    match record.outcome {
        drivefi::sim::Outcome::Safe => out.push_str("\"scene\":null,\"actor\":null,"),
        drivefi::sim::Outcome::Hazard { scene } => {
            let _ = write!(out, "\"scene\":{scene},\"actor\":null,");
        }
        drivefi::sim::Outcome::Collision { scene, actor } => {
            let _ = write!(out, "\"scene\":{scene},\"actor\":{actor},");
        }
    }
    let _ = writeln!(
        out,
        "\"injections\":{},\"scenes\":{},\"min_delta_lon\":{},\"min_delta_lat\":{}}}",
        record.injections, record.scenes, record.min_delta_lon, record.min_delta_lat
    );
}

/// `drivefi diff <baseline> <candidate>`: exit 0 when the candidate
/// holds no new or worsened hazard cells, 3 when it regressed.
fn cmd_diff(args: &Args) {
    let candidate = args
        .extra
        .as_deref()
        .unwrap_or_else(|| fail(format!("diff needs two store directories\n{USAGE}")));
    let names: BTreeMap<u32, String> = match &args.plan {
        Some(path) => load_plan(path, None)
            .scenarios
            .build_suite()
            .scenarios
            .into_iter()
            .map(|scenario| (scenario.id, scenario.name))
            .collect(),
        None => BTreeMap::new(),
    };
    let diff = diff_stores(&args.target, candidate).unwrap_or_else(|e| fail(e));
    println!(
        "diff: {} baseline cell(s) vs {} candidate cell(s): {} regressed, {} improved",
        diff.baseline_cells,
        diff.candidate_cells,
        diff.regressed.len(),
        diff.improved.len()
    );
    for delta in &diff.regressed {
        println!("  REGRESSED {}", delta.describe(&names));
    }
    for delta in &diff.improved {
        println!("  improved  {}", delta.describe(&names));
    }
    let jobs_to_find = |jobs: Option<u64>| match jobs {
        Some(jobs) => format!("{jobs} job(s)"),
        None => "never".to_string(),
    };
    println!(
        "jobs to first hazard: baseline {}, candidate {}",
        jobs_to_find(diff.baseline_jobs_to_hazard),
        jobs_to_find(diff.candidate_jobs_to_hazard)
    );
    // When exactly one side ever found a hazard, say so outright — the
    // summary line above leaves the reader to infer it from `never`.
    match (diff.baseline_jobs_to_hazard, diff.candidate_jobs_to_hazard) {
        (None, Some(jobs)) => {
            println!("  baseline hazard-free → candidate's first hazard at job {jobs}");
        }
        (Some(jobs), None) => {
            println!("  candidate hazard-free → baseline's first hazard at job {jobs}");
        }
        _ => {}
    }
    if diff.has_regression() {
        eprintln!(
            "drivefi: candidate regressed in {} cell(s) relative to the baseline",
            diff.regressed.len()
        );
        std::process::exit(3);
    }
}

fn cmd_serve(args: &Args) {
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        slice: args.slice.unwrap_or(defaults.slice),
        poll_ms: args.poll_ms.unwrap_or(defaults.poll_ms),
        drain: args.drain,
        max_rounds: args.max_rounds,
    };
    let summary = serve(Path::new(&args.target), &config).unwrap_or_else(|e| fail(e));
    println!(
        "serve: {} campaign(s) over {} round(s): {} done, {} failed",
        summary.admitted, summary.rounds, summary.done, summary.failed
    );
    if summary.failed > 0 {
        std::process::exit(1);
    }
}

fn cmd_submit(args: &Args) {
    let plan =
        args.extra.as_deref().unwrap_or_else(|| fail(format!("submit needs a plan file\n{USAGE}")));
    let id = submit_plan(Path::new(&args.target), Path::new(plan)).unwrap_or_else(|e| fail(e));
    println!(
        "submitted as {id} (spooled under {})",
        Path::new(&args.target).join(SPOOL_DIR).display()
    );
}

fn cmd_status(args: &Args) {
    let root = Path::new(&args.target);
    let campaigns = root.join(CAMPAIGNS_DIR);
    let mut dirs: Vec<PathBuf> = match std::fs::read_dir(&campaigns) {
        Ok(entries) => entries.filter_map(|e| e.ok()).map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    let mut shown = 0;
    for dir in dirs {
        let id = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        match CampaignStatus::load(&dir) {
            Ok(status) => {
                let eta = status.eta_seconds.map(|s| format!("  eta {s}s")).unwrap_or_default();
                // How long since the daemon last touched this campaign —
                // the difference between "running" and "daemon died".
                let age = status
                    .updated_ms
                    .map(|updated| {
                        let now = std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_millis() as u64)
                            .unwrap_or(0);
                        format!("  updated {}s ago", now.saturating_sub(updated) / 1000)
                    })
                    .unwrap_or_default();
                let error =
                    status.error.as_deref().map(|e| format!("  error: {e}")).unwrap_or_default();
                println!(
                    "{id}: {} [{}] {}/{} jobs  safe={} hazards={} collisions={} slices={}{eta}{age}{error}",
                    status.state.name(),
                    status.stage,
                    status.done,
                    status.total,
                    status.safe,
                    status.hazards,
                    status.collisions,
                    status.slices,
                );
                shown += 1;
            }
            Err(_) => {
                println!("{id}: claimed, no status yet");
                shown += 1;
            }
        }
    }
    let spooled = std::fs::read_dir(root.join(SPOOL_DIR))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    !name.starts_with('.') && name.ends_with(".toml")
                })
                .count()
        })
        .unwrap_or(0);
    if shown == 0 && spooled == 0 {
        println!("no campaigns under {}", root.display());
    } else if spooled > 0 {
        println!("{spooled} submission(s) waiting in the spool");
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "run" => cmd_run(&args, false, false),
        "resume" => cmd_run(&args, true, false),
        "mine" => cmd_run(&args, false, true),
        "report" => cmd_report(&args),
        "compact" => cmd_compact(&args),
        "query" => cmd_query(&args),
        "diff" => cmd_diff(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        other => fail(format!("unknown command `{other}`\n{USAGE}")),
    }
}
