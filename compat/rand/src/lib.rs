//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] — SplitMix64-expanded seeding,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`Rng`] — `random`, `random_range`, `random_bool`.
//!
//! The generator is **not** the upstream ChaCha12 `StdRng`; streams
//! differ from real `rand`, but every consumer in this workspace only
//! relies on determinism (same seed ⇒ same stream) and uniformity, both
//! of which xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded through SplitMix64
    /// so that nearby seeds yield uncorrelated states.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the unit interval / full bit range by
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as $wide;
                let hi_w = hi as $wide;
                // Wrapping arithmetic: a signed span wider than the
                // wide type's MAX reinterprets correctly as u64 below.
                let span = if inclusive {
                    hi_w.wrapping_sub(lo_w).wrapping_add(1)
                } else {
                    hi_w.wrapping_sub(lo_w)
                };
                if span == 0 {
                    // Inclusive full-range request: every bit pattern is valid.
                    return rng.next_u64() as $wide as $t;
                }
                // Debiased multiply-shift (Lemire): uniform over [0, span).
                let span = span as u64;
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return lo_w.wrapping_add((m >> 64) as u64 as $wide) as $t;
                    }
                }
            }
        }
    )*};
}

uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let u = f64::standard(rng);
        let x = lo + u * (hi - lo);
        // `lo + u*(hi - lo)` can round up to exactly `hi` even though
        // u < 1; keep the exclusive contract.
        if !inclusive && x >= hi {
            hi.next_down()
        } else {
            x
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let u = f32::standard(rng);
        let x = lo + u * (hi - lo);
        if !inclusive && x >= hi {
            hi.next_down()
        } else {
            x
        }
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty random_range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// The generator interface. Only [`Rng::next_u64`] is required; the
/// sampling methods are derived and usable on `?Sized` receivers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// One draw from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. (Upstream `rand` uses ChaCha12 here;
    /// the contract consumers rely on — determinism and uniformity — is
    /// preserved, the concrete stream is not.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state (period would be 1).
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15; 4];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.random_range(0..7);
            assert!(n < 7);
            let m: u32 = rng.random_range(2..=4u32);
            assert!((2..=4).contains(&m));
            // Signed exclusive range wider than i64::MAX: must not
            // overflow and must stay in bounds.
            let w: i64 = rng.random_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
        }
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for b in buckets {
            let expect = n / 10;
            assert!(b.abs_diff(expect) < expect / 10, "bucket {b}");
        }
    }

    #[test]
    fn unit_interval_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let p: f64 = (0..n).filter(|_| rng.random_bool(0.25)).count() as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn works_through_unsized_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
