//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `any::<T>()`, range strategies, `prop::array::uniform9`, and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! per-test RNG (no shrinking); a failing case panics with the formatted
//! assertion message and the case index so it can be replayed.

use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

#[doc(hidden)]
pub use rand::rngs::StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike upstream proptest there is no shrinking:
/// a strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary values of `T` over the full bit range (floats include
/// non-finite patterns, as upstream's `any::<f64>()` does).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a full-range arbitrary generator.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Full bit range: subnormals, infinities and NaNs included, like
        // upstream `any::<f64>()`. Tests guard with `prop_assume!`.
        f64::from_bits(rng.next_u64())
    }
}

// Tuples of strategies are themselves strategies (drawn left to right),
// mirroring upstream — the idiom behind
// `prop::collection::vec((0..9u8, 0.0..1.0f64), len)`.
macro_rules! tuple_strategy {
    ($( ( $($S:ident . $idx:tt),+ ) )*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    /// Array strategies.
    pub mod array {
        use super::super::{StdRng, Strategy};

        macro_rules! uniform_array {
            ($($name:ident => $n:literal),* $(,)?) => {$(
                /// A strategy for `[S::Value; N]` drawing each element
                /// independently from `strategy`.
                pub fn $name<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
                    UniformArray(strategy)
                }
            )*};
        }

        uniform_array! {
            uniform4 => 4, uniform9 => 9, uniform16 => 16, uniform32 => 32,
        }

        /// See [`uniform9`] and friends.
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                std::array::from_fn(|_| self.0.generate(rng))
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// A strategy drawing uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Generation panics if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select(options)
        }

        /// See [`select`].
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;
        use std::ops::Range;

        /// A strategy for `Vec<S::Value>` with a length drawn from
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-test seed so failures replay exactly.
    let mut seed = 0xC0FF_EE00_D15E_A5E5u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
    }
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 1000;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{test_name}: too many rejected cases ({attempts} attempts for {} accepted)",
            accepted
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempts));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {attempts} failed: {msg}")
            }
        }
    }
}

/// Mirrors proptest's `proptest! { ... }` block macro: each contained
/// function becomes a `#[test]` running [`ProptestConfig::cases`]
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                run()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with the usual two-value failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// `prop_assume!(cond)` — discards (does not fail) the case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0.0..1.0f64, n in 1u32..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn arrays_and_vecs(a in prop::array::uniform9(0.0..2.0f64),
                           v in prop::collection::vec(any::<u64>(), 1..8)) {
            prop_assert_eq!(a.len(), 9);
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn configured_cases(seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(true);
        }
    }
}
