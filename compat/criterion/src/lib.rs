//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so `cargo bench`
//! targets link against this minimal harness instead. It implements the
//! API subset the workspace's benches use — `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `sample_size`,
//! `throughput` — measures wall-clock samples, and prints a
//! criterion-style `time: [min mean max]` line per benchmark plus
//! throughput when configured. There is no statistical analysis, HTML
//! report, or baseline comparison; the point is that benches *run* and
//! produce comparable numbers (BENCH_*.json tracking can parse the
//! stable one-line format).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every variant re-runs setup per measured batch here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Units the per-iteration throughput line is reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        report(&self.name, id, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (printing nothing extra; samples were reported as
    /// they completed).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

/// Target wall-clock per measured sample; iteration counts adapt to it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

impl Bencher {
    /// Measures `routine`, adapting iterations per sample to
    /// `TARGET_SAMPLE_TIME`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: one untimed warm-up call, then estimate cost.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Measures `routine` over inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    assert!(!samples.is_empty(), "bench {group}/{id} recorded no samples");
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id}  time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
    if let Some(t) = throughput {
        match t {
            Throughput::Elements(n) => println!("{group}/{id}  thrpt: {:.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => println!("{group}/{id}  thrpt: {:.0} B/s", per_sec(n)),
        }
    }
    emit_json(group, id, min, mean, max, throughput);
}

/// Machine-readable emission: when `DRIVEFI_BENCH_JSON` names a file,
/// every benchmark appends one JSON object per line (JSONL) —
/// `{"group","id","min_ns","mean_ns","max_ns","throughput"?}` with
/// `throughput` as `{"unit","per_sec"}`. CI and `BENCH_*.json` tracking
/// consume this instead of scraping the human-readable lines.
fn emit_json(
    group: &str,
    id: &str,
    min: Duration,
    mean: Duration,
    max: Duration,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("DRIVEFI_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let mut line = format!(
        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}",
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos()
    );
    if let Some(t) = throughput {
        let (unit, n) = match t {
            Throughput::Elements(n) => ("elem/s", n),
            Throughput::Bytes(n) => ("B/s", n),
        };
        let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
        line.push_str(&format!(",\"throughput\":{{\"unit\":\"{unit}\",\"per_sec\":{per_sec:.1}}}"));
    }
    line.push_str("}\n");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("warning: DRIVEFI_BENCH_JSON append to {path} failed: {e}");
    }
}

/// Mirrors criterion's `criterion_group!`: defines a function running
/// each listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors criterion's `criterion_main!`: the benchmark entry point.
/// Harness CLI flags (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; this harness
            // has no filtering, but `--test` mode must not run the full
            // measurement (it would dominate `cargo test` wall-clock).
            if std::env::args().any(|a| a == "--test") {
                println!("bench compiled OK (measurement skipped in --test mode)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with('s'));
    }
}
