//! Registry-wide scenario-family properties.
//!
//! Every family in the builtin [`FamilyRegistry`] must satisfy two
//! contracts, for *any* seed:
//!
//! 1. **Determinism** — sampling is a pure function of `(name, seed)`;
//!    the id is recorded verbatim and never perturbs the jitter stream.
//! 2. **Golden survivability** — the fault-free run of every sampled
//!    scenario ends hazard-free. Scenario families exist to test the ADS
//!    under injected faults; a family that is unsurvivable *by
//!    construction* would attribute its own geometry bugs to the ADS and
//!    poison the miner's golden traces.

use drivefi::sim::{SimConfig, Simulation};
use drivefi::world::FamilyRegistry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Equal seeds produce identical scenarios (ego, set-speed, actors,
    /// behaviors), regardless of the id passed to the sampler.
    #[test]
    fn sampling_is_deterministic(seed in any::<u64>(), id in any::<u32>()) {
        for spec in FamilyRegistry::builtin().specs() {
            let a = spec.sample(0, seed);
            let b = spec.sample(id, seed);
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.ego_start, b.ego_start, "{}", spec.name);
            prop_assert_eq!(a.ego_set_speed, b.ego_set_speed, "{}", spec.name);
            prop_assert_eq!(a.actors.len(), b.actors.len(), "{}", spec.name);
            for (x, y) in a.actors.iter().zip(&b.actors) {
                prop_assert_eq!(x.state, y.state, "{} actor {}", spec.name, x.id);
                prop_assert_eq!(&x.behavior, &y.behavior, "{} actor {}", spec.name, x.id);
            }
            prop_assert_eq!(b.id, id, "{}: id must be recorded verbatim", spec.name);
        }
    }

    /// Every family's golden (fault-free) run ends hazard-free at every
    /// seed — scenarios test the ADS, they are not unsurvivable by
    /// construction.
    #[test]
    fn golden_runs_are_hazard_free(seed in any::<u64>()) {
        for spec in FamilyRegistry::builtin().specs() {
            let cfg = spec.sample(0, seed);
            let mut sim = Simulation::new(SimConfig::default(), &cfg);
            let report = sim.run();
            prop_assert!(
                report.outcome.is_safe(),
                "{} (seed {seed}) golden run: {} (min δ_lon {:.2}, min δ_lat {:.2})",
                spec.name,
                report.outcome,
                report.min_delta_lon,
                report.min_delta_lat
            );
        }
    }
}
