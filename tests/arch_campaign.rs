//! Integration test for the E1 architectural campaign shape.

use drivefi::fault::{ArchOutcome, ArchProgram, ArchSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn arch_campaign_reproduces_paper_shape() {
    let sim =
        ArchSimulator::new(ArchProgram::ads_control_kernel(50.0, 30.0, 25.0, 0.2, 0.01, 31.0));
    let mut rng = StdRng::seed_from_u64(0xE1);
    let n = 5000;
    let (masked, sdc, crash, hang, sdc_sites) = sim.campaign(n, &mut rng);
    assert_eq!(masked + sdc + crash + hang, n);

    let frac = |x: usize| x as f64 / n as f64;
    // Paper: ~90.7% masked, 1.93% SDC, 7.35% panic+hang. Shape bands:
    assert!(frac(masked) > 0.85, "masked {}", frac(masked));
    assert!(frac(sdc) > 0.003 && frac(sdc) < 0.06, "sdc {}", frac(sdc));
    assert!(
        frac(crash + hang) > 0.02 && frac(crash + hang) < 0.13,
        "crash+hang {}",
        frac(crash + hang)
    );

    // SDC outcomes carry a positive relative error and are reproducible.
    for (site, err) in sdc_sites.iter().take(20) {
        assert!(*err > 0.0);
        match sim.inject(*site) {
            ArchOutcome::Sdc { relative_error } => {
                assert!((relative_error - err).abs() < 1e-12)
            }
            other => panic!("SDC site reclassified as {other:?}"),
        }
    }
}
