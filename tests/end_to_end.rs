//! Integration tests spanning the whole stack through the facade crate.

use drivefi::ads::Signal;
use drivefi::fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi::sim::{run_campaign, CampaignJob, SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use drivefi::world::{scenario::ScenarioConfig, ScenarioSuite};

/// Every scenario family in the paper-scale suite completes its golden
/// run without a hazard — the precondition for the whole evaluation.
#[test]
fn paper_suite_golden_runs_are_safe() {
    let suite = ScenarioSuite::paper_suite(2026);
    assert_eq!(suite.scene_count(), 7200);
    let jobs: Vec<_> = suite
        .shared()
        .into_iter()
        .map(|s| CampaignJob { id: u64::from(s.id), scenario: s, faults: vec![] })
        .collect();
    let results = run_campaign(SimConfig::default(), &jobs, 8);
    for r in &results {
        assert!(r.report.outcome.is_safe(), "scenario {} golden run: {}", r.id, r.report.outcome);
    }
}

/// Example 1 mechanics: a throttle burst at the cut-in knife edge is
/// hazardous; the identical fault during free cruising is masked.
#[test]
fn example1_timing_sensitivity() {
    let scenario = ScenarioConfig::cut_in(0);
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
    let mut sim = Simulation::new(config, &scenario);
    let golden = sim.run();
    assert!(golden.outcome.is_safe());
    let trace = golden.trace.unwrap();
    let knife = trace
        .frames
        .iter()
        .min_by(|a, b| a.delta_true.longitudinal.partial_cmp(&b.delta_true.longitudinal).unwrap())
        .unwrap()
        .scene;

    // ~1.2 s of corrupted throttle/brake commands (the paper's Example-1
    // fault persisted long enough for braking to become futile).
    let throttle_burst = |scene: u64| {
        vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::burst(scene * BASE_TICKS_PER_SCENE, 36),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::burst(scene * BASE_TICKS_PER_SCENE, 36),
            },
        ]
    };

    // At the knife edge (a few scenes before minimum δ so the speed
    // carries in): hazardous.
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(throttle_burst(knife.saturating_sub(6)));
    let at_edge = sim.run_with(&mut injector);
    assert!(at_edge.outcome.is_hazardous(), "burst at knife edge stayed {}", at_edge.outcome);

    // Early in the run, with a wide margin: masked.
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(throttle_burst(5));
    let early = sim.run_with(&mut injector);
    assert!(early.outcome.is_safe(), "early burst became {}", early.outcome);
}

/// Example 2 mechanics: frozen perception across the lead-exit reveal is
/// hazardous; the golden run is not.
#[test]
fn example2_delayed_perception() {
    let scenario = ScenarioConfig::lead_exit_reveal(11);
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
    let mut sim = Simulation::new(config, &scenario);
    let golden = sim.run();
    assert!(golden.outcome.is_safe());
    let trace = golden.trace.unwrap();
    // The reveal: the perceived lead distance jumps up when TV#1 exits
    // and the (previously occluded) slow TV#2 becomes the lead.
    let reveal = trace
        .frames
        .windows(2)
        .find_map(|w| match (w[0].lead_distance, w[1].lead_distance) {
            (Some(a), Some(b)) if b - a > 20.0 => Some(w[1].scene),
            _ => None,
        })
        .expect("reveal moment present in golden trace");

    let fault = Fault {
        kind: FaultKind::FreezeWorldModel,
        window: FaultWindow::burst(
            reveal.saturating_sub(5) * BASE_TICKS_PER_SCENE,
            60 * BASE_TICKS_PER_SCENE,
        ),
    };
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(vec![fault]);
    let faulted = sim.run_with(&mut injector);
    assert!(faulted.outcome.is_hazardous(), "frozen perception stayed {}", faulted.outcome);
}

/// Localization teleport faults are masked by the pose plausibility gate
/// (the production-stack resilience the paper credits for random-FI
/// masking).
#[test]
fn pose_teleport_is_gated() {
    let scenario = ScenarioConfig::lead_vehicle_cruise(5);
    let fault = Fault {
        kind: FaultKind::Scalar { signal: Signal::PoseY, model: ScalarFaultModel::StuckMax },
        window: FaultWindow::scene(40),
    };
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(vec![fault]);
    let report = sim.run_with(&mut injector);
    assert!(injector.injection_count() > 0, "fault must have fired");
    assert!(report.outcome.is_safe(), "teleport leaked: {}", report.outcome);
}

/// Transient steering hard-over at highway speed is masked by the
/// lateral-acceleration interlock plus PID smoothing.
#[test]
fn transient_steer_fault_is_masked() {
    let scenario = ScenarioConfig::free_drive(4);
    let fault = Fault {
        kind: FaultKind::Scalar {
            signal: Signal::FinalSteering,
            model: ScalarFaultModel::StuckMax,
        },
        window: FaultWindow::scene(50),
    };
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(vec![fault]);
    let report = sim.run_with(&mut injector);
    assert!(report.outcome.is_safe(), "transient steer: {}", report.outcome);
}

/// A *permanent* steering hard-over is not maskable: the vehicle departs
/// the lane and the monitor flags it.
#[test]
fn permanent_steer_fault_is_hazardous() {
    let scenario = ScenarioConfig::free_drive(4);
    let fault = Fault {
        kind: FaultKind::Scalar {
            signal: Signal::FinalSteering,
            model: ScalarFaultModel::StuckMax,
        },
        window: FaultWindow::permanent(200),
    };
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(vec![fault]);
    let report = sim.run_with(&mut injector);
    assert!(report.outcome.is_hazardous(), "permanent steer fault: {}", report.outcome);
}

/// Campaign determinism end to end: identical seeds → identical outcome
/// sets, independent of worker count.
#[test]
fn campaigns_are_reproducible() {
    let suite = ScenarioSuite::generate(6, 99);
    let jobs: Vec<_> = suite
        .shared()
        .into_iter()
        .map(|s| CampaignJob {
            id: u64::from(s.id),
            scenario: s,
            faults: vec![Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawBrake,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::scene(30),
            }],
        })
        .collect();
    let a = run_campaign(SimConfig::default(), &jobs, 1);
    let b = run_campaign(SimConfig::default(), &jobs, 6);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.report.outcome, y.report.outcome);
        assert_eq!(x.report.min_delta_lon, y.report.min_delta_lon);
    }
}
