//! Crash-resume property tests for the persistent campaign store: a
//! campaign interrupted mid-run — including one whose store was torn
//! mid-record at an arbitrary byte offset — must resume to a
//! [`PlanReport`] **byte-identical** to an uninterrupted run's.

use drivefi::fault::FaultSpace;
use drivefi::plan::{
    round_dirs, run_plan, run_plan_budget, AdaptiveSection, CampaignKind, CampaignPlan, OutputSpec,
    PlanResult, ScenarioSelection, SimSection, SinkChoice, GOLDEN_SUBDIR, JOBS_FILE, REPORT_FILE,
    ROUNDS_FILE, VALIDATE_SUBDIR,
};
use drivefi::store::{compact_store, read_store, read_traces, MANIFEST_FILE};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const RUNS: usize = 8;

fn plan_into(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "crash-resume".into(),
        kind: CampaignKind::Random { runs: RUNS },
        seed: 11,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 3,
            checkpoint_every: 2,
        }),
    }
}

fn run_to_files(dir: &Path, budget: Option<u64>) -> PlanResult {
    run_plan_budget(&plan_into(dir), budget).expect("plan runs")
}

fn report_bytes(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join(REPORT_FILE)).expect("report.toml written"),
        std::fs::read(dir.join(JOBS_FILE)).expect("jobs.csv written"),
    )
}

fn shard_paths(dir: &Path) -> Vec<PathBuf> {
    let mut shards: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"))
        })
        .collect();
    shards.sort();
    shards
}

/// The uninterrupted baseline, computed once per process (each proptest
/// case re-running it would dominate the suite's wall clock).
fn baseline() -> &'static (Vec<u8>, Vec<u8>) {
    use std::sync::OnceLock;
    static BASELINE: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("drivefi-crash-baseline-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let PlanResult::Persisted(report) = run_to_files(&dir, None) else {
            panic!("output plan persists");
        };
        assert!(report.complete());
        let bytes = report_bytes(&dir);
        std::fs::remove_dir_all(&dir).ok();
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interrupt after a fuzzed number of jobs, tear a fuzzed shard at a
    /// fuzzed byte offset (mid-record included), resume, and compare the
    /// report files byte-for-byte against the uninterrupted run.
    #[test]
    fn torn_store_resumes_to_byte_identical_report(
        case in any::<u32>(),
        interrupt_after in 1u64..(RUNS as u64),
        shard_pick in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let (full_report, full_jobs) = baseline();
        let dir = std::env::temp_dir()
            .join(format!("drivefi-crash-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Interrupt via budget cap.
        let PlanResult::Persisted(partial) = run_to_files(&dir, Some(interrupt_after)) else {
            panic!("output plan persists");
        };
        prop_assert_eq!(partial.jobs.len() as u64, interrupt_after);

        // Tear a non-empty shard at a fuzzed offset past its header:
        // anywhere from "mid-record in the last frame" to "most of the
        // shard gone" — recovery must treat every cut as a torn tail.
        const HEADER: u64 = 16;
        let shards = shard_paths(&dir);
        let torn: Vec<&PathBuf> = shards
            .iter()
            .filter(|p| std::fs::metadata(p).unwrap().len() > HEADER)
            .collect();
        prop_assume!(!torn.is_empty());
        let victim = torn[(shard_pick % torn.len() as u64) as usize];
        let len = std::fs::metadata(victim).unwrap().len();
        let cut = HEADER + 1 + cut_pick % (len - HEADER - 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(victim)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Resume: re-runs the torn-away jobs plus the never-run ones.
        let PlanResult::Persisted(resumed) = run_to_files(&dir, None) else {
            panic!("output plan persists");
        };
        prop_assert!(resumed.complete());
        let (report, jobs) = report_bytes(&dir);
        prop_assert_eq!(&report, full_report, "report.toml drifted after torn-tail resume");
        prop_assert_eq!(&jobs, full_jobs, "jobs.csv drifted after torn-tail resume");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A store torn even before any interruption bookkeeping (manifest says
/// fewer records than the shards hold — the checkpoint lag window) still
/// resumes exactly: the shard scans are authoritative, not the manifest.
#[test]
fn resume_trusts_shards_not_the_checkpoint_counter() {
    let (full_report, full_jobs) = baseline();
    let dir = std::env::temp_dir().join(format!("drivefi-crash-manifest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_to_files(&dir, Some(5));

    // Rewind the manifest's checkpoint counter to zero, as if the crash
    // hit right after the first appends but before any checkpoint.
    let manifest = dir.join(MANIFEST_FILE);
    let src = std::fs::read_to_string(&manifest).unwrap();
    let rewound =
        src.lines()
            .map(|line| {
                if line.starts_with("checkpoint_records") {
                    "checkpoint_records = 0"
                } else {
                    line
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
    std::fs::write(&manifest, rewound + "\n").unwrap();

    let PlanResult::Persisted(resumed) = run_to_files(&dir, None) else { panic!() };
    assert!(resumed.complete());
    let (report, jobs) = report_bytes(&dir);
    assert_eq!(&report, full_report);
    assert_eq!(&jobs, full_jobs);
    std::fs::remove_dir_all(&dir).ok();
}

fn mine_plan_into(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "mine-resume".into(),
        kind: CampaignKind::Mine { scene_stride: 50 },
        seed: 0,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 2,
            checkpoint_every: 4,
        }),
    }
}

/// Concatenated bytes of every shard/trace log under a store directory —
/// the proxy for "no job was re-simulated": a resumed stage that re-ran
/// a completed job would append a duplicate record.
fn log_bytes(dir: &Path) -> Vec<u8> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "log"))
        .collect();
    paths.sort();
    paths.iter().flat_map(|p| std::fs::read(p).unwrap()).collect()
}

/// The acceptance-criteria loop: a `kind = "mine"` plan interrupted
/// mid-golden-collection, mid-fit, and mid-candidate-sweep resumes from
/// disk — without re-simulating completed jobs — to a final report
/// byte-identical to an uninterrupted run's, and `drivefi`-style
/// compaction leaves every read-back unchanged.
#[test]
fn mine_plan_resumes_every_stage_to_byte_identical_reports() {
    let dir = std::env::temp_dir().join(format!("drivefi-crash-mine-{}", std::process::id()));
    let full_dir = dir.join("full");
    let part_dir = dir.join("part");
    std::fs::remove_dir_all(&dir).ok();

    // Uninterrupted reference run.
    let PlanResult::Persisted(full) = run_plan(&mine_plan_into(&full_dir)).unwrap() else {
        panic!()
    };
    assert!(full.complete());
    assert_eq!(full.kind, "mine");
    assert!(
        full.total_jobs > 2,
        "mining found {} candidates — too few to interrupt",
        full.total_jobs
    );
    assert!(full.jobs.iter().all(|r| r.fault.is_some()), "validation jobs carry mined faults");
    let full_bytes = report_bytes(&full_dir);

    // Interrupt 1: mid-golden (one of two golden jobs done). The
    // progress report lands inside the golden sub-store.
    let plan = mine_plan_into(&part_dir);
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(1)).unwrap() else { panic!() };
    assert_eq!((partial.jobs.len(), partial.total_jobs), (1, 2), "mid-golden progress");
    assert!(!partial.complete());
    assert!(part_dir.join(GOLDEN_SUBDIR).join(REPORT_FILE).is_file());
    assert!(!part_dir.join(VALIDATE_SUBDIR).exists(), "validation must not have started");

    // Interrupt 2: the budget lands exactly on the golden boundary — the
    // "interrupted mid-fit" shape: golden complete, fit + mine recompute
    // from the persisted traces, zero validation jobs run.
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(1)).unwrap() else { panic!() };
    assert_eq!(partial.total_jobs, full.total_jobs, "fit-from-store mined the same F_crit");
    assert_eq!(partial.jobs.len(), 0, "no validation budget left");
    let golden_after_fit = log_bytes(&part_dir.join(GOLDEN_SUBDIR));

    // A crash *during* the fit leaves golden complete and the validation
    // store half-created: wipe it (and the stale root report) entirely.
    std::fs::remove_dir_all(part_dir.join(VALIDATE_SUBDIR)).unwrap();
    std::fs::remove_file(part_dir.join(REPORT_FILE)).unwrap();
    std::fs::remove_file(part_dir.join(JOBS_FILE)).unwrap();

    // Interrupt 3: mid-candidate-sweep.
    let sweep_budget = full.total_jobs / 2;
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(sweep_budget)).unwrap() else {
        panic!()
    };
    assert_eq!(partial.jobs.len() as u64, sweep_budget);
    assert!(!partial.complete());

    // Final resume: byte-identical report, golden logs untouched (the
    // fit re-read them; nothing golden was re-simulated).
    let PlanResult::Persisted(resumed) = run_plan(&plan).unwrap() else { panic!() };
    assert!(resumed.complete());
    assert_eq!(resumed.jobs, full.jobs);
    assert_eq!(
        log_bytes(&part_dir.join(GOLDEN_SUBDIR)),
        golden_after_fit,
        "resume re-simulated golden jobs"
    );
    let (report, jobs) = report_bytes(&part_dir);
    assert_eq!(&report, &full_bytes.0, "report.toml drifted across staged interruptions");
    assert_eq!(&jobs, &full_bytes.1, "jobs.csv drifted across staged interruptions");

    // Compaction: reads and reports unchanged, bytes reordered.
    let golden_dir = part_dir.join(GOLDEN_SUBDIR);
    let validate_dir = part_dir.join(VALIDATE_SUBDIR);
    let before_golden = (read_store(&golden_dir).unwrap(), read_traces(&golden_dir).unwrap());
    let before_validate = read_store(&validate_dir).unwrap();
    compact_store(&golden_dir).unwrap();
    compact_store(&validate_dir).unwrap();
    assert_eq!(
        (read_store(&golden_dir).unwrap(), read_traces(&golden_dir).unwrap()),
        before_golden
    );
    assert_eq!(read_store(&validate_dir).unwrap(), before_validate);
    // Rerunning the (complete) plan after compaction rebuilds the exact
    // same report from the compacted shards.
    let PlanResult::Persisted(after) = run_plan(&plan).unwrap() else { panic!() };
    assert_eq!(after, resumed);
    assert_eq!(report_bytes(&part_dir), full_bytes);
    std::fs::remove_dir_all(&dir).ok();
}

fn adaptive_plan_into(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "adaptive-resume".into(),
        kind: CampaignKind::Adaptive {
            scene_stride: 25,
            adaptive: AdaptiveSection { batch: 6, max_rounds: 8, converge_eps: 0.02 },
        },
        seed: 0,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 2,
            checkpoint_every: 4,
        }),
    }
}

/// The acquisition loop's resume contract: a `kind = "adaptive"` plan
/// interrupted mid-golden and (twice) mid-round replays its posterior
/// from the round stores on disk, re-selects the half-finished round's
/// exact batch, and resumes — without re-simulating completed jobs — to
/// a report **and** acquisition trajectory (`rounds.toml`)
/// byte-identical to an uninterrupted run's.
#[test]
fn adaptive_plan_resumes_mid_round_to_byte_identical_reports() {
    let dir = std::env::temp_dir().join(format!("drivefi-crash-adaptive-{}", std::process::id()));
    let full_dir = dir.join("full");
    let part_dir = dir.join("part");
    std::fs::remove_dir_all(&dir).ok();

    // Uninterrupted reference run.
    let PlanResult::Persisted(full) = run_plan(&adaptive_plan_into(&full_dir)).unwrap() else {
        panic!()
    };
    assert!(full.complete());
    assert_eq!(full.kind, "adaptive");
    let full_rounds = round_dirs(&full_dir);
    assert!(full_rounds.len() >= 2, "need at least two rounds to interrupt one mid-way");
    let full_bytes = report_bytes(&full_dir);
    let full_trajectory = std::fs::read(full_dir.join(ROUNDS_FILE)).unwrap();

    // Interrupt 1: mid-golden — no round swept yet, the progress report
    // lands inside the golden sub-store.
    let plan = adaptive_plan_into(&part_dir);
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(1)).unwrap() else { panic!() };
    assert!(!partial.complete());
    assert!(part_dir.join(GOLDEN_SUBDIR).join(REPORT_FILE).is_file());
    assert!(round_dirs(&part_dir).is_empty(), "no acquisition round may start mid-golden");

    // Interrupt 2: mid-round-001 (golden done at 2, round-000 done at
    // 8, three jobs into the second round's six).
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(10)).unwrap() else {
        panic!()
    };
    assert!(!partial.complete());
    assert_eq!(round_dirs(&part_dir).len(), 2, "round-001 is on disk, half-finished");
    let golden_after = log_bytes(&part_dir.join(GOLDEN_SUBDIR));
    let round0_after = log_bytes(&round_dirs(&part_dir)[0]);

    // Interrupt 3: still mid-round-001 — the resumed posterior replay
    // must re-select the same batch and extend the same round store.
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(2)).unwrap() else { panic!() };
    assert!(!partial.complete());
    assert_eq!(round_dirs(&part_dir).len(), 2, "a resumed round must not fork a new one");

    // Final resume: byte-identical report and trajectory; neither the
    // golden logs nor round-000's were touched (nothing re-simulated).
    let PlanResult::Persisted(resumed) = run_plan(&plan).unwrap() else { panic!() };
    assert!(resumed.complete());
    assert_eq!(resumed.jobs, full.jobs);
    assert_eq!(log_bytes(&part_dir.join(GOLDEN_SUBDIR)), golden_after, "golden re-simulated");
    assert_eq!(log_bytes(&round_dirs(&part_dir)[0]), round0_after, "round-000 re-simulated");
    assert_eq!(report_bytes(&part_dir), full_bytes, "report drifted across interruptions");
    assert_eq!(
        std::fs::read(part_dir.join(ROUNDS_FILE)).unwrap(),
        full_trajectory,
        "rounds.toml drifted across interruptions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--max-jobs 0`: a zero budget opens (or creates) the store, runs
/// nothing, and leaves everything resumable — for both single-stage and
/// pipeline kinds.
#[test]
fn zero_budget_runs_nothing_and_stays_resumable() {
    let dir = std::env::temp_dir().join(format!("drivefi-crash-zero-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Random store-backed plan.
    let random_dir = dir.join("random");
    let PlanResult::Persisted(report) = run_plan_budget(&plan_into(&random_dir), Some(0)).unwrap()
    else {
        panic!()
    };
    assert_eq!(report.jobs.len(), 0);
    assert!(!report.complete());
    assert!(random_dir.join(MANIFEST_FILE).is_file(), "store created even with a zero budget");
    let (report_toml, _) = report_bytes(&random_dir);
    assert!(
        String::from_utf8(report_toml).unwrap().contains("complete = false"),
        "report.toml records incompleteness"
    );
    let PlanResult::Persisted(resumed) = run_plan(&plan_into(&random_dir)).unwrap() else {
        panic!()
    };
    assert!(resumed.complete());
    assert_eq!(report_bytes(&random_dir), *baseline());

    // Mine pipeline: a zero budget stops mid-golden with zero records.
    let mine_dir = dir.join("mine");
    let PlanResult::Persisted(report) =
        run_plan_budget(&mine_plan_into(&mine_dir), Some(0)).unwrap()
    else {
        panic!()
    };
    assert_eq!((report.jobs.len(), report.total_jobs), (0, 2));
    assert!(mine_dir.join(GOLDEN_SUBDIR).join(MANIFEST_FILE).is_file());
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden campaigns persist and resume through the same machinery.
#[test]
fn golden_plan_persists_and_resumes() {
    let dir = std::env::temp_dir().join(format!("drivefi-crash-golden-{}", std::process::id()));
    let full_dir = dir.join("full");
    let part_dir = dir.join("part");
    std::fs::remove_dir_all(&dir).ok();
    let golden_plan = |out: &Path| CampaignPlan {
        name: "golden-resume".into(),
        kind: CampaignKind::Golden,
        seed: 0,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 3, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec::new(out.to_string_lossy().into_owned())),
    };

    let PlanResult::Persisted(full) = run_plan(&golden_plan(&full_dir)).unwrap() else { panic!() };
    assert!(full.complete());
    assert_eq!(full.kind, "golden");
    assert!(full.jobs.iter().all(|r| r.fault.is_none()));
    // Golden stores persist the traces themselves — the on-disk training
    // set the miner can fit from without re-simulating.
    let (meta, traces) = read_traces(&full_dir).unwrap();
    assert!(meta.traces);
    assert_eq!(traces.len(), 3);
    for (trace, record) in traces.iter().zip(&full.jobs) {
        assert_eq!(trace.frames.len() as u64, record.scenes);
    }

    let partial = run_plan_budget(&golden_plan(&part_dir), Some(1)).unwrap();
    let PlanResult::Persisted(partial) = partial else { panic!() };
    assert_eq!(partial.jobs.len(), 1);
    let PlanResult::Persisted(resumed) = run_plan(&golden_plan(&part_dir)).unwrap() else {
        panic!()
    };
    // Reports embed no paths, so cross-directory equality holds outright.
    assert_eq!(resumed, full);
    std::fs::remove_dir_all(&dir).ok();
}
