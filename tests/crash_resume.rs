//! Crash-resume property tests for the persistent campaign store: a
//! campaign interrupted mid-run — including one whose store was torn
//! mid-record at an arbitrary byte offset — must resume to a
//! [`PlanReport`] **byte-identical** to an uninterrupted run's.

use drivefi::fault::FaultSpace;
use drivefi::plan::{
    run_plan, run_plan_budget, CampaignKind, CampaignPlan, OutputSpec, PlanResult,
    ScenarioSelection, SimSection, SinkChoice, JOBS_FILE, REPORT_FILE,
};
use drivefi::store::MANIFEST_FILE;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const RUNS: usize = 8;

fn plan_into(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "crash-resume".into(),
        kind: CampaignKind::Random { runs: RUNS },
        seed: 11,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 3,
            checkpoint_every: 2,
        }),
    }
}

fn run_to_files(dir: &Path, budget: Option<u64>) -> PlanResult {
    run_plan_budget(&plan_into(dir), budget).expect("plan runs")
}

fn report_bytes(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join(REPORT_FILE)).expect("report.toml written"),
        std::fs::read(dir.join(JOBS_FILE)).expect("jobs.csv written"),
    )
}

fn shard_paths(dir: &Path) -> Vec<PathBuf> {
    let mut shards: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"))
        })
        .collect();
    shards.sort();
    shards
}

/// The uninterrupted baseline, computed once per process (each proptest
/// case re-running it would dominate the suite's wall clock).
fn baseline() -> &'static (Vec<u8>, Vec<u8>) {
    use std::sync::OnceLock;
    static BASELINE: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("drivefi-crash-baseline-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let PlanResult::Persisted(report) = run_to_files(&dir, None) else {
            panic!("output plan persists");
        };
        assert!(report.complete());
        let bytes = report_bytes(&dir);
        std::fs::remove_dir_all(&dir).ok();
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interrupt after a fuzzed number of jobs, tear a fuzzed shard at a
    /// fuzzed byte offset (mid-record included), resume, and compare the
    /// report files byte-for-byte against the uninterrupted run.
    #[test]
    fn torn_store_resumes_to_byte_identical_report(
        case in any::<u32>(),
        interrupt_after in 1u64..(RUNS as u64),
        shard_pick in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let (full_report, full_jobs) = baseline();
        let dir = std::env::temp_dir()
            .join(format!("drivefi-crash-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Interrupt via budget cap.
        let PlanResult::Persisted(partial) = run_to_files(&dir, Some(interrupt_after)) else {
            panic!("output plan persists");
        };
        prop_assert_eq!(partial.jobs.len() as u64, interrupt_after);

        // Tear a non-empty shard at a fuzzed offset past its header:
        // anywhere from "mid-record in the last frame" to "most of the
        // shard gone" — recovery must treat every cut as a torn tail.
        const HEADER: u64 = 16;
        let shards = shard_paths(&dir);
        let torn: Vec<&PathBuf> = shards
            .iter()
            .filter(|p| std::fs::metadata(p).unwrap().len() > HEADER)
            .collect();
        prop_assume!(!torn.is_empty());
        let victim = torn[(shard_pick % torn.len() as u64) as usize];
        let len = std::fs::metadata(victim).unwrap().len();
        let cut = HEADER + 1 + cut_pick % (len - HEADER - 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(victim)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Resume: re-runs the torn-away jobs plus the never-run ones.
        let PlanResult::Persisted(resumed) = run_to_files(&dir, None) else {
            panic!("output plan persists");
        };
        prop_assert!(resumed.complete());
        let (report, jobs) = report_bytes(&dir);
        prop_assert_eq!(&report, full_report, "report.toml drifted after torn-tail resume");
        prop_assert_eq!(&jobs, full_jobs, "jobs.csv drifted after torn-tail resume");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A store torn even before any interruption bookkeeping (manifest says
/// fewer records than the shards hold — the checkpoint lag window) still
/// resumes exactly: the shard scans are authoritative, not the manifest.
#[test]
fn resume_trusts_shards_not_the_checkpoint_counter() {
    let (full_report, full_jobs) = baseline();
    let dir = std::env::temp_dir().join(format!("drivefi-crash-manifest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_to_files(&dir, Some(5));

    // Rewind the manifest's checkpoint counter to zero, as if the crash
    // hit right after the first appends but before any checkpoint.
    let manifest = dir.join(MANIFEST_FILE);
    let src = std::fs::read_to_string(&manifest).unwrap();
    let rewound =
        src.lines()
            .map(|line| {
                if line.starts_with("checkpoint_records") {
                    "checkpoint_records = 0"
                } else {
                    line
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
    std::fs::write(&manifest, rewound + "\n").unwrap();

    let PlanResult::Persisted(resumed) = run_to_files(&dir, None) else { panic!() };
    assert!(resumed.complete());
    let (report, jobs) = report_bytes(&dir);
    assert_eq!(&report, full_report);
    assert_eq!(&jobs, full_jobs);
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden campaigns persist and resume through the same machinery.
#[test]
fn golden_plan_persists_and_resumes() {
    let dir = std::env::temp_dir().join(format!("drivefi-crash-golden-{}", std::process::id()));
    let full_dir = dir.join("full");
    let part_dir = dir.join("part");
    std::fs::remove_dir_all(&dir).ok();
    let golden_plan = |out: &Path| CampaignPlan {
        name: "golden-resume".into(),
        kind: CampaignKind::Golden,
        seed: 0,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 3, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        output: Some(OutputSpec::new(out.to_string_lossy().into_owned())),
    };

    let PlanResult::Persisted(full) = run_plan(&golden_plan(&full_dir)).unwrap() else { panic!() };
    assert!(full.complete());
    assert_eq!(full.kind, "golden");
    assert!(full.jobs.iter().all(|r| r.fault.is_none()));

    let partial = run_plan_budget(&golden_plan(&part_dir), Some(1)).unwrap();
    let PlanResult::Persisted(partial) = partial else { panic!() };
    assert_eq!(partial.jobs.len(), 1);
    let PlanResult::Persisted(resumed) = run_plan(&golden_plan(&part_dir)).unwrap() else {
        panic!()
    };
    // Reports embed no paths, so cross-directory equality holds outright.
    assert_eq!(resumed, full);
    std::fs::remove_dir_all(&dir).ok();
}
