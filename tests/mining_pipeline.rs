//! Integration tests for the full Bayesian FI pipeline (E3 shape at
//! reduced scale).

use drivefi::core::{
    collect_golden_traces, random_output_campaign, validate_candidates, BayesianMiner, MinerConfig,
    RandomCampaignConfig, SituationLibrary,
};
use drivefi::sim::SimConfig;
use drivefi::world::ScenarioSuite;

fn pipeline(
) -> (ScenarioSuite, Vec<drivefi::sim::Trace>, BayesianMiner, Vec<drivefi::core::CandidateFault>) {
    let suite = ScenarioSuite::generate(12, 2026);
    let sim = SimConfig::default();
    let golden = collect_golden_traces(&sim, &suite, 8);
    let config = MinerConfig { scene_stride: 8, ..MinerConfig::default() };
    let miner = BayesianMiner::fit(&golden, config).expect("fit");
    let critical = miner.mine_parallel(&golden, 8);
    (suite, golden, miner, critical)
}

#[test]
fn mined_candidates_are_well_formed_and_validated() {
    let (suite, golden, miner, critical) = pipeline();
    assert!(!critical.is_empty(), "mining found nothing");
    for c in &critical {
        assert!(c.golden_delta > 0.0, "Eq. 1 pre-condition violated");
        assert!(c.predicted_delta <= 0.0);
        assert!((c.scenario_id as usize) < suite.scenarios.len());
    }
    // Candidate pool is far larger than the critical set.
    let pool = miner.candidate_count(&golden);
    assert!(pool > critical.len() * 3, "pool {pool} vs mined {}", critical.len());

    // Validation runs and produces coherent accounting.
    let stats = validate_candidates(&SimConfig::default(), &suite, &critical, 8);
    assert_eq!(stats.mined.len(), critical.len());
    assert!(stats.manifested <= stats.mined.len());
    assert!(stats.critical_scenes.len() <= stats.manifested.max(1));

    // The situation library covers exactly the validated critical scenes.
    let names: Vec<String> = suite.scenarios.iter().map(|s| s.name.clone()).collect();
    let lib = SituationLibrary::build(&stats.mined, &golden, &names);
    assert_eq!(lib.len(), stats.critical_scenes.len());
}

#[test]
fn bayesian_mining_beats_random_at_equal_budget() {
    let (suite, _golden, _miner, critical) = pipeline();
    let sim = SimConfig::default();
    let stats = validate_candidates(&sim, &suite, &critical, 8);

    // Random baseline with the same number of injection runs.
    let random_cfg = RandomCampaignConfig { runs: critical.len().max(50), seed: 7, workers: 8 };
    let random = random_output_campaign(&sim, &suite, &random_cfg);

    assert!(
        stats.precision() > random.hazard_rate(),
        "Bayesian precision {:.3} must beat random hazard rate {:.3}",
        stats.precision(),
        random.hazard_rate()
    );
    // The paper's headline shape: random FI essentially never finds
    // hazards, Bayesian FI finds them reliably.
    assert!(random.hazard_rate() < 0.05, "random rate {}", random.hazard_rate());
}

#[test]
fn mining_is_deterministic_and_parallel_consistent() {
    let suite = ScenarioSuite::generate(6, 3);
    let sim = SimConfig::default();
    let golden = collect_golden_traces(&sim, &suite, 6);
    let config = MinerConfig { scene_stride: 16, ..MinerConfig::default() };
    let miner = BayesianMiner::fit(&golden, config).expect("fit");
    let serial = miner.mine(&golden);
    let parallel = miner.mine_parallel(&golden, 4);
    assert_eq!(serial.len(), parallel.len());
    // Same multiset of (scenario, scene, signal) triples.
    let key = |c: &drivefi::core::CandidateFault| (c.scenario_id, c.scene, c.signal.name());
    let mut a: Vec<_> = serial.iter().map(key).collect();
    let mut b: Vec<_> = parallel.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}
