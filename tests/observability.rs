//! End-to-end observability properties: the `DRIVEFI_OBS` layer must
//! narrate a campaign's life faithfully *without ever touching its
//! results* — `report.toml`, `jobs.csv`, and the (compacted) shard
//! bytes are identical with observability on or off, and the event log
//! replays a coherent lifecycle across interrupts, torn tails, and
//! resumes.
//!
//! Observability is process-global (`DRIVEFI_OBS` + a test-only force
//! switch), so every test here serializes on one mutex.

use drivefi::fault::FaultSpace;
use drivefi::obs::{clear_force, force_enabled, read_events, EventLog, Field};
use drivefi::plan::{
    run_plan, run_plan_budget, CampaignKind, CampaignPlan, OutputSpec, PlanResult,
    ScenarioSelection, SimSection, SinkChoice, CONTROL_FILE, JOBS_FILE, REPORT_FILE,
};
use drivefi::store::compact_store;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

const RUNS: usize = 6;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn plan_into(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "observed".into(),
        kind: CampaignKind::Random { runs: RUNS },
        seed: 23,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 5 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 2,
            checkpoint_every: 2,
        }),
    }
}

fn artifact_bytes(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join(REPORT_FILE)).expect("report.toml written"),
        std::fs::read(dir.join(JOBS_FILE)).expect("jobs.csv written"),
    )
}

/// Concatenated bytes of every `shard-*.log` under `dir`, in name order.
fn shard_bytes(dir: &Path) -> Vec<u8> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"))
        })
        .collect();
    paths.sort();
    paths.iter().flat_map(|p| std::fs::read(p).unwrap()).collect()
}

/// The acceptance-criteria loop: run → interrupt → resume → re-run with
/// observability on, then replay `events.jsonl` and check the lifecycle
/// is coherent — every stage finishes exactly once, the campaign
/// finishes exactly once, pauses and resumes are recorded, and the
/// sequence numbers stay strictly increasing across process-internal
/// reopens.
#[test]
fn events_replay_coherent_lifecycle_across_interrupts() {
    let _guard = obs_lock();
    force_enabled(true);
    let dir = std::env::temp_dir().join(format!("drivefi-obs-life-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let plan = plan_into(&dir);
    // Interrupt mid-campaign, then resume to completion.
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(2)).unwrap() else { panic!() };
    assert!(!partial.complete());
    let PlanResult::Persisted(done) = run_plan(&plan).unwrap() else { panic!() };
    assert!(done.complete());

    let events = read_events(&dir).unwrap();
    assert!(!events.is_empty(), "observability on: events.jsonl must exist");
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq not strictly increasing: {seqs:?}");

    let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count("campaign_start"), 2, "one per invocation");
    assert_eq!(count("campaign_pause"), 1, "the interrupted invocation");
    assert_eq!(count("stage_finish"), 1, "the stage finishes exactly once");
    assert_eq!(count("campaign_finish"), 1, "the campaign finishes exactly once");
    assert_eq!(count("resume"), 1, "the second invocation resumed the store");
    assert_eq!(count("control_verdict"), 1, "random campaigns run one control job");
    assert!(count("checkpoint") >= 1);

    // The control verdict is also persisted (and survivable — the
    // unfaulted paper scenarios never crash on their own).
    assert!(dir.join(CONTROL_FILE).is_file());
    let verdict = events.iter().find(|e| e.kind == "control_verdict").unwrap();
    assert_eq!(verdict.bool_field("survivable"), Some(true));
    let finish = events.iter().find(|e| e.kind == "stage_finish").unwrap();
    assert_eq!(finish.str_field("stage"), Some("main"));
    assert_eq!(finish.int_field("records"), Some(RUNS as i64));

    // Re-running the already-complete campaign must not re-finish it.
    let PlanResult::Persisted(again) = run_plan(&plan).unwrap() else { panic!() };
    assert!(again.complete());
    let events = read_events(&dir).unwrap();
    assert_eq!(events.iter().filter(|e| e.kind == "stage_finish").count(), 1);
    assert_eq!(events.iter().filter(|e| e.kind == "campaign_finish").count(), 1);

    clear_force();
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Observability must be fingerprint-neutral in the strongest sense:
    /// an obs-on campaign — even one interrupted at a fuzzed point and
    /// resumed — produces `report.toml`, `jobs.csv`, and compacted shard
    /// bytes identical to an obs-off uninterrupted run's.
    #[test]
    fn obs_on_and_off_stores_are_byte_identical(
        case in any::<u32>(),
        interrupt_after in 1u64..(RUNS as u64),
    ) {
        let _guard = obs_lock();
        let root = std::env::temp_dir()
            .join(format!("drivefi-obs-ident-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let off_dir = root.join("off");
        let on_dir = root.join("on");

        force_enabled(false);
        let PlanResult::Persisted(off) = run_plan(&plan_into(&off_dir)).unwrap() else { panic!() };
        prop_assert!(off.complete());
        prop_assert!(
            !off_dir.join("events.jsonl").exists(),
            "observability off: no event log"
        );

        force_enabled(true);
        let PlanResult::Persisted(_) =
            run_plan_budget(&plan_into(&on_dir), Some(interrupt_after)).unwrap()
        else {
            panic!()
        };
        let PlanResult::Persisted(on) = run_plan(&plan_into(&on_dir)).unwrap() else { panic!() };
        prop_assert!(on.complete());
        prop_assert!(on_dir.join("events.jsonl").exists());
        clear_force();

        prop_assert_eq!(artifact_bytes(&off_dir), artifact_bytes(&on_dir));
        // Shard append order varies with worker timing; compaction
        // rewrites pure job order, making the stores comparable bit
        // for bit.
        compact_store(&off_dir).unwrap();
        compact_store(&on_dir).unwrap();
        prop_assert_eq!(shard_bytes(&off_dir), shard_bytes(&on_dir));
        std::fs::remove_dir_all(&root).ok();
    }

    /// Crash-tolerance of the event log itself: truncate `events.jsonl`
    /// at an arbitrary byte offset (mid-line included), reopen, keep
    /// appending. The reader must skip the torn fragment, keep every
    /// intact line, and the sequence numbers must continue past the
    /// survivors instead of restarting.
    #[test]
    fn torn_event_log_tolerates_any_truncation(
        case in any::<u32>(),
        before in 1usize..12,
        after in 1usize..6,
        cut_pick in any::<u64>(),
    ) {
        let _guard = obs_lock();
        force_enabled(true);
        let dir = std::env::temp_dir()
            .join(format!("drivefi-obs-torn-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let mut log = EventLog::open(&dir);
        for i in 0..before {
            log.emit("tick", &[("i", Field::Int(i as i64))]);
        }
        drop(log);
        let path = dir.join("events.jsonl");
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = cut_pick % (len + 1);
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();
        let survivors = read_events(&dir).unwrap();

        let mut log = EventLog::open(&dir);
        for i in 0..after {
            log.emit("tock", &[("i", Field::Int(i as i64))]);
        }
        drop(log);
        clear_force();

        let events = read_events(&dir).unwrap();
        // Every pre-truncation survivor and every post-reopen event is
        // there; nothing else.
        prop_assert_eq!(events.len(), survivors.len() + after);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs: {:?}", seqs);
        prop_assert_eq!(
            events.iter().filter(|e| e.kind == "tock").count(),
            after,
            "appended events all survive the torn tail"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
